"""Fig. 6: distribution of the number of sequences per user at
min_support = 0.5.

Paper shape: a right-skewed distribution — most users have few certified
sequences, a minority have many.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.experiments import fig6_chart

OUT_DIR = Path(__file__).parent / "out"


def test_fig6_distribution(bench_sweep, record_measurement):
    counts = bench_sweep.sequence_counts_at(0.5)
    print("\n--- Fig. 6: #sequences per user at min_support=0.5 ---")
    arr = np.array(counts, dtype=float)
    print(f"  users={len(counts)} min={arr.min():.0f} median={np.median(arr):.1f} "
          f"mean={arr.mean():.2f} max={arr.max():.0f}")
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "fig6.svg").write_text(fig6_chart(bench_sweep))
    record_measurement("fig6_sequence_count_distribution", {
        "counts": counts,
        "median": float(np.median(arr)),
        "mean": float(arr.mean()),
    })

    assert len(counts) > 0
    assert arr.min() >= 0
    if len(counts) >= 30:
        # Right skew (paper Fig. 6) needs a real sample to assert on; the
        # mid-scale bench has only a handful of active users.
        assert arr.mean() >= np.median(arr) - 1e-9


def test_bench_distribution_extraction(benchmark, bench_sweep):
    counts = benchmark(bench_sweep.sequence_counts_at, 0.5)
    assert counts
