"""Out-of-sample crowd-forecast quality — the crowd view's predictive claim.

Profiles mined on the first ¾ of the window are scored against the held-out
last quarter: do the (microcell, hour) pairs the city view highlights
actually see crowd on future days?
"""

from __future__ import annotations

import pytest

from repro.crowd import evaluate_crowd_forecast
from repro.data import ActiveUserFilter
from repro.pipeline import PipelineConfig, run_pipeline
from repro.sequences import HOURLY


@pytest.fixture(scope="module")
def forecast_world(bench_dataset):
    lo, hi = bench_dataset.time_range()
    cut = lo + (hi - lo) * 3 // 4
    train = bench_dataset.filter_time(lo, cut)
    test = bench_dataset.filter_time(cut, hi)
    config = PipelineConfig(activity=ActiveUserFilter(min_qualifying_days=40))
    result = run_pipeline(train, config)
    holdout = test.filter_users(result.profiles)
    return result, holdout


def test_table_forecast_quality(forecast_world, record_measurement):
    result, holdout = forecast_world
    ev = evaluate_crowd_forecast(result.aggregator, result.dataset, holdout, HOURLY)
    print("\n--- Crowd forecast vs held-out reality ---")
    print(f"  {result.n_users} users, {ev.n_days} held-out days, {ev.n_cells} cells")
    print(f"  time lift of targeted hours: {ev.time_lift:.1f}x")
    print(f"  Spearman corr: forecast {ev.correlation:.2f} "
          f"vs time-blind baseline {ev.baseline_correlation:.2f}")
    print(f"  MAE: forecast {ev.mae_forecast:.3f} vs baseline {ev.mae_baseline:.3f}")
    record_measurement("table_crowd_forecast", {
        "n_users": result.n_users,
        "n_days": ev.n_days,
        "time_lift": round(ev.time_lift, 2),
        "correlation": round(ev.correlation, 3),
        "baseline_correlation": round(ev.baseline_correlation, 3),
        "mae_forecast": round(ev.mae_forecast, 4),
        "mae_baseline": round(ev.mae_baseline, 4),
    })
    # The predictive claim: targeted hours are denser than the cell average.
    assert ev.time_lift > 1.5


def test_bench_forecast_evaluation(benchmark, forecast_world):
    result, holdout = forecast_world
    ev = benchmark(evaluate_crowd_forecast, result.aggregator, result.dataset,
                   holdout, HOURLY)
    assert ev.n_days > 0
