"""Figs. 3-4: the crowd in the smart city at 9-10 am and at a later window.

Regenerates the two demo views, quantifies the crowd's relocation between
them, writes the SVGs next to the measurements, and benchmarks snapshot
computation.
"""

from __future__ import annotations

from pathlib import Path

from repro.crowd import windows_for
from repro.experiments import crowd_views

OUT_DIR = Path(__file__).parent / "out"


def test_fig3_fig4_crowd_views(bench_pipeline, record_measurement):
    OUT_DIR.mkdir(exist_ok=True)
    views = crowd_views(bench_pipeline.timeline, hours=(9.5, 13.5))
    print("\n--- Figs. 3-4: crowd views ---")
    rows = views.summary_rows()
    for i, ((label, users, cells), svg_name) in enumerate(zip(rows, ("fig3", "fig4"))):
        print(f"  {label}: {users} users across {cells} microcells")
        (OUT_DIR / f"{svg_name}_crowd.svg").write_text(views.svgs[i])
    print(f"  crowd shift (Jaccard distance of occupied cells): {views.shift_scores[0]:.2f}")
    record_measurement("fig3_fig4_crowd_views", {
        "windows": [list(r) for r in rows],
        "shift": list(views.shift_scores),
    })

    # Paper claims: a crowd exists at 9-10 am, and it moves when the window
    # changes.
    morning = views.snapshots[0]
    assert morning.n_users > 0
    assert views.shift_scores[0] > 0.0

    # Groups: users co-located at the same kind of place.
    groups = morning.groups(min_size=2)
    print(f"  groups of >=2 at {morning.window.label}: "
          f"{[(g.label, g.size) for g in groups[:5]]}")


def test_bench_snapshot_runtime(benchmark, bench_pipeline):
    window = windows_for(bench_pipeline.config.binning)[9]  # 9-10 am
    snap = benchmark(bench_pipeline.aggregator.snapshot, window)
    assert snap.window.start_bin == 9


def test_bench_full_timeline_runtime(benchmark, bench_pipeline):
    timeline = benchmark.pedantic(
        bench_pipeline.aggregator.timeline, rounds=3, iterations=1
    )
    assert len(timeline) == 24
