"""Crowd-aggregation scaling: cost vs number of profiled users.

Not a paper figure; the systems ablation behind the city-scale claim —
aggregation must stay fast as the crowd grows.
"""

from __future__ import annotations

import pytest

from repro.crowd import CrowdAggregator


@pytest.mark.parametrize("fraction", [0.25, 0.5, 1.0])
def test_bench_aggregation_vs_crowd_size(benchmark, bench_pipeline, taxonomy, fraction):
    profiles = dict(sorted(bench_pipeline.profiles.items()))
    keep = max(1, int(len(profiles) * fraction))
    subset = dict(list(profiles.items())[:keep])
    aggregator = CrowdAggregator(
        subset,
        bench_pipeline.dataset,
        bench_pipeline.grid,
        taxonomy,
        binning=bench_pipeline.config.binning,
    )
    timeline = benchmark.pedantic(aggregator.timeline, rounds=3, iterations=1)
    assert len(timeline) == 24


def test_bench_visit_index_build(benchmark, bench_pipeline, taxonomy):
    """Index construction is the one full-dataset pass of the crowd layer."""
    from repro.crowd import VisitIndex

    index = benchmark(
        VisitIndex,
        bench_pipeline.dataset,
        bench_pipeline.grid,
        taxonomy,
        bench_pipeline.config.binning,
    )
    assert index is not None
