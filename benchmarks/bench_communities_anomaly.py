"""Timing and behaviour of the crowd extensions: communities and anomalies."""

from __future__ import annotations

from datetime import date

import pytest

from repro.crowd import build_similarity_graph, detect_communities, detect_spikes
from repro.data import CityEvent, SMALL_CONFIG, SynthConfig, generate
from repro.geo import MicrocellGrid


def test_table_communities(bench_pipeline, record_measurement):
    communities = detect_communities(bench_pipeline.profiles, min_similarity=0.05)
    graph = build_similarity_graph(bench_pipeline.profiles, min_similarity=0.05)
    print("\n--- Behavioural communities ---")
    print(f"  {graph.number_of_nodes()} users, {graph.number_of_edges()} links, "
          f"{len(communities)} communities")
    for community in communities[:5]:
        print(f"  #{community.community_id}: {community.size} users")
    record_measurement("table_communities", {
        "n_users": graph.number_of_nodes(),
        "n_links": graph.number_of_edges(),
        "sizes": [c.size for c in communities],
    })
    covered = sorted(uid for c in communities for uid in c.user_ids)
    assert covered == sorted(bench_pipeline.profiles)


def test_bench_community_detection(benchmark, bench_pipeline):
    communities = benchmark(detect_communities, bench_pipeline.profiles, 0.05)
    assert communities


def test_table_event_spike_detection(record_measurement):
    """Inject an event at small scale and measure detection sharpness."""
    event = CityEvent(name="festival", day=date(2012, 5, 19),
                      venue_category="Stadium", attendance_prob=0.5)
    config = SynthConfig(**{**SMALL_CONFIG.__dict__, "events": (event,)})
    dataset = generate(config).dataset
    grid = MicrocellGrid(dataset.bounding_box().expand(0.01), 750.0)
    spikes = detect_spikes(dataset, grid, z_threshold=4.0, min_count=5)
    print("\n--- Event spike detection ---")
    hit = next((s for s in spikes if s.day == event.day), None)
    print(f"  {len(spikes)} spikes; injected event detected: {hit is not None}")
    if hit:
        print(f"  z={hit.z_score:.1f}, {hit.count} check-ins vs baseline "
              f"{hit.baseline_mean:.1f}")
    record_measurement("table_event_detection", {
        "n_spikes": len(spikes),
        "event_detected": hit is not None,
        "z_score": round(hit.z_score, 2) if hit else None,
    })
    assert hit is not None


def test_bench_spike_detection(benchmark, bench_pipeline):
    spikes = benchmark(
        detect_spikes, bench_pipeline.dataset, bench_pipeline.grid, 4.0
    )
    assert isinstance(spikes, list)
