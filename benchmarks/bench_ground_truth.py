"""Ground-truth pattern-recovery quality (the evaluation the paper lacked).

Because the substrate is synthetic, every user's *actual* routine is known.
This bench sweeps ``min_support`` and reports precision/recall of the mined
pattern items against the generating routines — the direct measurement of
"does the modified PrefixSpan detect real behaviour?".
"""

from __future__ import annotations

from repro.experiments import validate_against_ground_truth
from repro.mining import ModifiedPrefixSpanConfig
from repro.patterns import detect_all_patterns
from repro.sequences import HOURLY


def test_table_pattern_recovery(bench_generation, bench_pipeline, record_measurement):
    rows = []
    print("\n--- Ground-truth pattern recovery ---")
    for support in (0.25, 0.375, 0.5, 0.625, 0.75):
        profiles = detect_all_patterns(
            bench_pipeline.dataset,
            bench_pipeline.taxonomy,
            config=ModifiedPrefixSpanConfig(min_support=support),
        )
        summary = validate_against_ground_truth(
            bench_generation, profiles, bench_pipeline.taxonomy, HOURLY
        )
        rows.append({
            "min_support": support,
            "mean_recall": round(summary.mean_recall, 3),
            "mean_precision": round(summary.mean_precision, 3),
        })
        print(f"  min_support={support:<6g} recall={summary.mean_recall:6.1%} "
              f"precision={summary.mean_precision:6.1%}")
    record_measurement("table_pattern_recovery", rows)

    recalls = [r["mean_recall"] for r in rows]
    precisions = [r["mean_precision"] for r in rows]
    # Lower support recovers more truth; precision stays high throughout.
    assert recalls[0] >= recalls[-1]
    assert min(precisions) >= 0.85, "the miner must not hallucinate patterns"


def test_bench_validation_runtime(benchmark, bench_generation, bench_pipeline):
    summary = benchmark(
        validate_against_ground_truth,
        bench_generation,
        bench_pipeline.profiles,
        bench_pipeline.taxonomy,
        HOURLY,
    )
    assert summary.per_user
