"""Execution-layer scaling benchmarks (not a paper figure).

Times phase 2 (``detect_all_patterns``) under the serial backend and the
process backend at increasing worker counts.  Speedup is bounded by the
CPUs actually available — ``BENCH_pipeline.json`` records that count, and
so does the printed header here.
"""

from __future__ import annotations

import os

import pytest

from repro.exec import ExecConfig
from repro.patterns import detect_all_patterns


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def test_bench_detect_all_serial(benchmark, bench_dataset, taxonomy):
    profiles = benchmark(detect_all_patterns, bench_dataset, taxonomy)
    assert len(profiles) == bench_dataset.n_users


@pytest.mark.parametrize("workers", [2, 4])
def test_bench_detect_all_process(benchmark, bench_dataset, taxonomy, workers):
    exec_config = ExecConfig(backend="process", n_workers=workers)
    profiles = benchmark(
        detect_all_patterns, bench_dataset, taxonomy, exec_config=exec_config
    )
    assert len(profiles) == bench_dataset.n_users


def test_process_backend_matches_serial_at_bench_scale(bench_dataset, taxonomy):
    """Fan-out must be invisible in the output, not just usually-equal."""
    serial = detect_all_patterns(bench_dataset, taxonomy)
    fanned = detect_all_patterns(
        bench_dataset,
        taxonomy,
        exec_config=ExecConfig(backend="process", n_workers=min(4, _cpus() + 1)),
    )
    assert fanned == serial
