"""Time-tolerance ablation of the modified PrefixSpan (its defining knob)."""

from __future__ import annotations

from repro.experiments import tolerance_ablation
from repro.sequences import HOURLY


def test_ablation_time_tolerance(bench_pipeline, taxonomy, record_measurement):
    rows = tolerance_ablation(bench_pipeline.dataset, taxonomy, HOURLY,
                              tolerances=(0, 1, 2), min_support=0.5)
    print("\n--- Ablation: time tolerance (modified PrefixSpan) ---")
    for row in rows:
        print(f"  tol={row.setting}: {row.mean_sequences_per_user:7.2f} seq/user, "
              f"avg len {row.mean_avg_length:.2f}")
    record_measurement("ablation_time_tolerance", [row.as_dict() for row in rows])

    counts = [row.mean_sequences_per_user for row in rows]
    # A wider matcher can only add support — the core soundness property.
    assert counts[0] <= counts[1] <= counts[2]
    # And the flexibility must actually pay: tolerance 1 beats classic.
    assert counts[1] > counts[0]
