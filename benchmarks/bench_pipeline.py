"""Fig. 2: the three-phase framework, end to end.

Regenerates the preprocessing funnel (input → densest window → active
users) and benchmarks the full pipeline.
"""

from __future__ import annotations

from repro.pipeline import run_pipeline


def test_fig2_preprocess_funnel(bench_pipeline, record_measurement):
    report = bench_pipeline.report
    assert report is not None
    rows = report.as_rows()
    print("\n--- Fig. 2: preprocessing funnel ---")
    for key, value in rows:
        print(f"  {key:>22}: {value}")
    record_measurement("fig2_preprocess", [list(r) for r in rows])

    # The funnel must actually narrow.
    assert report.window_checkins <= report.input_checkins
    assert report.output_checkins <= report.window_checkins
    assert report.active_users <= report.window_users
    assert report.active_users > 0, "the activity filter should keep a crowd"


def test_bench_pipeline_runtime(benchmark, bench_pipeline, taxonomy):
    """End-to-end pipeline cost on the already-filtered dataset.

    Uses ``skip_preprocess`` so the benchmark isolates mining + aggregation
    (the two phases the platform re-runs when parameters change).
    """
    from repro.pipeline import PipelineConfig

    filtered = bench_pipeline.dataset
    config = PipelineConfig(skip_preprocess=True)

    result = benchmark.pedantic(
        run_pipeline, args=(filtered, config, taxonomy), rounds=3, iterations=1
    )
    assert result.n_users == bench_pipeline.n_users
