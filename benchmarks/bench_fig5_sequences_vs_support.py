"""Fig. 5: average number of sequences per user vs minimum support.

Paper shape: monotonically decreasing; the 0.25→0.5 drop is significant
while the 0.5→0.75 decline is less pronounced.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments import fig5_chart
from repro.mining import ModifiedPrefixSpanConfig, modified_prefixspan

OUT_DIR = Path(__file__).parent / "out"


def test_fig5_series(bench_sweep, record_measurement):
    xs, ys = bench_sweep.mean_sequences_series()
    print("\n--- Fig. 5: avg sequences/user vs min_support ---")
    for x, y in zip(xs, ys):
        print(f"  min_support={x:<6g} avg sequences/user = {y:.2f}")
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "fig5.svg").write_text(fig5_chart(bench_sweep))
    record_measurement("fig5_sequences_vs_support",
                       {"supports": xs, "mean_sequences_per_user": ys})

    # Shape assertions (the paper's findings).
    assert all(a >= b for a, b in zip(ys, ys[1:])), "must decrease with support"
    drop_early = ys[0] - ys[2]   # 0.25 -> 0.5
    drop_late = ys[2] - ys[4]    # 0.5 -> 0.75
    assert drop_early >= drop_late, "early drop should dominate (paper Fig. 5)"


def test_bench_mining_at_half_support(benchmark, bench_pipeline, taxonomy):
    """Cost of one user's modified-PrefixSpan run at min_support=0.5."""
    from repro.sequences import build_user_database

    uid = max(bench_pipeline.profiles,
              key=lambda u: bench_pipeline.profiles[u].n_days)
    db = build_user_database(bench_pipeline.dataset, uid, taxonomy)
    config = ModifiedPrefixSpanConfig(min_support=0.5)
    patterns = benchmark(modified_prefixspan, db, config, taxonomy)
    assert isinstance(patterns, list)
