"""Next-place prediction accuracy — the paper's motivating numbers.

The introduction cites deep-learning next-POI accuracy of 8–25% as the
reason to visualize flexible patterns instead of predicting exact venues.
This bench reproduces that regime: at venue/leaf granularity the predictors
land in the paper's quoted band, while category abstraction lifts accuracy
far above it — exactly the paper's argument.
"""

from __future__ import annotations

import pytest

from repro.prediction import (
    FrequencyPredictor,
    MarkovPredictor,
    RNNPredictor,
    compare_predictors,
)
from repro.sequences import HOURLY, make_labeler, sessionize_user
from repro.taxonomy import AbstractionLevel


def _sequences_by_user(pipeline, level, min_days=8):
    labeler = make_labeler(pipeline.taxonomy, level)
    out = {}
    for uid in pipeline.profiles:
        sessions = sessionize_user(pipeline.dataset, uid, labeler, HOURLY)
        sequences = [[i.label for i in s.items] for s in sessions if len(s.items) >= 2]
        if len(sequences) >= min_days:
            out[uid] = sequences
    return out


def test_table_prediction_accuracy(bench_pipeline, record_measurement):
    factories = {
        "frequency": FrequencyPredictor,
        "markov-1": lambda: MarkovPredictor(1),
        "markov-2": lambda: MarkovPredictor(2),
        "rnn": lambda: RNNPredictor(epochs=8, seed=11),
    }
    results = {}
    print("\n--- Prediction accuracy by abstraction level ---")
    for level in (AbstractionLevel.VENUE, AbstractionLevel.LEAF, AbstractionLevel.ROOT):
        sequences = _sequences_by_user(bench_pipeline, level)
        reports = compare_predictors(factories, sequences)
        results[level.value] = {name: rep.as_row() for name, rep in reports.items()}
        print(f"  [{level.value}]")
        for name, rep in reports.items():
            print(f"    {name:<12} acc@1={rep.accuracy_at_1:6.1%} "
                  f"acc@3={rep.accuracy_at_3:6.1%} (n={rep.n_examples})")
    record_measurement("table_prediction_accuracy", results)

    best = {level: max(row["acc@1"] for row in rows.values())
            for level, rows in results.items()}
    # The paper's regime: exact-venue prediction is poor, abstraction helps.
    assert best["venue"] < best["root"]
    assert best["venue"] <= 0.45, "venue-level accuracy should be low (paper: 8-25%)"


def test_bench_markov_training(benchmark, bench_pipeline):
    sequences = _sequences_by_user(bench_pipeline, AbstractionLevel.LEAF)
    flat = [seq for seqs in sequences.values() for seq in seqs]
    predictor = benchmark(lambda: MarkovPredictor(2).fit(flat))
    assert predictor.predict(["Coffee Shop"], k=1)


def test_bench_rnn_training(benchmark, bench_pipeline):
    sequences = _sequences_by_user(bench_pipeline, AbstractionLevel.ROOT)
    some_user = sorted(sequences)[0]
    data = sequences[some_user]
    predictor = benchmark.pedantic(
        lambda: RNNPredictor(epochs=5, seed=3).fit(data), rounds=2, iterations=1
    )
    assert predictor is not None
