"""Design-choice ablations (DESIGN.md §5): abstraction level, time-bin
width, microcell size.

Each prints its comparison table, records it for EXPERIMENTS.md, and
asserts the directional claims.
"""

from __future__ import annotations

from repro.experiments import (
    abstraction_ablation,
    binning_ablation,
    cell_size_ablation,
)
from repro.mining import ModifiedPrefixSpanConfig
from repro.sequences import HOURLY

_CFG = ModifiedPrefixSpanConfig(min_support=0.4)


def test_ablation_abstraction_level(bench_pipeline, taxonomy, record_measurement):
    rows = abstraction_ablation(bench_pipeline.dataset, taxonomy, HOURLY, _CFG)
    print("\n--- Ablation: abstraction level ---")
    for row in rows:
        print(f"  {row.setting:>6}: {row.mean_sequences_per_user:7.2f} seq/user, "
              f"avg len {row.mean_avg_length:.2f}")
    record_measurement("ablation_abstraction", [row.as_dict() for row in rows])

    by_level = {row.setting: row.mean_sequences_per_user for row in rows}
    # The paper's core claim: abstraction reveals patterns.
    assert by_level["root"] > by_level["venue"]
    assert by_level["leaf"] >= by_level["venue"]


def test_ablation_bin_width(bench_pipeline, taxonomy, record_measurement):
    rows = binning_ablation(bench_pipeline.dataset, taxonomy,
                            widths_hours=(1.0, 2.0, 4.0), config=_CFG)
    print("\n--- Ablation: time-bin width ---")
    for row in rows:
        print(f"  {row.setting:>4}: {row.mean_sequences_per_user:7.2f} seq/user, "
              f"avg len {row.mean_avg_length:.2f}")
    record_measurement("ablation_bin_width", [row.as_dict() for row in rows])
    assert all(row.mean_sequences_per_user > 0 for row in rows)


def test_ablation_cell_size(bench_pipeline, taxonomy, record_measurement):
    rows = cell_size_ablation(bench_pipeline.dataset, taxonomy, HOURLY,
                              cell_sizes_m=(250.0, 500.0, 1000.0, 2000.0),
                              config=_CFG)
    print("\n--- Ablation: microcell size (crowd view at 9-10 am) ---")
    for row in rows:
        print(f"  {row.setting:>6}: {row.extra['users_placed']:.0f} users, "
              f"{row.extra['occupied_cells']:.0f} occupied cells, "
              f"largest group {row.extra['largest_group']:.0f}")
    record_measurement("ablation_cell_size", [row.as_dict() for row in rows])

    occupied = [row.extra["occupied_cells"] for row in rows]
    assert occupied[0] >= occupied[-1], "coarser grid concentrates the crowd"
    placed = {row.extra["users_placed"] for row in rows}
    assert len(placed) == 1, "grid resolution must not change who is placed"


def test_ablation_day_kind(bench_pipeline, taxonomy, record_measurement):
    from repro.experiments import day_kind_ablation

    rows = day_kind_ablation(bench_pipeline.dataset, taxonomy, HOURLY, _CFG)
    print("\n--- Ablation: day-type conditioning ---")
    for row in rows:
        print(f"  {row.setting:>8}: {row.mean_sequences_per_user:7.2f} seq/user, "
              f"avg len {row.mean_avg_length:.2f}")
    record_measurement("ablation_day_kind", [row.as_dict() for row in rows])
    by_kind = {row.setting: row.mean_sequences_per_user for row in rows}
    # Day-type conditioning sharpens the weekday routine.
    assert by_kind["weekday"] >= by_kind["all"]
