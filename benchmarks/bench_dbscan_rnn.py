"""The DBSCAN+RNN baseline (paper ref [10]) on simulated GPS traces.

The paper's motivation cites 8–25% next-POI accuracy for this family of
models; this bench runs the full trace → stay points → DBSCAN → RNN
pipeline on a routinized agent and records where the accuracy lands.
"""

from __future__ import annotations

from datetime import date, timedelta

import pytest

from repro.data.synth import simulate_traces
from repro.prediction import DBSCANRNNConfig, DBSCANRNNPipeline


@pytest.fixture(scope="module")
def agent_traces(bench_generation):
    agent = max(bench_generation.agents, key=lambda a: a.checkin_prob)
    days = [date(2012, 4, 1) + timedelta(days=i) for i in range(45)]
    traces = simulate_traces([agent], bench_generation.city, days,
                             bench_generation.config, seed=5)
    return traces[agent.user_id]


def test_table_dbscan_rnn_accuracy(agent_traces, record_measurement):
    train = {d: agent_traces[d] for d in sorted(agent_traces)[:34]}
    test = {d: agent_traces[d] for d in sorted(agent_traces)[34:]}
    pipe = DBSCANRNNPipeline(DBSCANRNNConfig(rnn_epochs=20, seed=7)).fit(train)
    reports = pipe.evaluate(test)
    print("\n--- DBSCAN+RNN baseline (ref [10]) ---")
    print(f"  significant places found: {pipe.n_places}")
    for name, rep in reports.items():
        print(f"  {name:<14} acc@1={rep.accuracy_at_1:6.1%} "
              f"acc@3={rep.accuracy_at_3:6.1%} (n={rep.n_examples})")
    record_measurement("table_dbscan_rnn", {
        "n_places": pipe.n_places,
        "reports": {name: rep.as_row() for name, rep in reports.items()},
    })
    rnn = reports["dbscan-rnn"]
    assert rnn.n_examples > 0
    # The paper's point: exact-next-place accuracy is modest.
    assert rnn.accuracy_at_1 <= 0.75
    assert rnn.accuracy_at_3 >= rnn.accuracy_at_1


def test_bench_pipeline_fit(benchmark, agent_traces):
    train = {d: agent_traces[d] for d in sorted(agent_traces)[:30]}
    pipe = benchmark.pedantic(
        lambda: DBSCANRNNPipeline(DBSCANRNNConfig(rnn_epochs=10, seed=7)).fit(train),
        rounds=3, iterations=1,
    )
    assert pipe.n_places >= 1


def test_bench_trace_simulation(benchmark, bench_generation):
    agent = max(bench_generation.agents, key=lambda a: a.checkin_prob)
    days = [date(2012, 4, 1) + timedelta(days=i) for i in range(7)]
    traces = benchmark(
        simulate_traces, [agent], bench_generation.city, days,
        bench_generation.config
    )
    assert traces
