"""Shared benchmark fixtures.

Benchmarks run, by default, on a mid-sized synthetic city (300 users, the
full 11-month span) so the whole suite finishes in a couple of minutes.
Set ``REPRO_BENCH_SCALE=paper`` to run at the paper's full 1,083-user scale,
or ``REPRO_BENCH_SCALE=small`` for a quick smoke run.

Every figure bench appends its measured rows to
``benchmarks/out/measured.json`` so EXPERIMENTS.md can be refreshed from a
single artifact.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.data import SMALL_CONFIG, SynthConfig, generate
from repro.experiments import run_support_sweep, small_pipeline_config
from repro.pipeline import PipelineConfig, run_pipeline
from repro.taxonomy import build_default_taxonomy

OUT_DIR = Path(__file__).parent / "out"

#: Mid-scale: full time span, fewer users — same shapes, minutes not hours.
BENCH_CONFIG = SynthConfig(n_users=300, n_venues=2500, seed=20230701)


def _scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "bench")


@pytest.fixture(scope="session")
def taxonomy():
    return build_default_taxonomy()


@pytest.fixture(scope="session")
def bench_generation():
    scale = _scale()
    if scale == "paper":
        config = SynthConfig()
    elif scale == "small":
        config = SMALL_CONFIG
    else:
        config = BENCH_CONFIG
    return generate(config)


@pytest.fixture(scope="session")
def bench_dataset(bench_generation):
    return bench_generation.dataset


@pytest.fixture(scope="session")
def bench_pipeline(bench_dataset, taxonomy):
    config = (small_pipeline_config() if _scale() == "small" else PipelineConfig())
    return run_pipeline(bench_dataset, config, taxonomy)


@pytest.fixture(scope="session")
def bench_sweep(bench_pipeline, taxonomy):
    """The Figs. 5-8 support sweep, computed once per session."""
    return run_support_sweep(bench_pipeline.dataset, taxonomy)


@pytest.fixture(scope="session")
def record_measurement():
    """Append a named measurement to benchmarks/out/measured.json."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "measured.json"
    store = json.loads(path.read_text()) if path.exists() else {}

    def record(name: str, payload) -> None:
        store[name] = payload
        path.write_text(json.dumps(store, indent=1, sort_keys=True))

    return record
