"""Table-D (paper §I.1): dataset statistics and the sparsity analysis.

Paper values (Foursquare NYC): 227,428 check-ins, 1,083 users, mean ≈210 /
median ≈153 records per user, <1 record/user/day (sparse), April–June the
densest quarter.  At full ``REPRO_BENCH_SCALE=paper`` the synthetic dataset
is calibrated to land within a few percent of each; at bench scale the
per-user shape holds with fewer users.
"""

from __future__ import annotations

import os

from repro.data import dataset_stats


def test_table_dataset_stats(bench_dataset, record_measurement):
    stats = dataset_stats(bench_dataset)
    rows = stats.as_rows()
    print("\n--- Table-D: dataset statistics (paper §I.1) ---")
    for key, value in rows:
        print(f"  {key:>24}: {value}")
    record_measurement("table_dataset_stats", [list(r) for r in rows])

    # The paper's qualitative findings must hold at every scale.
    assert stats.is_sparse, "GTSM data must be sparse (<1 record/user/day)"
    assert stats.median_records_per_user <= stats.mean_records_per_user
    assert stats.densest_months(3) == ["2012-04", "2012-05", "2012-06"]

    if os.environ.get("REPRO_BENCH_SCALE") == "paper":
        # Calibration against the paper's absolute numbers.
        assert abs(stats.n_checkins - 227_428) / 227_428 < 0.10
        assert stats.n_users == 1083
        assert abs(stats.mean_records_per_user - 210) / 210 < 0.10
        assert abs(stats.median_records_per_user - 153) / 153 < 0.10


def test_bench_dataset_stats_runtime(benchmark, bench_dataset):
    """How fast the statistics pass itself is."""
    stats = benchmark(dataset_stats, bench_dataset)
    assert stats.n_checkins == len(bench_dataset)
