"""Fig. 7: average length of sequences per user vs minimum support.

Paper shape: decreasing — a longer pattern is less likely to be certified
than a shorter one ('Eatery' appears more often than 'Eatery, Shops').
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments import fig7_chart

OUT_DIR = Path(__file__).parent / "out"


def test_fig7_series(bench_sweep, record_measurement):
    xs, ys = bench_sweep.mean_length_series()
    print("\n--- Fig. 7: avg pattern length vs min_support ---")
    for x, y in zip(xs, ys):
        print(f"  min_support={x:<6g} avg length = {y:.3f}")
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "fig7.svg").write_text(fig7_chart(bench_sweep))
    record_measurement("fig7_length_vs_support",
                       {"supports": xs, "mean_avg_length": ys})

    # Decreasing overall (allowing tiny plateaus between adjacent points).
    assert ys[0] >= ys[-1], "length must not grow with support"
    assert ys[0] > 1.0, "low support should certify multi-item patterns"


def test_bench_length_series(benchmark, bench_sweep):
    xs, ys = benchmark(bench_sweep.mean_length_series)
    assert len(xs) == len(ys)
