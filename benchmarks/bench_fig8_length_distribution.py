"""Fig. 8: distribution of the average pattern length at min_support = 0.5.

Paper shape: mass concentrated at short lengths (mostly 1–2), with a tail
of users whose routines certify longer sequences.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.experiments import fig8_chart

OUT_DIR = Path(__file__).parent / "out"


def test_fig8_distribution(bench_sweep, record_measurement):
    lengths = bench_sweep.avg_lengths_at(0.5)
    print("\n--- Fig. 8: avg pattern length per user at min_support=0.5 ---")
    arr = np.array(lengths, dtype=float)
    print(f"  users with patterns={len(lengths)} min={arr.min():.2f} "
          f"median={np.median(arr):.2f} mean={arr.mean():.2f} max={arr.max():.2f}")
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "fig8.svg").write_text(fig8_chart(bench_sweep))
    record_measurement("fig8_length_distribution", {
        "lengths": lengths,
        "median": float(np.median(arr)),
        "mean": float(arr.mean()),
    })

    assert len(lengths) > 0
    assert arr.min() >= 1.0, "a certified pattern has at least one item"
    # Mass near the short end: median stays small.
    assert np.median(arr) <= 3.0


def test_bench_lengths_extraction(benchmark, bench_sweep):
    lengths = benchmark(bench_sweep.avg_lengths_at, 0.5)
    assert lengths
