"""Mining-performance benchmarks (not a paper figure; the ablation that
justifies PrefixSpan over generate-and-test, per the PrefixSpan paper the
authors build on).

Compares classic PrefixSpan, the modified algorithm, and GSP on the same
per-user database, and scales the modified miner across support levels.
"""

from __future__ import annotations

import pytest

from repro.mining import (
    MiningLimits,
    ModifiedPrefixSpanConfig,
    gsp,
    modified_prefixspan,
    modified_prefixspan_reference,
    prefixspan,
)
from repro.sequences import build_user_database


@pytest.fixture(scope="module")
def busiest_db(bench_pipeline, taxonomy):
    uid = max(bench_pipeline.profiles,
              key=lambda u: bench_pipeline.profiles[u].n_days)
    return build_user_database(bench_pipeline.dataset, uid, taxonomy)


def test_bench_prefixspan_classic(benchmark, busiest_db):
    patterns = benchmark(prefixspan, busiest_db, 0.25)
    assert patterns


def test_bench_gsp_baseline(benchmark, busiest_db):
    patterns = benchmark(gsp, busiest_db, 0.25)
    assert patterns


def test_bench_modified_prefixspan(benchmark, busiest_db, taxonomy):
    config = ModifiedPrefixSpanConfig(min_support=0.25)
    patterns = benchmark(modified_prefixspan, busiest_db, config, taxonomy)
    assert patterns


def test_bench_modified_with_ancestors(benchmark, bench_pipeline, taxonomy):
    """Flexible-label mining at LEAF level (the heavier configuration)."""
    from repro.taxonomy import AbstractionLevel

    uid = max(bench_pipeline.profiles,
              key=lambda u: bench_pipeline.profiles[u].n_days)
    db = build_user_database(bench_pipeline.dataset, uid, taxonomy,
                             AbstractionLevel.LEAF)
    config = ModifiedPrefixSpanConfig(min_support=0.4, include_ancestor_labels=True,
                                      limits=MiningLimits(max_length=3))
    patterns = benchmark(modified_prefixspan, db, config, taxonomy)
    assert isinstance(patterns, list)


def test_bench_modified_prefixspan_reference(benchmark, busiest_db, taxonomy):
    """The pool-rescan reference core — the baseline the index replaced."""
    config = ModifiedPrefixSpanConfig(min_support=0.25)
    patterns = benchmark(modified_prefixspan_reference, busiest_db, config, taxonomy)
    assert patterns


def test_indexed_matches_reference_at_bench_scale(busiest_db, taxonomy):
    """The indexed core's speedup never comes from mining different output."""
    for support in (0.25, 0.5, 0.75):
        config = ModifiedPrefixSpanConfig(min_support=support)
        indexed = modified_prefixspan(busiest_db, config, taxonomy)
        reference = modified_prefixspan_reference(busiest_db, config, taxonomy)
        assert indexed == reference


@pytest.mark.parametrize("support", [0.25, 0.5, 0.75])
def test_bench_modified_support_scaling(benchmark, busiest_db, taxonomy, support):
    config = ModifiedPrefixSpanConfig(min_support=support)
    benchmark(modified_prefixspan, busiest_db, config, taxonomy)


def test_prefixspan_agrees_with_gsp(busiest_db):
    """Sanity: the two baselines mine the same pattern set here too."""
    a = {(p.items, p.count) for p in prefixspan(busiest_db, 0.5)}
    b = {(p.items, p.count) for p in gsp(busiest_db, 0.5)}
    assert a == b
