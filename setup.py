import setuptools; setuptools.setup()
