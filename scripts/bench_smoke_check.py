#!/usr/bin/env python
"""CI smoke: structural assertions on the freshly-written bench reports.

Runs right after ``python -m repro.bench --scale smoke`` in the bench-smoke
job and checks the *shape* of what the runners measured — never wall-clock
thresholds, which a loaded CI runner can miss arbitrarily:

1. ``BENCH_mining.json`` carries the interned miner row, and its recorded
   speedup over the reference core is > 1 (the runners already asserted
   bit-for-bit output parity before timing anything);
2. the report carries the representation's memory side — the
   ``db_build_object`` / ``db_build_interned`` rows with schema-v3
   ``peak_tracemalloc_kb`` and ``bytes_per_sequence`` measurements;
3. the interned representation meets the acceptance bar: its bytes per
   sequence are at most 1/4 of the object representation's.  Byte sizes
   are structural, so this holds at any scale on any runner.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.bench import BENCH_MINING_FILENAME, BenchReport

MAX_INTERNED_BYTES_RATIO = 0.25


def main(argv=None) -> int:
    out_dir = Path((argv or sys.argv[1:] or ["bench-out"])[0])
    path = out_dir / BENCH_MINING_FILENAME
    report = BenchReport.load(path)

    interned = report.row("modified_prefixspan_interned")
    assert interned.speedup_vs_serial > 1.0, (
        f"interned miner did not beat the reference core "
        f"(speedup {interned.speedup_vs_serial})"
    )

    obj = report.row("db_build_object")
    mem = report.row("db_build_interned")
    for row in (obj, mem):
        assert row.peak_tracemalloc_kb and row.peak_tracemalloc_kb > 0, (
            f"{row.name}: missing peak_tracemalloc_kb measurement"
        )
        assert row.bytes_per_sequence and row.bytes_per_sequence > 0, (
            f"{row.name}: missing bytes_per_sequence measurement"
        )

    ratio = mem.bytes_per_sequence / obj.bytes_per_sequence
    assert ratio <= MAX_INTERNED_BYTES_RATIO, (
        f"interned DB is {ratio:.2f}x the object representation per "
        f"sequence; the bar is {MAX_INTERNED_BYTES_RATIO}"
    )

    print(
        f"bench smoke OK: miner speedup {interned.speedup_vs_serial:.2f}x, "
        f"memory {obj.bytes_per_sequence:.1f} -> {mem.bytes_per_sequence:.1f} "
        f"bytes/seq ({1 / ratio:.2f}x smaller)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
