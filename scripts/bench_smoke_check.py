#!/usr/bin/env python
"""CI smoke: structural assertions on the freshly-written bench reports.

Runs right after ``python -m repro.bench --scale smoke`` in the bench-smoke
job (default mode) or ``python -m repro.bench --web --scale smoke`` in the
bench-web-smoke job (``--web``), and checks the *shape* of what the runners
measured — never wall-clock thresholds, which a loaded CI runner can miss
arbitrarily.

Default mode (``BENCH_mining.json``):

1. the interned miner row is present and its recorded speedup over the
   reference core is > 1 (the runners already asserted bit-for-bit output
   parity before timing anything);
2. the report carries the representation's memory side — the
   ``db_build_object`` / ``db_build_interned`` rows with schema-v3
   ``peak_tracemalloc_kb`` and ``bytes_per_sequence`` measurements;
3. the interned representation meets the acceptance bar: its bytes per
   sequence are at most 1/4 of the object representation's.

``--web`` mode (``BENCH_web.json``):

1. all four serving phases are present with latency quantiles, hit ratio,
   bytes-on-wire and work-unit (real render) counts;
2. the cached hot path did at most ``MAX_HOT_WORK_RATIO`` of the cold
   phase's rendering work while serving strictly more requests, and its
   cache hit ratio clears ``MIN_HOT_HIT_RATIO`` — a work ratio, not a
   wall-clock ratio, so it holds on any runner;
3. the ``304`` phase re-rendered nothing and moved (near-)zero body bytes;
4. the gzip phase moved strictly fewer bytes than the identity hot phase
   for the same request count, again with zero re-renders.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.bench import BENCH_MINING_FILENAME, BENCH_WEB_FILENAME, BenchReport

MAX_INTERNED_BYTES_RATIO = 0.25

#: Hot-phase renders may be at most this fraction of the cold phase's —
#: in practice 0: the cold sweep populated every key the hot sweep asks for.
MAX_HOT_WORK_RATIO = 0.25

#: The hot phase must overwhelmingly hit the cache.
MIN_HOT_HIT_RATIO = 0.8


def check_mining(out_dir: Path) -> str:
    report = BenchReport.load(out_dir / BENCH_MINING_FILENAME)

    interned = report.row("modified_prefixspan_interned")
    assert interned.speedup_vs_serial > 1.0, (
        f"interned miner did not beat the reference core "
        f"(speedup {interned.speedup_vs_serial})"
    )

    obj = report.row("db_build_object")
    mem = report.row("db_build_interned")
    for row in (obj, mem):
        assert row.peak_tracemalloc_kb and row.peak_tracemalloc_kb > 0, (
            f"{row.name}: missing peak_tracemalloc_kb measurement"
        )
        assert row.bytes_per_sequence and row.bytes_per_sequence > 0, (
            f"{row.name}: missing bytes_per_sequence measurement"
        )

    ratio = mem.bytes_per_sequence / obj.bytes_per_sequence
    assert ratio <= MAX_INTERNED_BYTES_RATIO, (
        f"interned DB is {ratio:.2f}x the object representation per "
        f"sequence; the bar is {MAX_INTERNED_BYTES_RATIO}"
    )

    return (
        f"bench smoke OK: miner speedup {interned.speedup_vs_serial:.2f}x, "
        f"memory {obj.bytes_per_sequence:.1f} -> {mem.bytes_per_sequence:.1f} "
        f"bytes/seq ({1 / ratio:.2f}x smaller)"
    )


def check_web(out_dir: Path) -> str:
    report = BenchReport.load(out_dir / BENCH_WEB_FILENAME)
    assert report.benchmark == "web", f"unexpected benchmark {report.benchmark!r}"

    cold = report.row("web_cold_uncached")
    hot = report.row("web_hot_cached")
    cond = report.row("web_hot_conditional_304")
    gz = report.row("web_hot_gzip")

    for row in (cold, hot, cond, gz):
        assert row.p50_s is not None and row.p99_s is not None, (
            f"{row.name}: missing latency quantiles"
        )
        assert row.p50_s <= row.p99_s, f"{row.name}: p50 above p99"
        assert row.hit_ratio is not None, f"{row.name}: missing hit_ratio"
        assert row.bytes_on_wire is not None, f"{row.name}: missing bytes_on_wire"
        assert row.work_units is not None, f"{row.name}: missing work_units"
        assert row.ops_per_sec > 0, f"{row.name}: no requests per second recorded"

    # The cold phase did real work; the hot phase must not repeat it.
    assert cold.work_units > 0, "cold phase recorded no renders"
    hot_requests = hot.ops_per_sec * hot.wall_clock_s
    cold_requests = cold.ops_per_sec * cold.wall_clock_s
    assert hot_requests > cold_requests, (
        "hot phase served fewer requests than cold — schedule misconfigured"
    )
    work_ratio = hot.work_units / cold.work_units
    assert work_ratio <= MAX_HOT_WORK_RATIO, (
        f"hot phase re-rendered {hot.work_units:.0f}/{cold.work_units:.0f} "
        f"({work_ratio:.2f}) of the cold phase's work; the bar is "
        f"{MAX_HOT_WORK_RATIO}"
    )
    assert hot.hit_ratio >= MIN_HOT_HIT_RATIO, (
        f"hot-phase cache hit ratio {hot.hit_ratio:.2f} below "
        f"{MIN_HOT_HIT_RATIO}"
    )

    # Revalidation: no renders, no body bytes.
    assert cond.work_units == 0, (
        f"304 phase forced {cond.work_units:.0f} renders"
    )
    assert cond.bytes_on_wire < hot.bytes_on_wire, (
        "304 phase moved no fewer bytes than the full hot phase"
    )

    # Content negotiation: same requests, fewer bytes, no extra work.
    assert gz.work_units == 0, (
        f"gzip phase forced {gz.work_units:.0f} renders"
    )
    assert gz.bytes_on_wire < hot.bytes_on_wire, (
        f"gzip phase moved {gz.bytes_on_wire:.0f} bytes vs. identity "
        f"{hot.bytes_on_wire:.0f} — pre-compressed bodies not served"
    )

    return (
        f"web bench smoke OK: hot work ratio {work_ratio:.2f} "
        f"(hit ratio {hot.hit_ratio:.2f}), 304 bytes "
        f"{cond.bytes_on_wire:.0f}, gzip saves "
        f"{1 - gz.bytes_on_wire / hot.bytes_on_wire:.0%} of "
        f"{hot.bytes_on_wire:.0f} identity bytes"
    )


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    web = "--web" in args
    if web:
        args.remove("--web")
    out_dir = Path(args[0] if args else "bench-out")
    print(check_web(out_dir) if web else check_mining(out_dir))
    return 0


if __name__ == "__main__":
    sys.exit(main())
