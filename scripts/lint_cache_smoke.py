#!/usr/bin/env python
"""CI smoke: the crowdlint result cache must actually work.

Runs the engine twice over the real tree with a fresh cache directory and
asserts, at the engine level (no interpreter startup noise):

1. the cold run analyzes every file and the warm run analyzes **zero** —
   which also makes the structural work ratio (files analyzed cold vs.
   warm) at least ``MIN_WORK_RATIO``x;
2. the warm run rebuilds no module summaries (the whole-program pass is
   served from the summary cache too);
3. both runs produce identical findings;
4. the whole-program facts ride the cached summaries: a project rebuilt
   warm from the same cache extracts zero summaries and still discovers
   the tree's thread roots, exception summaries, and resource facts from
   the cached payloads.

Work done is counted structurally (files re-analyzed, summaries rebuilt),
never by wall-clock: a loaded CI runner can stall either run arbitrarily,
so timings are printed for humans but carry no assertion.
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro.devtools.cache import LintCache
from repro.devtools.callgraph import ProjectAnalysis
from repro.devtools.engine import LintEngine, iter_python_files, module_name_for

MIN_WORK_RATIO = 5.0
PATHS = [Path("src"), Path("tests")]


def _warm_facts_probe(cache: LintCache):
    """Rebuild the whole-program view from the warm cache only.

    Returns ``(summaries_built, missing_facts, thread_roots, may_raise)`` —
    the thread, exception, and resource facts all live inside the module
    summaries, so a warm rebuild must extract nothing and still see every
    spawn site and a non-trivial may-raise fixpoint.
    """
    files = []
    for file_path in iter_python_files(PATHS):
        files.append(
            (str(file_path), file_path.read_text(encoding="utf-8"),
             module_name_for(file_path), file_path.name == "__init__.py")
        )
    project = ProjectAnalysis.build(files, cache=cache)
    missing = [
        f"{key}:{fact}"
        for key, summary in project.summaries.items()
        for fact in ("threads", "exceptions", "resources")
        if not isinstance(summary.get(fact), dict)
    ]
    exceptions = project.exceptions()
    may_raise = sum(
        1
        for module_key in project.summaries
        for qualname in (
            project.summaries[module_key].get("exceptions", {})
            .get("functions", {})
        )
        if exceptions.may_raise(module_key, qualname)
    )
    project.lifecycle()  # the resource pass must also run clean off the cache
    return project.summaries_built, missing, project.threads().n_roots, may_raise


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="crowdlint-smoke-") as tmp:
        cache = LintCache(root=Path(tmp))

        engine = LintEngine()
        t0 = time.perf_counter()
        cold = engine.lint_paths(PATHS, cache=cache)
        cold_s = time.perf_counter() - t0
        cold_stats = engine.last_stats

        t0 = time.perf_counter()
        warm = engine.lint_paths(PATHS, cache=cache)
        warm_s = time.perf_counter() - t0
        warm_stats = engine.last_stats

        facts_rebuilds, facts_missing, thread_roots, may_raise = (
            _warm_facts_probe(cache)
        )

    ratio = (
        cold_stats.analyzed / warm_stats.analyzed
        if warm_stats.analyzed
        else float("inf")
    )
    print(
        f"cold: {cold_stats.files} files, {cold_stats.analyzed} analyzed, "
        f"{cold_stats.summaries_built} summaries built, {cold_s * 1000:.0f} ms"
    )
    print(
        f"warm: {warm_stats.files} files, {warm_stats.analyzed} analyzed, "
        f"{warm_stats.cache_hits} cache hits, "
        f"{warm_stats.summaries_cached} summaries cached, {warm_s * 1000:.0f} ms"
    )
    print(f"work ratio: {ratio:.1f}x analyzed (timing is informational only)")
    print(
        f"facts: {thread_roots} thread roots and {may_raise} may-raise "
        f"functions from cached facts, {facts_rebuilds} summaries rebuilt"
    )

    problems = []
    if facts_rebuilds != 0:
        problems.append(
            f"warm facts probe rebuilt {facts_rebuilds} module summaries"
        )
    if facts_missing:
        problems.append(
            f"{len(facts_missing)} cached summaries lack whole-program facts "
            f"(e.g. {facts_missing[0]})"
        )
    if thread_roots == 0:
        problems.append("thread analysis found no roots on the real tree")
    if may_raise == 0:
        problems.append("exception fixpoint found no may-raise functions")
    if cold_stats.analyzed != cold_stats.files:
        problems.append("cold run did not analyze every file")
    if warm_stats.analyzed != 0:
        problems.append(f"warm run re-analyzed {warm_stats.analyzed} file(s)")
    if warm_stats.cache_hits != warm_stats.files:
        problems.append("warm run was not served entirely from the cache")
    if warm_stats.summaries_built != 0:
        problems.append(
            f"warm run rebuilt {warm_stats.summaries_built} module summaries"
        )
    if [f.as_dict() for f in cold] != [f.as_dict() for f in warm]:
        problems.append("cached findings differ from analyzed findings")
    if ratio < MIN_WORK_RATIO:
        problems.append(
            f"warm relint did {ratio:.1f}x less analysis (need {MIN_WORK_RATIO}x)"
        )
    for problem in problems:
        print(f"lint-cache-smoke: FAIL: {problem}", file=sys.stderr)
    if not problems:
        print("lint-cache-smoke: ok")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
