#!/usr/bin/env python
"""CI smoke: the crowdlint result cache must actually work.

Runs the engine twice over the real tree with a fresh cache directory and
asserts, at the engine level (no interpreter startup noise):

1. the cold run analyzes every file and the warm run analyzes **zero**;
2. both runs produce identical findings;
3. the warm run is at least ``MIN_SPEEDUP``x faster wall-clock.  The cold
   run parses and walks ~100 ASTs while the warm run only hashes file
   contents, so even a 1-CPU runner clears 5x with a wide margin; the
   structural check (analyzed == 0) is the load-bearing assertion.
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro.devtools.cache import LintCache
from repro.devtools.engine import LintEngine

MIN_SPEEDUP = 5.0
PATHS = [Path("src"), Path("tests")]


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="crowdlint-smoke-") as tmp:
        cache = LintCache(root=Path(tmp))

        engine = LintEngine()
        t0 = time.perf_counter()
        cold = engine.lint_paths(PATHS, cache=cache)
        cold_s = time.perf_counter() - t0
        cold_stats = engine.last_stats

        t0 = time.perf_counter()
        warm = engine.lint_paths(PATHS, cache=cache)
        warm_s = time.perf_counter() - t0
        warm_stats = engine.last_stats

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    print(
        f"cold: {cold_stats.files} files, {cold_stats.analyzed} analyzed, "
        f"{cold_s * 1000:.0f} ms"
    )
    print(
        f"warm: {warm_stats.files} files, {warm_stats.analyzed} analyzed, "
        f"{warm_stats.cache_hits} cache hits, {warm_s * 1000:.0f} ms "
        f"({speedup:.1f}x)"
    )

    problems = []
    if cold_stats.analyzed != cold_stats.files:
        problems.append("cold run did not analyze every file")
    if warm_stats.analyzed != 0:
        problems.append(f"warm run re-analyzed {warm_stats.analyzed} file(s)")
    if warm_stats.cache_hits != warm_stats.files:
        problems.append("warm run was not served entirely from the cache")
    if [f.as_dict() for f in cold] != [f.as_dict() for f in warm]:
        problems.append("cached findings differ from analyzed findings")
    if speedup < MIN_SPEEDUP:
        problems.append(f"warm relint only {speedup:.1f}x faster (need {MIN_SPEEDUP}x)")
    for problem in problems:
        print(f"lint-cache-smoke: FAIL: {problem}", file=sys.stderr)
    if not problems:
        print("lint-cache-smoke: ok")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
