"""The execution layer: config resolution and the ordered-map primitive."""

from __future__ import annotations

import os

import pytest

from repro.exec import BACKENDS, ExecConfig, ordered_map


def _square(x: int) -> int:
    """Module-level so the process backend can pickle it."""
    return x * x


class TestExecConfig:
    def test_default_is_serial(self):
        config = ExecConfig()
        assert config.backend == "serial"
        assert not config.parallel

    def test_backends_registry(self):
        assert "serial" in BACKENDS and "process" in BACKENDS

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown exec backend"):
            ExecConfig(backend="threads")

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="n_workers"):
            ExecConfig(backend="process", n_workers=-1)

    def test_negative_chunk_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ExecConfig(chunk_size=-2)

    def test_serial_always_resolves_to_one_worker(self):
        assert ExecConfig().resolve_workers(1000) == 1

    def test_single_item_never_fans_out(self):
        config = ExecConfig(backend="process", n_workers=8)
        assert config.resolve_workers(1) == 1

    def test_workers_capped_by_items(self):
        config = ExecConfig(backend="process", n_workers=8)
        assert config.resolve_workers(3) == 3

    def test_zero_workers_means_all_cores(self):
        config = ExecConfig(backend="process", n_workers=0)
        assert config.resolve_workers(10_000) == (os.cpu_count() or 1)

    def test_explicit_chunk_size_wins(self):
        assert ExecConfig(chunk_size=7).resolve_chunk_size(100, 4) == 7

    def test_auto_chunk_gives_each_worker_several_chunks(self):
        chunk = ExecConfig().resolve_chunk_size(100, 4)
        assert 1 <= chunk <= 100
        assert -(-100 // chunk) >= 4  # at least one chunk per worker

    def test_from_workers_one_is_serial(self):
        assert ExecConfig.from_workers(1) == ExecConfig()

    def test_from_workers_many_is_process(self):
        config = ExecConfig.from_workers(4)
        assert config.backend == "process"
        assert config.n_workers == 4
        assert config.parallel

    def test_from_workers_zero_uses_every_core(self):
        config = ExecConfig.from_workers(0)
        assert config.backend == "process"
        assert config.n_workers == 0


class TestOrderedMap:
    def test_serial_backend(self):
        assert ordered_map(_square, range(10)) == [x * x for x in range(10)]

    def test_empty_input(self):
        assert ordered_map(_square, []) == []

    def test_process_backend_preserves_order(self):
        config = ExecConfig(backend="process", n_workers=2, chunk_size=3)
        assert ordered_map(_square, range(20), config) == [x * x for x in range(20)]

    def test_process_backend_equals_serial(self):
        items = list(range(37))
        serial = ordered_map(_square, items)
        fanned = ordered_map(
            _square, items, ExecConfig(backend="process", n_workers=3)
        )
        assert fanned == serial
