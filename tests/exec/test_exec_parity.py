"""Process-backend fan-out is invisible in the output.

The execution layer's contract: for any worker count, the fanned-out
phase 2 (and the windowed crowd timeline) produce results *equal* to the
serial path — same profiles, same order-sensitive structures.
"""

from __future__ import annotations

import pytest

from repro.crowd import CrowdAggregator
from repro.exec import ExecConfig
from repro.patterns import detect_all_patterns


@pytest.fixture(scope="module")
def serial_profiles(small_ds, taxonomy):
    return detect_all_patterns(small_ds, taxonomy)


@pytest.mark.parametrize("workers", [2, 4])
def test_detect_all_patterns_process_equals_serial(
    small_ds, taxonomy, serial_profiles, workers
):
    fanned = detect_all_patterns(
        small_ds,
        taxonomy,
        exec_config=ExecConfig(backend="process", n_workers=workers),
    )
    assert fanned == serial_profiles


def test_vocab_ships_to_workers_intact(small_ds, taxonomy, serial_profiles):
    """The interned task payload survives pickling bit-for-bit.

    Phase 2 ships each user as ``(uid, name, packed id arrays)`` plus one
    dataset-wide vocabulary in the worker closure.  Round-tripping that
    closure and payload through pickle — exactly what the process pool does
    — must reproduce the serial profiles, proving ids decode to the same
    items on the far side.
    """
    import pickle
    from functools import partial

    from repro.mining import ModifiedPrefixSpanConfig
    from repro.patterns.model import _profile_from_encoded
    from repro.sequences import HOURLY, build_all_databases
    from repro.taxonomy import AbstractionLevel

    databases = build_all_databases(small_ds, taxonomy)
    assert len({db.vocab for db in databases.values()}) == 1, (
        "per-user databases must share one vocabulary"
    )
    worker = partial(
        _profile_from_encoded,
        vocab=databases[sorted(databases)[0]].vocab,
        taxonomy=taxonomy,
        level=AbstractionLevel.ROOT,
        binning=HOURLY,
        config=ModifiedPrefixSpanConfig(),
        closed_only=True,
    )
    shipped_worker = pickle.loads(pickle.dumps(worker))
    shipped_vocab = shipped_worker.keywords["vocab"]
    assert shipped_vocab.items == worker.keywords["vocab"].items
    for uid, db in databases.items():
        task = pickle.loads(pickle.dumps((uid, db.name, db.storage)))
        assert shipped_worker(task) == serial_profiles[uid]


def test_process_backend_preserves_user_order(small_ds, taxonomy, serial_profiles):
    fanned = detect_all_patterns(
        small_ds,
        taxonomy,
        exec_config=ExecConfig(backend="process", n_workers=2),
    )
    assert list(fanned) == list(serial_profiles)


def test_timeline_process_equals_serial(pipeline_result):
    aggregator = CrowdAggregator(
        pipeline_result.profiles,
        pipeline_result.dataset,
        pipeline_result.grid,
        pipeline_result.taxonomy,
        binning=pipeline_result.config.binning,
    )
    serial = aggregator.timeline()
    fanned = aggregator.timeline(
        exec_config=ExecConfig(backend="process", n_workers=2)
    )
    assert len(fanned) == len(serial)
    for a, b in zip(fanned, serial):
        assert a.placements == b.placements


def test_pipeline_config_carries_exec(small_ds):
    """The pipeline knob end-to-end: a parallel config yields equal output."""
    from dataclasses import replace

    from repro.experiments import small_pipeline_config
    from repro.pipeline import run_pipeline

    base_config = small_pipeline_config()
    serial = run_pipeline(small_ds, base_config)
    fanned = run_pipeline(
        small_ds,
        replace(base_config, exec=ExecConfig(backend="process", n_workers=2)),
    )
    assert fanned.profiles == serial.profiles
    for a, b in zip(fanned.timeline, serial.timeline):
        assert a.placements == b.placements
