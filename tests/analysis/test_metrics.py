"""Tests for the mobility-analytics metrics."""

import math
from datetime import datetime, timedelta, timezone

import pytest

from repro.analysis import (
    jump_lengths_m,
    lz_entropy_estimate,
    max_predictability,
    radius_of_gyration_m,
    random_entropy,
    regularity_by_hour,
    uncorrelated_entropy,
    user_mobility_metrics,
    visitation_frequencies,
)
from repro.data import CheckIn, CheckInDataset
from repro.geo import GeoPoint

UTC = timezone.utc


class TestRadiusOfGyration:
    def test_single_point_zero(self):
        # Centroid round-trips through spherical coordinates, so allow
        # sub-millimeter floating error.
        assert radius_of_gyration_m([GeoPoint(40.7, -74.0)]) == pytest.approx(0.0, abs=1e-3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            radius_of_gyration_m([])

    def test_two_points_half_distance(self):
        a, b = GeoPoint(40.70, -74.00), GeoPoint(40.80, -74.00)
        rg = radius_of_gyration_m([a, b])
        assert rg == pytest.approx(a.distance_to(b) / 2, rel=1e-3)

    def test_tight_cluster_small(self):
        pts = [GeoPoint(40.7 + i * 1e-5, -74.0) for i in range(10)]
        assert radius_of_gyration_m(pts) < 50


class TestJumps:
    def test_lengths(self):
        pts = [GeoPoint(40.7, -74.0), GeoPoint(40.7, -74.0), GeoPoint(40.8, -74.0)]
        jumps = jump_lengths_m(pts)
        assert len(jumps) == 2
        assert jumps[0] == 0.0
        assert jumps[1] > 10_000


class TestVisitation:
    def test_zipf_profile(self):
        freqs = visitation_frequencies(["home"] * 6 + ["work"] * 3 + ["gym"])
        assert freqs[0] == ("home", 0.6)
        assert freqs[1] == ("work", 0.3)
        assert sum(share for _, share in freqs) == pytest.approx(1.0)

    def test_empty(self):
        assert visitation_frequencies([]) == []


class TestEntropies:
    def test_random_entropy(self):
        assert random_entropy(1) == 0.0
        assert random_entropy(8) == 3.0
        with pytest.raises(ValueError):
            random_entropy(0)

    def test_uncorrelated_uniform(self):
        assert uncorrelated_entropy(["a", "b", "c", "d"]) == pytest.approx(2.0)

    def test_uncorrelated_deterministic(self):
        assert uncorrelated_entropy(["a"] * 10) == 0.0

    def test_uncorrelated_bounded_by_random(self):
        labels = ["a"] * 5 + ["b"] * 3 + ["c"] * 2
        assert uncorrelated_entropy(labels) <= random_entropy(3) + 1e-9

    def test_uncorrelated_empty_raises(self):
        with pytest.raises(ValueError):
            uncorrelated_entropy([])

    def test_lz_low_for_periodic(self):
        periodic = ["a", "b"] * 30
        noisy = [str(i % 17 * 7 % 13) for i in range(60)]
        assert lz_entropy_estimate(periodic) < lz_entropy_estimate(noisy)

    def test_lz_short_raises(self):
        with pytest.raises(ValueError):
            lz_entropy_estimate(["a"])


class TestPredictability:
    def test_zero_entropy_fully_predictable(self):
        assert max_predictability(0.0, 10) == 1.0

    def test_single_location(self):
        assert max_predictability(1.0, 1) == 1.0

    def test_saturated_entropy_uniform_bound(self):
        assert max_predictability(random_entropy(8), 8) == pytest.approx(1 / 8, abs=1e-6)

    def test_song_regime(self):
        """Song et al.: S≈0.8 bits over N≈50 locations → Π_max ≈ 0.93."""
        pi = max_predictability(0.8, 50)
        assert 0.88 <= pi <= 0.96

    def test_monotone_in_entropy(self):
        assert max_predictability(0.5, 20) > max_predictability(2.0, 20)

    def test_invalid(self):
        with pytest.raises(ValueError):
            max_predictability(1.0, 0)


class TestUserMetrics:
    def make_dataset(self):
        records = []
        venues = ["home", "work", "home", "thai", "home", "work"] * 5
        for i, venue in enumerate(venues):
            records.append(CheckIn(
                user_id="u", venue_id=venue, category_id="", category_name=venue,
                lat=40.7 + hash(venue) % 10 * 0.001, lon=-74.0, tz_offset_min=0,
                timestamp=datetime(2012, 4, 1, tzinfo=UTC) + timedelta(hours=3 * i),
            ))
        return CheckInDataset(records)

    def test_bundle(self):
        metrics = user_mobility_metrics(self.make_dataset(), "u")
        assert metrics.n_checkins == 30
        assert metrics.n_distinct_venues == 3
        assert metrics.top_location_share == pytest.approx(0.5)
        assert metrics.s_uncorrelated <= metrics.s_random
        assert 0.0 < metrics.predictability_bound <= 1.0

    def test_regular_user_highly_predictable(self):
        metrics = user_mobility_metrics(self.make_dataset(), "u")
        # A strictly periodic routine should be near the top of the bound.
        assert metrics.predictability_bound > 0.6

    def test_too_few_records_raises(self):
        ds = self.make_dataset()
        with pytest.raises(ValueError):
            user_mobility_metrics(ds, "ghost")


class TestRegularity:
    def test_by_hour(self):
        records = []
        for day in range(1, 11):
            # Always home at 8, alternating lunch venues at 12.
            records.append(CheckIn(
                user_id="u", venue_id="home", category_id="", category_name="Home",
                lat=40.7, lon=-74.0, tz_offset_min=0,
                timestamp=datetime(2012, 4, day, 8, 0, tzinfo=UTC)))
            records.append(CheckIn(
                user_id="u", venue_id=f"thai-{day % 2}", category_id="",
                category_name="Thai", lat=40.71, lon=-74.0, tz_offset_min=0,
                timestamp=datetime(2012, 4, day, 12, 0, tzinfo=UTC)))
        ds = CheckInDataset(records)
        regularity = regularity_by_hour(ds, "u")
        assert regularity[8] == 1.0   # always at the top venue at 8
        assert regularity[12] == 0.0  # never at the top venue at noon

    def test_unknown_user(self, small_ds):
        assert regularity_by_hour(small_ds, "ghost") == {}


class TestZipfFit:
    def test_exact_power_law_recovered(self):
        from repro.analysis import fit_zipf_exponent

        zeta = 1.2
        freqs = [(f"v{k}", k ** (-zeta)) for k in range(1, 30)]
        assert fit_zipf_exponent(freqs) == pytest.approx(zeta, abs=1e-6)

    def test_uniform_distribution_zero_exponent(self):
        from repro.analysis import fit_zipf_exponent

        freqs = [(f"v{k}", 0.1) for k in range(10)]
        assert fit_zipf_exponent(freqs) == pytest.approx(0.0, abs=1e-9)

    def test_too_few_raises(self):
        from repro.analysis import fit_zipf_exponent

        with pytest.raises(ValueError):
            fit_zipf_exponent([("a", 0.6), ("b", 0.4)])

    def test_nonpositive_share_raises(self):
        from repro.analysis import fit_zipf_exponent

        with pytest.raises(ValueError):
            fit_zipf_exponent([("a", 0.5), ("b", 0.5), ("c", 0.0)])

    def test_synthetic_user_has_positive_exponent(self, small_ds):
        from repro.analysis import fit_zipf_exponent, visitation_frequencies

        uid = max(small_ds.user_ids(), key=lambda u: len(small_ds.for_user(u)))
        freqs = visitation_frequencies([c.venue_id for c in small_ds.for_user(uid)])
        assert fit_zipf_exponent(freqs) > 0.3
