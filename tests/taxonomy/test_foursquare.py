"""Tests for the built-in Foursquare-style taxonomy."""

from repro.taxonomy import (
    DEFAULT_TAXONOMY_SPEC,
    AbstractionLevel,
    build_default_taxonomy,
    leaf_names,
    root_names,
)


class TestStructure:
    def test_validates(self):
        build_default_taxonomy().validate()

    def test_roots_match_spec(self, taxonomy):
        assert {c.name for c in taxonomy.roots()} == set(root_names())

    def test_paper_labels_present(self, taxonomy):
        # The categories the paper's own examples use.
        for name in ("Eatery", "Shops", "Thai Restaurant"):
            taxonomy.get_by_name(name)

    def test_all_leaves_are_depth_two(self, taxonomy):
        for leaf in taxonomy.leaves():
            assert taxonomy.depth(leaf.category_id) == 2

    def test_leaf_count_matches_spec(self, taxonomy):
        spec_leaves = sum(
            len(leaves) for groups in DEFAULT_TAXONOMY_SPEC.values()
            for leaves in groups.values()
        )
        assert len(taxonomy.leaves()) == spec_leaves
        assert len(leaf_names()) == spec_leaves

    def test_thai_restaurant_roots_to_eatery(self, taxonomy):
        node = taxonomy.get_by_name("Thai Restaurant")
        assert taxonomy.root_of(node.category_id).name == "Eatery"
        assert taxonomy.abstract(node.category_id, AbstractionLevel.ROOT) == "Eatery"

    def test_every_root_has_multiple_leaves(self, taxonomy):
        # Flexibility requires choice within every root category.
        for root in taxonomy.roots():
            leaves = [c for c in taxonomy.descendants(root.category_id) if c.is_leaf]
            assert len(leaves) >= 4, root.name

    def test_deterministic_ids(self):
        t1 = build_default_taxonomy()
        t2 = build_default_taxonomy()
        assert sorted(c.category_id for c in t1) == sorted(c.category_id for c in t2)
