"""Tests for the category tree."""

import pytest

from repro.taxonomy import AbstractionLevel, CategoryTree, UnknownCategoryError
from repro.taxonomy.category import subtree_names


@pytest.fixture
def tree():
    t = CategoryTree()
    t.add("food", "Eatery")
    t.add("asian", "Asian Restaurant", parent_id="food")
    t.add("thai", "Thai Restaurant", parent_id="asian")
    t.add("chinese", "Chinese Restaurant", parent_id="asian")
    t.add("cafe", "Coffee Shop", parent_id="food")
    t.add("shops", "Shops")
    t.add("grocery", "Supermarket", parent_id="shops")
    return t


class TestBuilding:
    def test_duplicate_id_raises(self, tree):
        with pytest.raises(ValueError):
            tree.add("food", "Other Food")

    def test_duplicate_name_raises(self, tree):
        with pytest.raises(ValueError):
            tree.add("food2", "eatery")  # case-insensitive collision

    def test_missing_parent_raises(self, tree):
        with pytest.raises(UnknownCategoryError):
            tree.add("x", "X", parent_id="nope")

    def test_len_and_iter(self, tree):
        assert len(tree) == 7
        assert {c.category_id for c in tree} == {
            "food", "asian", "thai", "chinese", "cafe", "shops", "grocery"
        }


class TestLookup:
    def test_get_by_id_and_name(self, tree):
        assert tree.get("thai").name == "Thai Restaurant"
        assert tree.get_by_name("thai restaurant").category_id == "thai"

    def test_unknown_raises(self, tree):
        with pytest.raises(UnknownCategoryError):
            tree.get("nope")
        with pytest.raises(UnknownCategoryError):
            tree.get_by_name("nope")

    def test_resolve_prefers_id(self, tree):
        assert tree.resolve("thai").category_id == "thai"
        assert tree.resolve("Thai Restaurant").category_id == "thai"

    def test_contains(self, tree):
        assert "thai" in tree
        assert "nope" not in tree


class TestHierarchy:
    def test_root_of(self, tree):
        assert tree.root_of("thai").name == "Eatery"
        assert tree.root_of("food").name == "Eatery"
        assert tree.root_of("grocery").name == "Shops"

    def test_ancestors_order(self, tree):
        names = [c.name for c in tree.ancestors("thai")]
        assert names == ["Asian Restaurant", "Eatery"]

    def test_descendants(self, tree):
        names = {c.name for c in tree.descendants("food")}
        assert names == {
            "Asian Restaurant", "Thai Restaurant", "Chinese Restaurant", "Coffee Shop"
        }

    def test_roots_and_leaves(self, tree):
        assert {c.name for c in tree.roots()} == {"Eatery", "Shops"}
        assert {c.name for c in tree.leaves()} == {
            "Thai Restaurant", "Chinese Restaurant", "Coffee Shop", "Supermarket"
        }

    def test_depth(self, tree):
        assert tree.depth("food") == 0
        assert tree.depth("asian") == 1
        assert tree.depth("thai") == 2

    def test_is_ancestor(self, tree):
        assert tree.is_ancestor("food", "thai")
        assert tree.is_ancestor("asian", "thai")
        assert not tree.is_ancestor("thai", "food")
        assert not tree.is_ancestor("shops", "thai")

    def test_lca(self, tree):
        assert tree.lowest_common_ancestor("thai", "chinese").category_id == "asian"
        assert tree.lowest_common_ancestor("thai", "cafe").category_id == "food"
        assert tree.lowest_common_ancestor("thai", "grocery") is None
        assert tree.lowest_common_ancestor("thai", "thai").category_id == "thai"


class TestAbstraction:
    def test_root_level(self, tree):
        assert tree.abstract("thai", AbstractionLevel.ROOT) == "Eatery"

    def test_leaf_level(self, tree):
        assert tree.abstract("thai", AbstractionLevel.LEAF) == "Thai Restaurant"

    def test_venue_level_raises(self, tree):
        with pytest.raises(ValueError):
            tree.abstract("thai", AbstractionLevel.VENUE)


class TestValidation:
    def test_valid_tree_passes(self, tree):
        tree.validate()

    def test_corrupted_child_pointer_detected(self, tree):
        tree.get("food").children_ids.append("ghost")
        with pytest.raises(ValueError):
            tree.validate()

    def test_cycle_detected(self, tree):
        # Manually corrupt parent pointers to create a cycle.
        tree.get("food").parent_id = "thai"
        with pytest.raises(ValueError):
            tree.validate()


def test_subtree_names(tree):
    names = subtree_names(tree, "Eatery")
    assert "Eatery" in names and "Thai Restaurant" in names
    assert "Supermarket" not in names
