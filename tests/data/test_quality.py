"""Tests for the dataset quality audit."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.data import CheckIn, CheckInDataset, Severity, audit_dataset
from repro.geo import BoundingBox

UTC = timezone.utc


def checkin(user="u1", venue="v1", cat="Thai Restaurant", lat=40.7, lon=-74.0,
            ts=None, tz=-240):
    return CheckIn(
        user_id=user, venue_id=venue, category_id="", category_name=cat,
        lat=lat, lon=lon, tz_offset_min=tz,
        timestamp=ts or datetime(2012, 4, 1, 12, 0, 0, tzinfo=UTC),
    )


def codes(report):
    return {issue.code for issue in report.issues}


class TestCleanData:
    def test_clean_dataset_passes(self, taxonomy):
        ds = CheckInDataset([
            checkin(ts=datetime(2012, 4, d, 12, 0, 0, tzinfo=UTC)) for d in range(1, 6)
        ])
        report = audit_dataset(ds, taxonomy)
        assert report.ok
        assert not report.errors

    def test_small_synthetic_is_clean(self, small_ds, taxonomy):
        report = audit_dataset(small_ds, taxonomy,
                               expected_bbox=small_ds.bounding_box())
        assert report.ok, report.summary()


class TestDetections:
    def test_empty_dataset(self):
        report = audit_dataset(CheckInDataset([]))
        assert not report.ok
        assert codes(report) == {"empty"}

    def test_null_island(self):
        ds = CheckInDataset([checkin(lat=0.0, lon=0.0)])
        report = audit_dataset(ds)
        assert "null-island" in codes(report)
        assert not report.ok

    def test_outside_study_area(self):
        box = BoundingBox(40.0, -75.0, 41.0, -74.0)
        ds = CheckInDataset([checkin(lat=35.0, lon=-74.5)])
        report = audit_dataset(ds, expected_bbox=box)
        assert "outside-study-area" in codes(report)

    def test_future_timestamps(self):
        ds = CheckInDataset([checkin(ts=datetime(2099, 1, 1, tzinfo=UTC))])
        report = audit_dataset(ds)
        assert "future-timestamps" in codes(report)
        assert not report.ok

    def test_ancient_timestamps_warn(self):
        ds = CheckInDataset([checkin(ts=datetime(1999, 1, 1, tzinfo=UTC))])
        report = audit_dataset(ds)
        assert "pre-2000-timestamps" in codes(report)
        assert report.ok  # warning only

    def test_invalid_tz(self):
        ds = CheckInDataset([checkin(tz=2000)])
        report = audit_dataset(ds)
        assert "invalid-tz-offset" in codes(report)

    def test_duplicates(self):
        record = checkin()
        ds = CheckInDataset([record, record, checkin(user="u2")])
        report = audit_dataset(ds)
        duplicate_issue = next(i for i in report.issues if i.code == "duplicate-records")
        assert duplicate_issue.count == 1

    def test_venue_conflicts(self):
        ds = CheckInDataset([
            checkin(venue="vX", lat=40.7),
            checkin(venue="vX", lat=40.9,
                    ts=datetime(2012, 4, 2, 12, 0, 0, tzinfo=UTC)),
            checkin(venue="vY", cat="Thai Restaurant"),
            checkin(venue="vY", cat="Gym",
                    ts=datetime(2012, 4, 3, 12, 0, 0, tzinfo=UTC)),
        ])
        report = audit_dataset(ds)
        assert "venue-location-conflict" in codes(report)
        assert "venue-category-conflict" in codes(report)

    def test_unknown_categories_info(self, taxonomy):
        ds = CheckInDataset([checkin(cat="Klingon Embassy")])
        report = audit_dataset(ds, taxonomy)
        issue = next(i for i in report.issues if i.code == "unknown-categories")
        assert issue.severity is Severity.INFO
        assert "Klingon Embassy" in issue.message

    def test_thin_users_info(self):
        ds = CheckInDataset([checkin(user="solo")])
        report = audit_dataset(ds, min_records_per_user=2)
        assert "thin-users" in codes(report)

    def test_invalid_argument(self, small_ds):
        with pytest.raises(ValueError):
            audit_dataset(small_ds, min_records_per_user=0)


class TestReport:
    def test_summary_text(self):
        ds = CheckInDataset([checkin(lat=0.0, lon=0.0)])
        report = audit_dataset(ds)
        text = report.summary()
        assert "FAILED" in text
        assert "null-island" in text

    def test_ok_summary(self, taxonomy):
        ds = CheckInDataset([
            checkin(ts=datetime(2012, 4, d, 12, 0, 0, tzinfo=UTC)) for d in range(1, 4)
        ])
        assert "OK" in audit_dataset(ds, taxonomy).summary()
