"""Tests for the synthetic GTSM generator (the dataset substitution)."""

import pytest

from repro.data import SMALL_CONFIG, SynthConfig, dataset_stats, generate
from repro.data.synth import build_agents, build_city
from repro.taxonomy import build_default_taxonomy

import numpy as np


class TestConfig:
    def test_defaults_valid(self):
        SynthConfig()

    @pytest.mark.parametrize("kwargs", [
        {"n_users": 0},
        {"exploration_prob": 1.5},
        {"checkin_rate_mean": 0.0},
        {"checkin_rate_clamp": (0.5, 0.2)},
        {"worker_fraction": 0.9, "student_fraction": 0.3},
        {"power_user_fraction": -0.1},
        {"monthly_seasonality": {1: 1.0}},
    ])
    def test_invalid_configs_raise(self, kwargs):
        with pytest.raises(ValueError):
            SynthConfig(**kwargs)

    def test_end_before_start_raises(self):
        from datetime import date
        with pytest.raises(ValueError):
            SynthConfig(start_date=date(2012, 6, 1), end_date=date(2012, 4, 1))

    def test_n_days(self):
        assert SMALL_CONFIG.n_days == 76


class TestCity:
    @pytest.fixture(scope="class")
    def city(self):
        rng = np.random.default_rng(3)
        return build_city(SMALL_CONFIG.bbox, 6, 500, 800.0, rng,
                          build_default_taxonomy())

    def test_venue_count(self, city):
        assert len(city.venues) >= 450  # rounding of dirichlet shares

    def test_all_venues_inside_bbox(self, city):
        for venue in city.venues:
            assert city.bbox.contains(venue.location)

    def test_venue_categories_resolvable(self, city):
        for venue in city.venues[:50]:
            node = city.taxonomy.get(venue.category_id)
            assert node.name == venue.category_name
            assert node.is_leaf

    def test_lookup_by_root_and_leaf(self, city):
        eateries = city.venues_of_root("Eatery")
        assert eateries
        thai = city.venues_of_leaf("Thai Restaurant")
        assert all(v.category_name == "Thai Restaurant" for v in thai)

    def test_nearest_of_root_sorted(self, city):
        anchor = city.neighborhoods[0].center
        nearest = city.nearest_of_root(anchor, "Eatery", k=5)
        distances = [anchor.fast_distance_to(v.location) for v in nearest]
        assert distances == sorted(distances)

    def test_unknown_category_empty(self, city):
        assert city.venues_of_leaf("Space Elevator") == []


class TestAgents:
    @pytest.fixture(scope="class")
    def world(self):
        rng = np.random.default_rng(5)
        taxonomy = build_default_taxonomy()
        city = build_city(SMALL_CONFIG.bbox, 6, 600, 800.0, rng, taxonomy)
        agents = build_agents(city, SMALL_CONFIG, rng)
        return city, agents

    def test_population_size(self, world):
        _, agents = world
        assert len(agents) == SMALL_CONFIG.n_users

    def test_personas_distributed(self, world):
        _, agents = world
        personas = {a.persona for a in agents}
        assert personas == {"worker", "student", "freelancer"}

    def test_rates_clamped(self, world):
        _, agents = world
        lo, hi = SMALL_CONFIG.checkin_rate_clamp
        assert all(lo <= a.checkin_prob <= hi for a in agents)

    def test_routines_reference_real_venues(self, world):
        city, agents = world
        for agent in agents[:20]:
            for stop in agent.weekday_routine:
                if stop.pool_kind == "fixed":
                    assert stop.target in city.venues_by_id

    def test_preference_pools_match_category(self, world):
        city, agents = world
        for agent in agents[:20]:
            for stop in agent.weekday_routine:
                if stop.pool_kind == "leaf" and stop.slot_key in agent.preferred:
                    pool = agent.preferred[stop.slot_key]
                    assert all(v.category_name == stop.target for v in pool)

    def test_weekend_vs_weekday_routine(self, world):
        _, agents = world
        agent = agents[0]
        assert agent.routine_for(0) == agent.weekday_routine
        assert agent.routine_for(6) == agent.weekend_routine


class TestGeneration:
    def test_deterministic(self):
        cfg = SynthConfig(**{**SMALL_CONFIG.__dict__, "n_users": 10})
        a = generate(cfg).dataset
        b = generate(cfg).dataset
        assert len(a) == len(b)
        assert [c.timestamp for c in a] == [c.timestamp for c in b]
        assert [c.venue_id for c in a] == [c.venue_id for c in b]

    def test_different_seed_differs(self):
        base = {**SMALL_CONFIG.__dict__, "n_users": 10}
        a = generate(SynthConfig(**{**base, "seed": 1})).dataset
        b = generate(SynthConfig(**{**base, "seed": 2})).dataset
        assert [c.venue_id for c in a] != [c.venue_id for c in b]

    def test_timestamps_inside_period(self, small_ds):
        lo, hi = small_ds.time_range()
        assert lo.date() >= SMALL_CONFIG.start_date
        # One day of slack: local-time offsets can spill into the next UTC day.
        assert (hi.date() - SMALL_CONFIG.end_date).days <= 1

    def test_sparse_like_paper(self, small_ds):
        stats = dataset_stats(small_ds)
        assert stats.is_sparse

    def test_checkins_reference_city_venues(self, small_gen):
        for record in list(small_gen.dataset)[:200]:
            venue = small_gen.city.venues_by_id[record.venue_id]
            assert venue.category_name == record.category_name

    def test_flexibility_same_slot_many_venues(self, small_gen):
        """The paper's motivation: a user's lunch slot spans multiple venues."""
        # Power users have enough records to observe the flexibility.
        busiest = max(small_gen.agents, key=lambda a: a.checkin_prob)
        records = small_gen.dataset.for_user(busiest.user_id)
        lunch = [c for c in records if 11.5 <= c.local_hour <= 13.8
                 and c.category_name == busiest.weekday_routine[3].target]
        if len(lunch) >= 10:
            assert len({c.venue_id for c in lunch}) >= 2

    def test_ground_truth_accessible(self, small_gen):
        assert small_gen.agents_by_id[small_gen.agents[0].user_id] is small_gen.agents[0]
