"""Round-trip and error tests for dataset I/O."""

from datetime import datetime, timezone

import pytest

from repro.data import (
    CheckIn,
    CheckInDataset,
    Venue,
    load_dataset,
    read_csv,
    read_foursquare_tsv,
    read_jsonl,
    save_dataset,
    write_csv,
    write_foursquare_tsv,
    write_jsonl,
)
from repro.geo import GeoPoint

UTC = timezone.utc


@pytest.fixture
def dataset():
    checkins = [
        CheckIn(
            user_id=f"u{i % 3}",
            venue_id=f"v{i % 4}",
            category_id="cat-1",
            category_name="Thai Restaurant",
            lat=40.7 + i * 0.001,
            lon=-74.0 - i * 0.001,
            tz_offset_min=-240,
            timestamp=datetime(2012, 4, 1 + i, 11 + i % 6, 30, 15, tzinfo=UTC),
        )
        for i in range(8)
    ]
    venues = {
        f"v{j}": Venue(f"v{j}", f"Venue {j}", "cat-1", "Thai Restaurant",
                       GeoPoint(40.7, -74.0))
        for j in range(4)
    }
    return CheckInDataset(checkins, venues, name="io-test")


def assert_same_records(a: CheckInDataset, b: CheckInDataset):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.user_id == y.user_id
        assert x.venue_id == y.venue_id
        assert x.category_name == y.category_name
        assert x.timestamp == y.timestamp
        assert x.lat == pytest.approx(y.lat, abs=1e-7)
        assert x.tz_offset_min == y.tz_offset_min


class TestFoursquareTsv:
    def test_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "data.tsv"
        write_foursquare_tsv(dataset, path)
        loaded = read_foursquare_tsv(path)
        assert_same_records(dataset, loaded)

    def test_real_dump_line_parses(self, tmp_path):
        # Verbatim format of dataset_TSMC2014_NYC.txt.
        line = ("470\t49bbd6c0f964a520f4531fe3\t4bf58dd8d48988d127951735\t"
                "Arts & Crafts Store\t40.719810375488535\t-74.00258103213994\t"
                "-240\tTue Apr 03 18:00:09 +0000 2012\n")
        path = tmp_path / "nyc.txt"
        path.write_text(line)
        ds = read_foursquare_tsv(path)
        assert len(ds) == 1
        record = ds[0]
        assert record.user_id == "470"
        assert record.category_name == "Arts & Crafts Store"
        assert record.timestamp == datetime(2012, 4, 3, 18, 0, 9, tzinfo=UTC)
        assert record.local_time.hour == 14  # UTC-4

    def test_wrong_field_count_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("a\tb\tc\n")
        with pytest.raises(ValueError, match="expected 8"):
            read_foursquare_tsv(path)

    def test_bad_latitude_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("u\tv\tc\tCafe\tNOT_A_NUMBER\t-74.0\t-240\t"
                        "Tue Apr 03 18:00:09 +0000 2012\n")
        with pytest.raises(ValueError, match=":1:"):
            read_foursquare_tsv(path)

    def test_blank_lines_skipped(self, dataset, tmp_path):
        path = tmp_path / "data.tsv"
        write_foursquare_tsv(dataset, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(read_foursquare_tsv(path)) == len(dataset)


class TestCsv:
    def test_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(dataset, path)
        assert_same_records(dataset, read_csv(path))

    def test_missing_columns_raise(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("user_id,venue_id\nu,v\n")
        with pytest.raises(ValueError, match="missing CSV columns"):
            read_csv(path)


class TestJsonl:
    def test_roundtrip_with_sidecar(self, dataset, tmp_path):
        path = tmp_path / "data.jsonl"
        write_jsonl(dataset, path)
        assert (tmp_path / "data.jsonl.venues.json").exists()
        loaded = read_jsonl(path)
        assert_same_records(dataset, loaded)
        assert loaded.venues["v0"].name == "Venue 0"

    def test_load_without_sidecar_synthesizes_venues(self, dataset, tmp_path):
        path = tmp_path / "data.jsonl"
        write_jsonl(dataset, path)
        (tmp_path / "data.jsonl.venues.json").unlink()
        loaded = read_jsonl(path)
        assert set(loaded.venues) == {c.venue_id for c in dataset}

    def test_malformed_json_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ValueError, match=":1:"):
            read_jsonl(path)


class TestDispatch:
    @pytest.mark.parametrize("ext", [".tsv", ".txt", ".csv", ".jsonl"])
    def test_save_load_roundtrip(self, dataset, tmp_path, ext):
        path = tmp_path / f"data{ext}"
        save_dataset(dataset, path)
        assert_same_records(dataset, load_dataset(path))

    def test_unknown_extension_raises(self, dataset, tmp_path):
        with pytest.raises(ValueError, match="unsupported"):
            save_dataset(dataset, tmp_path / "data.parquet")
        with pytest.raises(ValueError, match="unsupported"):
            load_dataset(tmp_path / "data.parquet")
