"""Tests for dataset statistics (the paper's §I.1 analysis)."""

from datetime import datetime, timezone

import pytest

from repro.data import CheckIn, CheckInDataset, dataset_stats, monthly_counts
from repro.data.stats import active_days_per_user, records_per_user_histogram

UTC = timezone.utc


def checkin(user, month, day, hour=12):
    return CheckIn(
        user_id=user, venue_id="v1", category_id="c", category_name="Cafe",
        lat=40.7, lon=-74.0, tz_offset_min=0,
        timestamp=datetime(2012, month, day, hour, 0, 0, tzinfo=UTC),
    )


@pytest.fixture
def crafted():
    # u1: 4 records, u2: 2, u3: 1 -> mean 7/3, median 2.
    records = [
        checkin("u1", 4, 1), checkin("u1", 4, 2), checkin("u1", 5, 1), checkin("u1", 6, 1),
        checkin("u2", 4, 3), checkin("u2", 7, 1),
        checkin("u3", 5, 10),
    ]
    return CheckInDataset(records, name="crafted")


class TestDatasetStats:
    def test_counts(self, crafted):
        stats = dataset_stats(crafted)
        assert stats.n_checkins == 7
        assert stats.n_users == 3
        assert stats.mean_records_per_user == pytest.approx(7 / 3)
        assert stats.median_records_per_user == 2.0
        assert stats.min_records_per_user == 1
        assert stats.max_records_per_user == 4

    def test_collection_days_inclusive(self, crafted):
        stats = dataset_stats(crafted)
        # Apr 1 .. Jul 1 inclusive.
        assert stats.collection_days == 92

    def test_sparsity_criterion(self, crafted):
        stats = dataset_stats(crafted)
        assert stats.records_per_user_per_day < 1.0
        assert stats.is_sparse

    def test_dense_dataset_not_sparse(self):
        records = [checkin("u1", 4, 1, hour=h) for h in range(10)]
        stats = dataset_stats(CheckInDataset(records))
        assert not stats.is_sparse

    def test_monthly_counts(self, crafted):
        assert monthly_counts(crafted) == {
            "2012-04": 3, "2012-05": 2, "2012-06": 1, "2012-07": 1,
        }

    def test_densest_months(self, crafted):
        stats = dataset_stats(crafted)
        assert stats.densest_months(3) == ["2012-04", "2012-05", "2012-06"]
        assert stats.densest_months(1) == ["2012-04"]

    def test_densest_months_fewer_than_k(self):
        stats = dataset_stats(CheckInDataset([checkin("u1", 4, 1)]))
        assert stats.densest_months(3) == ["2012-04"]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            dataset_stats(CheckInDataset([]))

    def test_as_rows_structure(self, crafted):
        rows = dict(dataset_stats(crafted).as_rows())
        assert rows["check-ins"] == "7"
        assert rows["sparse (<1/user/day)"] == "yes"


class TestHistograms:
    def test_records_histogram(self, crafted):
        hist = records_per_user_histogram(crafted, bin_width=2)
        # u3 (1) and u2 (2) land in different bins: 1 -> 0-1, 2 -> 2-3, 4 -> 4-5.
        assert hist == {"0-1": 1, "2-3": 1, "4-5": 1}

    def test_histogram_invalid_width(self, crafted):
        with pytest.raises(ValueError):
            records_per_user_histogram(crafted, bin_width=0)

    def test_active_days(self, crafted):
        days = active_days_per_user(crafted)
        assert days == {"u1": 4, "u2": 2, "u3": 1}


class TestSmallSynthetic:
    def test_small_dataset_is_sparse_like_paper(self, small_ds):
        stats = dataset_stats(small_ds)
        assert stats.is_sparse
        assert stats.median_records_per_user <= stats.mean_records_per_user

    def test_small_dataset_densest_is_spring(self, small_ds):
        stats = dataset_stats(small_ds)
        assert stats.densest_months(2)[0].startswith("2012-0")
