"""Fuzz/property tests for dataset I/O: malformed input must fail loudly
(ValueError with location info), never crash with anything else; valid
records must round-trip faithfully through every format."""

from datetime import datetime, timedelta, timezone

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    CheckIn,
    CheckInDataset,
    load_dataset,
    read_csv,
    read_foursquare_tsv,
    read_jsonl,
    save_dataset,
)

UTC = timezone.utc

# Identifier-ish text without the characters that delimit any format.
ident = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd"),
        whitelist_characters="-_",
    ),
    min_size=1,
    max_size=12,
)

checkins = st.builds(
    CheckIn,
    user_id=ident,
    venue_id=ident,
    category_id=ident,
    category_name=ident,
    lat=st.floats(min_value=-89.0, max_value=89.0),
    lon=st.floats(min_value=-179.0, max_value=179.0),
    tz_offset_min=st.integers(min_value=-720, max_value=720),
    timestamp=st.integers(min_value=0, max_value=3 * 10**9).map(
        lambda s: datetime(2012, 1, 1, tzinfo=UTC) + timedelta(seconds=s % (300 * 86400))
    ),
)

datasets = st.lists(checkins, min_size=1, max_size=12).map(CheckInDataset)


class TestRoundtripProperty:
    @pytest.mark.parametrize("ext", [".tsv", ".csv", ".jsonl"])
    @given(ds=datasets)
    @settings(max_examples=25, deadline=None)
    def test_random_datasets_roundtrip(self, ds, ext, tmp_path_factory):
        path = tmp_path_factory.mktemp("fuzz") / f"data{ext}"
        save_dataset(ds, path)
        loaded = load_dataset(path)
        assert len(loaded) == len(ds)
        for a, b in zip(ds, loaded):
            assert a.user_id == b.user_id
            assert a.venue_id == b.venue_id
            assert a.lat == pytest.approx(b.lat, abs=1e-7)
            # TSV keeps second precision; timestamps agree to the second.
            assert abs((a.timestamp - b.timestamp).total_seconds()) < 1.0


class TestGarbageRejection:
    @given(garbage=st.text(max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_tsv_reader_raises_valueerror_only(self, garbage, tmp_path_factory):
        path = tmp_path_factory.mktemp("fuzz") / "garbage.tsv"
        path.write_text(garbage, encoding="utf-8")
        try:
            ds = read_foursquare_tsv(path)
        except ValueError as exc:
            assert "garbage.tsv" in str(exc)  # location info present
        else:
            # Only whitespace-only input parses (as an empty dataset).
            assert len(ds) == 0

    @given(garbage=st.text(max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_jsonl_reader_raises_valueerror_only(self, garbage, tmp_path_factory):
        path = tmp_path_factory.mktemp("fuzz") / "garbage.jsonl"
        path.write_text(garbage, encoding="utf-8")
        try:
            ds = read_jsonl(path)
        except ValueError:
            pass
        else:
            assert len(ds) == 0

    @given(garbage=st.text(max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_csv_reader_raises_valueerror_only(self, garbage, tmp_path_factory):
        path = tmp_path_factory.mktemp("fuzz") / "garbage.csv"
        path.write_text(garbage, encoding="utf-8")
        try:
            ds = read_csv(path)
        except ValueError:
            pass
        else:
            assert len(ds) == 0

    def test_truncated_real_file(self, tmp_path, small_ds):
        """Cutting a valid file mid-record still fails cleanly."""
        path = tmp_path / "data.tsv"
        save_dataset(small_ds.filter_users(small_ds.user_ids()[:2]), path)
        content = path.read_text()
        path.write_text(content[: len(content) // 2 - 7])
        with pytest.raises(ValueError):
            read_foursquare_tsv(path)
