"""Tests for the record model and dataset container."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.data import CheckIn, CheckInDataset, Venue
from repro.geo import BoundingBox, GeoPoint

UTC = timezone.utc


def make_checkin(user="u1", minute=0, venue="v1", cat="Coffee Shop",
                 lat=40.7, lon=-74.0, tz=-240, day=1):
    return CheckIn(
        user_id=user,
        venue_id=venue,
        category_id="c1",
        category_name=cat,
        lat=lat,
        lon=lon,
        tz_offset_min=tz,
        timestamp=datetime(2012, 4, day, 12, minute, 0, tzinfo=UTC),
    )


@pytest.fixture
def dataset():
    checkins = [
        make_checkin("u2", minute=5),
        make_checkin("u1", minute=30, venue="v2", cat="Thai Restaurant"),
        make_checkin("u1", minute=10),
        make_checkin("u3", minute=0, day=2, venue="v3"),
    ]
    venues = {"v1": Venue("v1", "Cafe One", "c1", "Coffee Shop", GeoPoint(40.7, -74.0))}
    return CheckInDataset(checkins, venues, name="test")


class TestCheckIn:
    def test_naive_timestamp_rejected(self):
        with pytest.raises(ValueError):
            CheckIn(user_id="u", venue_id="v",
                    timestamp=datetime(2012, 4, 1, 12, 0, 0))

    def test_local_time_applies_offset(self):
        c = make_checkin(tz=-240)  # UTC-4
        assert c.local_time.hour == 8
        assert c.local_hour == pytest.approx(8.0)

    def test_local_date_can_shift_days(self):
        c = CheckIn(user_id="u", venue_id="v", tz_offset_min=-240,
                    timestamp=datetime(2012, 4, 2, 2, 0, 0, tzinfo=UTC))
        assert c.local_date.day == 1  # 2:00 UTC is 22:00 previous day local

    def test_ordering_user_then_time(self):
        a = make_checkin("u1", minute=30)
        b = make_checkin("u1", minute=10)
        c = make_checkin("u0", minute=59)
        assert sorted([a, b, c]) == [c, b, a]

    def test_location_property(self):
        assert make_checkin().location == GeoPoint(40.7, -74.0)


class TestDataset:
    def test_sorted_and_indexed(self, dataset):
        assert len(dataset) == 4
        assert dataset.n_users == 3
        u1 = dataset.for_user("u1")
        assert len(u1) == 2
        assert u1[0].timestamp <= u1[1].timestamp

    def test_unknown_user_empty(self, dataset):
        assert dataset.for_user("ghost") == ()

    def test_records_per_user(self, dataset):
        assert dataset.records_per_user() == {"u1": 2, "u2": 1, "u3": 1}

    def test_time_range(self, dataset):
        lo, hi = dataset.time_range()
        assert lo.day == 1 and hi.day == 2

    def test_time_range_empty_raises(self):
        with pytest.raises(ValueError):
            CheckInDataset([]).time_range()

    def test_bounding_box(self, dataset):
        box = dataset.bounding_box()
        assert box.contains(GeoPoint(40.7, -74.0))

    def test_category_names_sorted(self, dataset):
        assert dataset.category_names() == ["Coffee Shop", "Thai Restaurant"]

    def test_numpy_columns(self, dataset):
        assert dataset.lat_array().shape == (4,)
        assert dataset.epoch_array().min() > 0

    def test_getitem_and_iter(self, dataset):
        assert dataset[0].user_id == "u1"
        assert len(list(dataset)) == 4


class TestFilters:
    def test_filter_time_half_open(self, dataset):
        start = datetime(2012, 4, 1, tzinfo=UTC)
        end = datetime(2012, 4, 2, tzinfo=UTC)
        got = dataset.filter_time(start, end)
        assert len(got) == 3
        assert all(c.timestamp < end for c in got)

    def test_filter_time_naive_raises(self, dataset):
        with pytest.raises(ValueError):
            dataset.filter_time(datetime(2012, 4, 1), datetime(2012, 4, 2, tzinfo=UTC))

    def test_filter_users(self, dataset):
        got = dataset.filter_users(["u1", "u3"])
        assert got.n_users == 2
        assert len(got) == 3

    def test_filter_users_prunes_venues(self, dataset):
        got = dataset.filter_users(["u3"])
        assert "v1" not in got.venues  # u3 never visited v1

    def test_filter_bbox(self, dataset):
        tight = BoundingBox(40.69, -74.01, 40.71, -73.99)
        assert len(dataset.filter_bbox(tight)) == 4
        empty = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert len(dataset.filter_bbox(empty)) == 0

    def test_filter_categories_case_insensitive(self, dataset):
        got = dataset.filter_categories(["thai restaurant"])
        assert len(got) == 1

    def test_filter_predicate(self, dataset):
        got = dataset.filter(lambda c: c.user_id == "u2")
        assert got.user_ids() == ["u2"]

    def test_merge(self, dataset):
        other = CheckInDataset([make_checkin("u9")], name="other")
        merged = dataset.merge(other)
        assert len(merged) == 5
        assert merged.n_users == 4

    def test_with_name_shares_data(self, dataset):
        renamed = dataset.with_name("renamed")
        assert renamed.name == "renamed"
        assert len(renamed) == len(dataset)
        assert renamed.records is dataset.records
