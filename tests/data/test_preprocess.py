"""Tests for densest-window selection and the active-user filter."""

from datetime import datetime, timezone

import pytest

from repro.data import (
    ActiveUserFilter,
    CheckIn,
    CheckInDataset,
    densest_window,
    filter_active_users,
    preprocess,
    select_densest_window,
)

UTC = timezone.utc


def checkin(user, month, day, hour, minute=0, year=2012):
    return CheckIn(
        user_id=user, venue_id="v", category_id="c", category_name="Cafe",
        lat=40.7, lon=-74.0, tz_offset_min=0,
        timestamp=datetime(year, month, day, hour, minute, 0, tzinfo=UTC),
    )


class TestDensestWindow:
    def test_picks_heaviest_consecutive_months(self):
        records = (
            [checkin("u", 1, d, 12) for d in range(1, 4)]      # Jan: 3
            + [checkin("u", 4, d, 12) for d in range(1, 11)]   # Apr: 10
            + [checkin("u", 5, d, 12) for d in range(1, 11)]   # May: 10
            + [checkin("u", 6, d, 12) for d in range(1, 6)]    # Jun: 5
        )
        ds = CheckInDataset(records)
        start, end = densest_window(ds, months=3)
        assert (start.month, end.month) == (4, 7)

    def test_window_crossing_year(self):
        records = (
            [checkin("u", 12, d, 12) for d in range(1, 20)]
            + [checkin("u", 1, d, 12, year=2013) for d in range(1, 20)]
        )
        ds = CheckInDataset(records)
        start, end = densest_window(ds, months=2)
        assert start == datetime(2012, 12, 1, tzinfo=UTC)
        assert end == datetime(2013, 2, 1, tzinfo=UTC)

    def test_fewer_months_than_window(self):
        ds = CheckInDataset([checkin("u", 4, 1, 12)])
        start, end = densest_window(ds, months=3)
        assert (start.month, end.month) == (4, 5)

    def test_invalid_months_raises(self):
        ds = CheckInDataset([checkin("u", 4, 1, 12)])
        with pytest.raises(ValueError):
            densest_window(ds, months=0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            densest_window(CheckInDataset([]), months=3)

    def test_select_restricts_records(self):
        records = [checkin("u", m, 1, 12) for m in (1, 4, 5, 6, 9)] + [
            checkin("u", 4, d, 12) for d in range(2, 10)
        ]
        windowed = select_densest_window(CheckInDataset(records), months=3)
        months = {c.timestamp.month for c in windowed}
        assert months <= {4, 5, 6}


class TestActiveUserFilter:
    def test_qualifying_day_needs_close_checkins(self):
        # Day 1: two check-ins 1 h apart (qualifies).
        # Day 2: two check-ins 5 h apart (does not qualify at 2 h).
        # Day 3: single check-in (does not qualify).
        ds = CheckInDataset([
            checkin("u", 4, 1, 9), checkin("u", 4, 1, 10),
            checkin("u", 4, 2, 9), checkin("u", 4, 2, 14),
            checkin("u", 4, 3, 9),
        ])
        criteria = ActiveUserFilter(min_qualifying_days=0, max_gap_hours=2.0)
        assert criteria.qualifying_days(ds, "u") == 1

    def test_gap_boundary_inclusive(self):
        ds = CheckInDataset([checkin("u", 4, 1, 9, 0), checkin("u", 4, 1, 11, 0)])
        criteria = ActiveUserFilter(max_gap_hours=2.0)
        assert criteria.qualifying_days(ds, "u") == 1

    def test_threshold_is_strict_greater(self):
        ds = CheckInDataset([
            checkin("u", 4, d, 9) for d in range(1, 4)
        ] + [
            checkin("u", 4, d, 10) for d in range(1, 4)
        ])  # 3 qualifying days
        assert ActiveUserFilter(min_qualifying_days=2).passing_users(ds) == ["u"]
        assert ActiveUserFilter(min_qualifying_days=3).passing_users(ds) == []

    def test_min_checkins_one_counts_single_visit_days(self):
        ds = CheckInDataset([checkin("u", 4, 1, 9)])
        lenient = ActiveUserFilter(min_qualifying_days=0, min_checkins_per_day=1)
        assert lenient.qualifying_days(ds, "u") == 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ActiveUserFilter(min_qualifying_days=-1)
        with pytest.raises(ValueError):
            ActiveUserFilter(max_gap_hours=0)
        with pytest.raises(ValueError):
            ActiveUserFilter(min_checkins_per_day=0)

    def test_filter_active_users_keeps_only_passing(self):
        busy = [checkin("busy", 4, d, h) for d in range(1, 11) for h in (9, 10)]
        quiet = [checkin("quiet", 4, 1, 9)]
        ds = CheckInDataset(busy + quiet)
        filtered = filter_active_users(ds, ActiveUserFilter(min_qualifying_days=5))
        assert filtered.user_ids() == ["busy"]


class TestPreprocess:
    def test_report_is_consistent(self, small_ds):
        filtered, report = preprocess(
            small_ds, months=2,
            criteria=ActiveUserFilter(min_qualifying_days=25),
        )
        assert report.input_checkins == len(small_ds)
        assert report.window_checkins >= report.output_checkins
        assert report.active_users == filtered.n_users
        assert report.output_checkins == len(filtered)
        assert filtered.n_users <= small_ds.n_users

    def test_report_rows_render(self, small_ds):
        _, report = preprocess(small_ds, months=2,
                               criteria=ActiveUserFilter(min_qualifying_days=25))
        rows = dict(report.as_rows())
        assert "densest window" in rows
