"""Tests for behavioural community detection (label propagation)."""

import networkx as nx
import pytest

from repro.crowd import (
    build_similarity_graph,
    detect_communities,
    label_propagation,
)
from repro.mining import SequentialPattern
from repro.patterns import UserPatternProfile
from repro.sequences import TimedItem


def profile(user_id, items):
    patterns = tuple(
        SequentialPattern(items=(TimedItem(b, l),), count=5, support=0.5)
        for b, l in items
    )
    return UserPatternProfile(user_id=user_id, patterns=patterns, n_days=10)


@pytest.fixture
def two_cliques():
    """Two behavioural groups: office workers vs night owls."""
    office = [(9, "Work"), (12, "Eatery")]
    night = [(21, "Nightlife"), (23, "Residence")]
    return {
        "w1": profile("w1", office),
        "w2": profile("w2", office),
        "w3": profile("w3", office + [(17, "Shops")]),
        "n1": profile("n1", night),
        "n2": profile("n2", night),
    }


class TestSimilarityGraph:
    def test_structure(self, two_cliques):
        graph = build_similarity_graph(two_cliques, min_similarity=0.3)
        assert set(graph.nodes) == set(two_cliques)
        assert graph.has_edge("w1", "w2")
        assert graph.has_edge("n1", "n2")
        assert not graph.has_edge("w1", "n1")
        assert graph["w1"]["w2"]["weight"] == 1.0

    def test_threshold(self, two_cliques):
        loose = build_similarity_graph(two_cliques, min_similarity=0.0)
        tight = build_similarity_graph(two_cliques, min_similarity=0.9)
        assert loose.number_of_edges() >= tight.number_of_edges()

    def test_invalid_threshold(self, two_cliques):
        with pytest.raises(ValueError):
            build_similarity_graph(two_cliques, min_similarity=1.5)


class TestLabelPropagation:
    def test_two_components_two_labels(self):
        graph = nx.Graph()
        graph.add_edge("a", "b", weight=1.0)
        graph.add_edge("b", "c", weight=1.0)
        graph.add_edge("x", "y", weight=1.0)
        labels = label_propagation(graph)
        assert labels["a"] == labels["b"] == labels["c"]
        assert labels["x"] == labels["y"]
        assert labels["a"] != labels["x"]

    def test_isolated_node_keeps_own_label(self):
        graph = nx.Graph()
        graph.add_edge("a", "b", weight=1.0)
        graph.add_node("loner")
        labels = label_propagation(graph)
        assert labels["loner"] not in (labels["a"],)

    def test_deterministic(self):
        graph = nx.karate_club_graph()
        assert label_propagation(graph, seed=3) == label_propagation(graph, seed=3)

    def test_weight_dominates(self):
        # b is pulled toward the heavy edge.
        graph = nx.Graph()
        graph.add_edge("a", "b", weight=5.0)
        graph.add_edge("b", "c", weight=0.1)
        graph.add_edge("c", "d", weight=0.1)
        labels = label_propagation(graph)
        assert labels["a"] == labels["b"]

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            label_propagation(nx.Graph(), max_iterations=0)


class TestDetectCommunities:
    def test_recovers_behavioural_groups(self, two_cliques):
        communities = detect_communities(two_cliques, min_similarity=0.3)
        by_user = {}
        for community in communities:
            for uid in community.user_ids:
                by_user[uid] = community.community_id
        assert by_user["w1"] == by_user["w2"]
        assert by_user["n1"] == by_user["n2"]
        assert by_user["w1"] != by_user["n1"]

    def test_largest_first_and_contiguous_ids(self, two_cliques):
        communities = detect_communities(two_cliques, min_similarity=0.3)
        sizes = [c.size for c in communities]
        assert sizes == sorted(sizes, reverse=True)
        assert [c.community_id for c in communities] == list(range(len(communities)))

    def test_min_size_filters(self, two_cliques):
        communities = detect_communities(two_cliques, min_similarity=0.3, min_size=3)
        assert all(c.size >= 3 for c in communities)

    def test_invalid_min_size(self, two_cliques):
        with pytest.raises(ValueError):
            detect_communities(two_cliques, min_size=0)

    def test_on_pipeline_profiles(self, pipeline_result):
        communities = detect_communities(pipeline_result.profiles, min_similarity=0.05)
        covered = [uid for c in communities for uid in c.user_ids]
        assert sorted(covered) == sorted(pipeline_result.profiles)
