"""Tests for the crowd-movement animation."""

import pytest

from repro.crowd import CrowdSnapshot, TimeWindow, UserPlacement, build_animation
from repro.crowd.aggregate import CrowdTimeline
from repro.geo import BoundingBox, MicrocellGrid
from repro.sequences import HOURLY


def placement(user, lat, lon, bin_=9, label="Eatery"):
    return UserPlacement(
        user_id=user, bin=bin_, label=label, support=0.7,
        cell=(0, 0), venue_id="v", lat=lat, lon=lon, n_evidence=3,
    )


@pytest.fixture
def timeline():
    grid = MicrocellGrid(BoundingBox(40.0, -75.0, 41.0, -74.0), 5000.0)
    a = CrowdSnapshot(
        window=TimeWindow(9, 10, HOURLY),
        placements=(placement("mover", 40.2, -74.8), placement("stayer", 40.5, -74.5)),
        grid=grid,
    )
    b = CrowdSnapshot(
        window=TimeWindow(10, 11, HOURLY),
        placements=(placement("mover", 40.6, -74.2, 10), placement("stayer", 40.5, -74.5, 10)),
        grid=grid,
    )
    return CrowdTimeline(snapshots=(a, b))


class TestAnimation:
    def test_frame_count(self, timeline):
        frames = build_animation(timeline, steps_per_transition=4)
        # 4 transition frames + final resting frame.
        assert len(frames) == 5

    def test_interpolation_endpoints(self, timeline):
        frames = build_animation(timeline, steps_per_transition=4)
        mover_start = next(d for d in frames[0].dots if d.user_id == "mover")
        assert mover_start.lat == pytest.approx(40.2)
        mover_final = next(d for d in frames[-1].dots if d.user_id == "mover")
        assert mover_final.lat == pytest.approx(40.6)

    def test_interpolation_is_linear(self, timeline):
        frames = build_animation(timeline, steps_per_transition=4)
        mover_mid = next(d for d in frames[2].dots if d.user_id == "mover")
        assert mover_mid.lat == pytest.approx(40.2 + (40.6 - 40.2) * 0.5)

    def test_stationary_user_not_marked_moving(self, timeline):
        frames = build_animation(timeline, steps_per_transition=4)
        for frame in frames:
            stayer = next(d for d in frame.dots if d.user_id == "stayer")
            assert not stayer.moving

    def test_mover_flagged_while_in_transit(self, timeline):
        frames = build_animation(timeline, steps_per_transition=4)
        in_transit = next(d for d in frames[2].dots if d.user_id == "mover")
        assert in_transit.moving

    def test_label_switches_midway(self, timeline):
        frames = build_animation(timeline, steps_per_transition=4)
        early = next(d for d in frames[1].dots if d.user_id == "mover")
        late = next(d for d in frames[3].dots if d.user_id == "mover")
        assert early.label == "Eatery"
        assert late.label == "Eatery"

    def test_empty_timeline(self):
        assert build_animation(CrowdTimeline(snapshots=()), 3) == []

    def test_invalid_steps(self, timeline):
        with pytest.raises(ValueError):
            build_animation(timeline, steps_per_transition=0)

    def test_to_dict(self, timeline):
        frames = build_animation(timeline, steps_per_transition=2)
        payload = frames[0].to_dict()
        assert payload["window"] == "09:00-10:00"
        assert len(payload["dots"]) == 2
