"""Tests for crowd snapshots and groups."""

import pytest

from repro.crowd import CrowdSnapshot, TimeWindow, UserPlacement
from repro.geo import BoundingBox, MicrocellGrid
from repro.sequences import HOURLY


def placement(user, cell, label, support=0.7):
    return UserPlacement(
        user_id=user, bin=9, label=label, support=support,
        cell=cell, venue_id="v1", lat=40.7, lon=-74.0, n_evidence=5,
    )


@pytest.fixture
def snapshot():
    grid = MicrocellGrid(BoundingBox(40.0, -75.0, 41.0, -74.0), 5000.0)
    placements = (
        placement("u1", (2, 3), "Eatery"),
        placement("u2", (2, 3), "Eatery"),
        placement("u3", (2, 3), "Shops"),
        placement("u4", (5, 5), "Eatery"),
    )
    return CrowdSnapshot(window=TimeWindow(9, 10, HOURLY), placements=placements,
                         grid=grid)


class TestSnapshot:
    def test_cell_counts(self, snapshot):
        assert snapshot.cell_counts() == {(2, 3): 3, (5, 5): 1}
        assert snapshot.n_users == 4

    def test_label_counts(self, snapshot):
        assert snapshot.label_counts() == {"Eatery": 3, "Shops": 1}

    def test_groups_by_cell_and_label(self, snapshot):
        groups = snapshot.groups()
        assert len(groups) == 3
        biggest = groups[0]
        assert biggest.size == 2
        assert biggest.label == "Eatery"
        assert biggest.user_ids == ("u1", "u2")

    def test_groups_min_size(self, snapshot):
        assert len(snapshot.groups(min_size=2)) == 1
        with pytest.raises(ValueError):
            snapshot.groups(min_size=0)

    def test_hottest_cells(self, snapshot):
        assert snapshot.hottest_cells(1) == [((2, 3), 3)]

    def test_placement_of(self, snapshot):
        assert snapshot.placement_of("u4").cell == (5, 5)
        assert snapshot.placement_of("ghost") is None

    def test_to_dict_shape(self, snapshot):
        payload = snapshot.to_dict()
        assert payload["window"] == "09:00-10:00"
        assert payload["n_users"] == 4
        assert len(payload["placements"]) == 4
        assert len(payload["groups"]) == 1  # only size >= 2 groups exported
        assert payload["groups"][0]["users"] == ["u1", "u2"]
