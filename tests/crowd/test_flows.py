"""Tests for crowd flows."""

import pytest

from repro.crowd import (
    CrowdSnapshot,
    TimeWindow,
    UserPlacement,
    flow_matrix,
    timeline_flows,
    window_flows,
)
from repro.crowd.aggregate import CrowdTimeline
from repro.geo import BoundingBox, MicrocellGrid
from repro.sequences import HOURLY


def placement(user, cell, bin_=9, label="Eatery"):
    return UserPlacement(
        user_id=user, bin=bin_, label=label, support=0.7,
        cell=cell, venue_id="v", lat=40.5, lon=-74.5, n_evidence=3,
    )


@pytest.fixture
def grid():
    return MicrocellGrid(BoundingBox(40.0, -75.0, 41.0, -74.0), 5000.0)


def snap(grid, bin_, placements):
    return CrowdSnapshot(
        window=TimeWindow(bin_, bin_ + 1, HOURLY),
        placements=tuple(placements),
        grid=grid,
    )


class TestWindowFlows:
    def test_movers_detected(self, grid):
        a = snap(grid, 9, [placement("u1", (1, 1)), placement("u2", (1, 1)),
                           placement("u3", (4, 4))])
        b = snap(grid, 10, [placement("u1", (2, 2), 10), placement("u2", (2, 2), 10),
                            placement("u3", (4, 4), 10)])
        flows = window_flows(a, b)
        assert len(flows) == 1
        flow = flows[0]
        assert flow.origin == (1, 1)
        assert flow.destination == (2, 2)
        assert flow.user_ids == ("u1", "u2")
        assert flow.size == 2
        assert not flow.is_stay
        assert flow.from_window == "09:00-10:00"

    def test_stays_optional(self, grid):
        a = snap(grid, 9, [placement("u1", (1, 1))])
        b = snap(grid, 10, [placement("u1", (1, 1), 10)])
        assert window_flows(a, b) == []
        stays = window_flows(a, b, include_stays=True)
        assert len(stays) == 1 and stays[0].is_stay

    def test_users_only_in_one_window_ignored(self, grid):
        a = snap(grid, 9, [placement("u1", (1, 1))])
        b = snap(grid, 10, [placement("u2", (2, 2), 10)])
        assert window_flows(a, b) == []

    def test_sorted_by_size(self, grid):
        a = snap(grid, 9, [placement(f"u{i}", (1, 1)) for i in range(3)]
                 + [placement("w1", (3, 3))])
        b = snap(grid, 10, [placement(f"u{i}", (2, 2), 10) for i in range(3)]
                 + [placement("w1", (4, 4), 10)])
        flows = window_flows(a, b)
        assert [f.size for f in flows] == [3, 1]


class TestTimelineFlows:
    def test_pairwise_count(self, grid):
        snaps = [snap(grid, b, [placement("u1", (b % 3, 0), b)]) for b in range(4)]
        per_pair = timeline_flows(CrowdTimeline(snapshots=tuple(snaps)))
        assert len(per_pair) == 3


class TestFlowMatrix:
    def test_aggregation(self, grid):
        a = snap(grid, 9, [placement("u1", (1, 1)), placement("u2", (1, 1))])
        b = snap(grid, 10, [placement("u1", (2, 2), 10), placement("u2", (3, 3), 10)])
        matrix = flow_matrix(window_flows(a, b))
        assert matrix == {(1, 1): {(2, 2): 1, (3, 3): 1}}
