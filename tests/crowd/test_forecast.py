"""Tests for crowd-forecast evaluation."""

import pytest

from repro.crowd import evaluate_crowd_forecast, observed_occupancy
from repro.data import ActiveUserFilter, CheckInDataset, small_dataset
from repro.pipeline import PipelineConfig, run_pipeline
from repro.sequences import HOURLY


@pytest.fixture(scope="module")
def split_world():
    ds = small_dataset()
    lo, hi = ds.time_range()
    cut = lo + (hi - lo) * 3 // 4
    train = ds.filter_time(lo, cut)
    test = ds.filter_time(cut, hi)
    config = PipelineConfig(window_months=2,
                            activity=ActiveUserFilter(min_qualifying_days=15))
    result = run_pipeline(train, config)
    holdout = test.filter_users(result.profiles)
    return result, holdout


class TestObservedOccupancy:
    def test_mean_daily_values(self, split_world):
        result, holdout = split_world
        occupancy = observed_occupancy(holdout, result.grid, HOURLY)
        assert occupancy
        n_days = len({c.local_date for c in holdout})
        for value in occupancy.values():
            assert 0 < value <= result.n_users
            # Mean over days: multiples of 1/n_days.
            assert value * n_days == pytest.approx(round(value * n_days))

    def test_empty_dataset(self, split_world):
        result, _ = split_world
        assert observed_occupancy(CheckInDataset([]), result.grid, HOURLY) == {}


class TestEvaluation:
    def test_metrics_bounded(self, split_world):
        result, holdout = split_world
        ev = evaluate_crowd_forecast(result.aggregator, result.dataset,
                                     holdout, HOURLY)
        assert ev.mae_forecast >= 0
        assert ev.mae_baseline >= 0
        assert -1.0 <= ev.correlation <= 1.0
        assert ev.n_days > 0
        assert ev.n_cells > 0

    def test_timing_skill_positive(self, split_world):
        """The crowd view's core predictive claim: the hours it targets are
        denser than the cell's own average on held-out days."""
        result, holdout = split_world
        ev = evaluate_crowd_forecast(result.aggregator, result.dataset,
                                     holdout, HOURLY)
        assert ev.time_lift > 1.0

    def test_empty_holdout_raises(self, split_world):
        result, _ = split_world
        with pytest.raises(ValueError, match="empty"):
            evaluate_crowd_forecast(result.aggregator, result.dataset,
                                    CheckInDataset([]), HOURLY)

    def test_deterministic(self, split_world):
        result, holdout = split_world
        a = evaluate_crowd_forecast(result.aggregator, result.dataset, holdout, HOURLY)
        b = evaluate_crowd_forecast(result.aggregator, result.dataset, holdout, HOURLY)
        assert a == b
