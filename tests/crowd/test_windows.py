"""Tests for time windows and rescaling."""

import pytest

from repro.crowd import TimeWindow, rescale, windows_for
from repro.sequences import HOURLY, TWO_HOURLY


class TestTimeWindow:
    def test_valid(self):
        w = TimeWindow(9, 10, HOURLY)
        assert w.start_hour == 9.0
        assert w.end_hour == 10.0
        assert w.label == "09:00-10:00"
        assert list(w) == [9]

    def test_multi_bin(self):
        w = TimeWindow(8, 12, HOURLY)
        assert w.label == "08:00-12:00"
        assert list(w.bins) == [8, 9, 10, 11]
        assert w.contains_bin(11)
        assert not w.contains_bin(12)

    @pytest.mark.parametrize("start,end", [(-1, 5), (5, 5), (10, 9), (23, 25)])
    def test_invalid(self, start, end):
        with pytest.raises(ValueError):
            TimeWindow(start, end, HOURLY)


class TestWindowsFor:
    def test_hourly_tiling(self):
        windows = windows_for(HOURLY)
        assert len(windows) == 24
        assert windows[0].start_bin == 0
        assert windows[-1].end_bin == 24
        for a, b in zip(windows, windows[1:]):
            assert a.end_bin == b.start_bin

    def test_grouped(self):
        windows = windows_for(HOURLY, bins_per_window=3)
        assert len(windows) == 8
        assert windows[3].label == "09:00-12:00"

    def test_untileable_raises(self):
        with pytest.raises(ValueError):
            windows_for(HOURLY, bins_per_window=5)
        with pytest.raises(ValueError):
            windows_for(HOURLY, bins_per_window=0)


class TestRescale:
    def test_merge(self):
        windows = windows_for(HOURLY)
        merged = rescale(windows, 4)
        assert len(merged) == 6
        assert merged[0].label == "00:00-04:00"
        assert merged[-1].label == "20:00-24:00"

    def test_factor_one_identity(self):
        windows = windows_for(TWO_HOURLY)
        assert rescale(windows, 1) == list(windows)

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            rescale(windows_for(HOURLY), 5)

    def test_non_consecutive_raises(self):
        windows = windows_for(HOURLY)
        shuffled = [windows[0], windows[2]]
        with pytest.raises(ValueError):
            rescale(shuffled, 2)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            rescale(windows_for(HOURLY), 0)
