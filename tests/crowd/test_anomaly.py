"""Tests for crowd-anomaly detection and the event-injection substrate."""

from datetime import date, datetime, timedelta, timezone

import pytest

from repro.data import CheckIn, CheckInDataset, CityEvent, SMALL_CONFIG, SynthConfig, generate
from repro.crowd import daily_cell_counts, detect_spikes
from repro.geo import MicrocellGrid

UTC = timezone.utc


def checkin(user, day, hour, lat, lon):
    return CheckIn(
        user_id=user, venue_id=f"v-{lat:.3f}-{lon:.3f}", category_id="",
        category_name="Stadium", lat=lat, lon=lon, tz_offset_min=0,
        timestamp=datetime(2012, 4, day, hour, 0, 0, tzinfo=UTC),
    )


@pytest.fixture
def spiky_world():
    """20 quiet days at one cell, then a blowout day."""
    records = []
    for day in range(1, 21):
        for u in range(2):  # baseline: 2 check-ins/day
            records.append(checkin(f"u{u}", day, 12, 40.70, -74.00))
    for u in range(30):  # the event day
        records.append(checkin(f"e{u}", 21, 19, 40.70, -74.00))
    # A second, always-quiet cell far away.
    for day in range(1, 22):
        records.append(checkin("w0", day, 9, 40.90, -73.75))
    ds = CheckInDataset(records)
    grid = MicrocellGrid(ds.bounding_box().expand(0.01), 1000.0)
    return ds, grid


class TestDailyCounts:
    def test_counts_partition_records(self, spiky_world):
        ds, grid = spiky_world
        counts = daily_cell_counts(ds, grid)
        total = sum(c for days in counts.values() for c in days.values())
        assert total == len(ds)

    def test_per_day_values(self, spiky_world):
        ds, grid = spiky_world
        counts = daily_cell_counts(ds, grid)
        hot_cell = grid.cell_index_clamped(40.70, -74.00)
        assert counts[hot_cell][date(2012, 4, 5)] == 2
        assert counts[hot_cell][date(2012, 4, 21)] == 30


class TestDetectSpikes:
    def test_finds_the_event(self, spiky_world):
        ds, grid = spiky_world
        spikes = detect_spikes(ds, grid, z_threshold=4.0)
        assert spikes
        top = spikes[0]
        assert top.day == date(2012, 4, 21)
        assert top.cell == grid.cell_index_clamped(40.70, -74.00)
        assert top.count == 30
        assert top.n_users == 30
        assert top.z_score > 10

    def test_quiet_cell_not_flagged(self, spiky_world):
        ds, grid = spiky_world
        spikes = detect_spikes(ds, grid, z_threshold=4.0)
        quiet_cell = grid.cell_index_clamped(40.90, -73.75)
        assert all(s.cell != quiet_cell for s in spikes)

    def test_threshold_monotone(self, spiky_world):
        ds, grid = spiky_world
        low = detect_spikes(ds, grid, z_threshold=2.0)
        high = detect_spikes(ds, grid, z_threshold=8.0)
        assert len(high) <= len(low)

    def test_min_count_filters(self, spiky_world):
        ds, grid = spiky_world
        assert detect_spikes(ds, grid, z_threshold=4.0, min_count=31) == []

    def test_invalid_params(self, spiky_world):
        ds, grid = spiky_world
        with pytest.raises(ValueError):
            detect_spikes(ds, grid, z_threshold=0)
        with pytest.raises(ValueError):
            detect_spikes(ds, grid, min_count=0)


class TestEventInjection:
    def test_event_day_has_extra_checkins(self):
        event = CityEvent(name="derby", day=date(2012, 5, 12),
                          venue_category="Stadium", attendance_prob=0.6)
        base = SynthConfig(**{**SMALL_CONFIG.__dict__})
        boosted = SynthConfig(**{**SMALL_CONFIG.__dict__, "events": (event,)})
        quiet = generate(base).dataset
        loud_gen = generate(boosted)
        loud = loud_gen.dataset
        assert len(loud) > len(quiet)
        event_day_records = [
            c for c in loud
            if c.local_date == event.day and c.category_name == "Stadium"
        ]
        # Attendance ~0.6 * 60 users with boosted check-in rates.
        assert len(event_day_records) >= 10

    def test_event_detectable_as_spike(self):
        event = CityEvent(name="derby", day=date(2012, 5, 12),
                          venue_category="Stadium", attendance_prob=0.6)
        config = SynthConfig(**{**SMALL_CONFIG.__dict__, "events": (event,)})
        ds = generate(config).dataset
        grid = MicrocellGrid(ds.bounding_box().expand(0.01), 750.0)
        spikes = detect_spikes(ds, grid, z_threshold=4.0, min_count=5)
        assert any(s.day == event.day for s in spikes)

    def test_invalid_event_category_raises(self):
        event = CityEvent(name="x", day=date(2012, 5, 12),
                          venue_category="Space Elevator")
        config = SynthConfig(**{**SMALL_CONFIG.__dict__, "events": (event,)})
        with pytest.raises(ValueError, match="no venue of category"):
            generate(config)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            CityEvent(name="x", day=date(2012, 5, 12), start_hour=25.0)
        with pytest.raises(ValueError):
            CityEvent(name="x", day=date(2012, 5, 12), attendance_prob=1.5)
        with pytest.raises(ValueError):
            CityEvent(name="x", day=date(2012, 5, 12), checkin_boost=0.5)
