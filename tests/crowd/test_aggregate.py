"""Tests for the crowd aggregator and timeline (uses the pipeline fixture)."""

import pytest

from repro.crowd import CrowdAggregator


class TestTimeline:
    def test_one_snapshot_per_window(self, pipeline_result):
        timeline = pipeline_result.timeline
        assert len(timeline) == 24
        labels = [s.window.label for s in timeline]
        assert labels[0] == "00:00-01:00"
        assert labels[-1] == "23:00-24:00"

    def test_users_placed_at_most_once_per_window(self, pipeline_result):
        for snap in pipeline_result.timeline:
            users = [p.user_id for p in snap.placements]
            assert len(users) == len(set(users))

    def test_placed_users_have_profiles(self, pipeline_result):
        profiles = pipeline_result.profiles
        for snap in pipeline_result.timeline:
            for p in snap.placements:
                assert p.user_id in profiles

    def test_placements_inside_grid(self, pipeline_result):
        grid = pipeline_result.grid
        for snap in pipeline_result.timeline:
            for p in snap.placements:
                row, col = p.cell
                assert 0 <= row < grid.n_rows
                assert 0 <= col < grid.n_cols

    def test_daytime_busier_than_dead_of_night(self, pipeline_result):
        timeline = pipeline_result.timeline
        night = timeline.at_hour(3.5).n_users
        noon = timeline.at_hour(12.5).n_users
        assert noon >= night

    def test_at_hour_bounds(self, pipeline_result):
        with pytest.raises(ValueError):
            pipeline_result.timeline.at_hour(24.5)

    def test_occupancy_series_matches_snapshots(self, pipeline_result):
        series = pipeline_result.timeline.occupancy_series()
        assert len(series) == 24
        for (label, count), snap in zip(series, pipeline_result.timeline):
            assert label == snap.window.label
            assert count == snap.n_users

    def test_label_series(self, pipeline_result):
        series = pipeline_result.timeline.label_series("Eatery")
        total = sum(n for _, n in series)
        assert total >= 0
        assert len(series) == 24


class TestAggregator:
    def test_grouped_windows(self, pipeline_result):
        aggregator = pipeline_result.aggregator
        timeline3 = aggregator.timeline(bins_per_window=3)
        assert len(timeline3) == 8

    def test_occupancy_matrix_consistent(self, pipeline_result):
        aggregator = pipeline_result.aggregator
        matrix = aggregator.cell_occupancy_matrix()
        timeline = aggregator.timeline()
        for cell, counts in matrix.items():
            assert len(counts) == len(timeline)
            for count, snap in zip(counts, timeline):
                assert count == snap.cell_counts().get(cell, 0)

    def test_busiest_window(self, pipeline_result):
        busiest = pipeline_result.aggregator.busiest_window()
        assert busiest.n_users == max(s.n_users for s in pipeline_result.timeline)

    def test_min_support_reduces_placements(self, pipeline_result):
        strict = CrowdAggregator(
            pipeline_result.profiles,
            pipeline_result.dataset,
            pipeline_result.grid,
            pipeline_result.taxonomy,
            min_support=0.95,
        )
        strict_total = sum(s.n_users for s in strict.timeline())
        normal_total = sum(s.n_users for s in pipeline_result.timeline)
        assert strict_total <= normal_total
