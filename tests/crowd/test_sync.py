"""Tests for crowd synchronization (visit index + placement)."""

from datetime import datetime, timezone

import pytest

from repro.crowd import VisitIndex, place_user, place_user_at_bins
from repro.data import CheckIn, CheckInDataset
from repro.geo import MicrocellGrid
from repro.mining import SequentialPattern
from repro.patterns import UserPatternProfile
from repro.sequences import HOURLY, TimedItem

UTC = timezone.utc


def checkin(user, day, hour, cat, lat, lon, venue=None):
    return CheckIn(
        user_id=user, venue_id=venue or f"v-{cat}-{lat:.3f}",
        category_id="", category_name=cat,
        lat=lat, lon=lon, tz_offset_min=0,
        timestamp=datetime(2012, 4, day, hour, 0, 0, tzinfo=UTC),
    )


@pytest.fixture
def world(taxonomy):
    # A user eating Thai at (40.75, -73.99) most days at noon, working at
    # (40.71, -74.01) at 9.
    records = []
    for day in range(1, 11):
        records.append(checkin("u1", day, 9, "Corporate Office", 40.71, -74.01))
        records.append(checkin("u1", day, 12, "Thai Restaurant", 40.75, -73.99))
    # A couple of outlier lunches elsewhere.
    records.append(checkin("u1", 11, 12, "Thai Restaurant", 40.60, -74.05))
    ds = CheckInDataset(records)
    grid = MicrocellGrid(ds.bounding_box().expand(0.01), 1000.0)
    index = VisitIndex(ds, grid, taxonomy, HOURLY)
    return ds, grid, index


def profile_with(*patterns):
    return UserPatternProfile(user_id="u1", patterns=tuple(patterns), n_days=11)


def pat(bin_, label, support=0.8, count=9):
    return SequentialPattern(items=(TimedItem(bin_, label),), count=count, support=support)


class TestVisitIndex:
    def test_evidence_exact_bin_and_leaf(self, world):
        _, _, index = world
        hits = index.evidence("u1", 12, "Thai Restaurant", tolerance=0)
        assert len(hits) == 11

    def test_evidence_matches_ancestors(self, world):
        _, _, index = world
        assert len(index.evidence("u1", 12, "Eatery", tolerance=0)) == 11
        assert len(index.evidence("u1", 12, "Asian Restaurant", tolerance=0)) == 11

    def test_evidence_bin_tolerance(self, world):
        _, _, index = world
        assert index.evidence("u1", 10, "Eatery", tolerance=0) == []
        assert len(index.evidence("u1", 11, "Eatery", tolerance=1)) == 11

    def test_unknown_user_empty(self, world):
        _, _, index = world
        assert index.evidence("ghost", 12, "Eatery", tolerance=2) == []


class TestPlacement:
    def test_places_at_modal_cell(self, world):
        _, grid, index = world
        profile = profile_with(pat(12, "Eatery"))
        placement = place_user(profile, index, 12)
        assert placement is not None
        assert placement.label == "Eatery"
        # Modal cell is the frequent lunch spot, not the outlier.
        modal_cell = grid.cell_index_clamped(40.75, -73.99)
        assert placement.cell == modal_cell
        assert placement.n_evidence >= 10

    def test_no_pattern_at_bin_returns_none(self, world):
        _, _, index = world
        profile = profile_with(pat(12, "Eatery"))
        assert place_user(profile, index, 15) is None

    def test_no_evidence_returns_none(self, world):
        _, _, index = world
        profile = profile_with(pat(3, "Nightlife"))
        assert place_user(profile, index, 3) is None

    def test_strongest_pattern_wins(self, world):
        _, grid, index = world
        profile = profile_with(
            pat(9, "Work", support=0.9, count=10),
            pat(9, "Eatery", support=0.3, count=3),
        )
        placement = place_user(profile, index, 9, evidence_tolerance=3)
        assert placement.label == "Work"

    def test_min_support_filters(self, world):
        _, _, index = world
        profile = profile_with(pat(12, "Eatery", support=0.4))
        assert place_user(profile, index, 12, min_support=0.5) is None
        assert place_user(profile, index, 12, min_support=0.3) is not None

    def test_pattern_tolerance_widens(self, world):
        _, _, index = world
        profile = profile_with(pat(12, "Eatery"))
        assert place_user(profile, index, 13, pattern_tolerance=0) is None
        assert place_user(profile, index, 13, pattern_tolerance=1) is not None

    def test_place_at_bins(self, world):
        _, _, index = world
        profile = profile_with(pat(9, "Work"), pat(12, "Eatery"))
        placements = place_user_at_bins(profile, index, range(24))
        assert set(placements) == {9, 12}
        assert placements[9].label == "Work"
