"""CW106 bare-except / CW107 swallowed-exception: positive and negative fixtures."""

from __future__ import annotations


def test_flags_bare_except(lint):
    source = """\
    try:
        risky()
    except:
        handle()
    """
    findings = lint(source, rule="CW106")
    assert len(findings) == 1
    assert "bare" in findings[0].message


def test_typed_except_is_clean_for_cw106(lint):
    source = """\
    try:
        risky()
    except ValueError:
        handle()
    """
    assert lint(source, rule="CW106") == []


def test_flags_silently_swallowed_broad_except(lint):
    source = """\
    try:
        stage()
    except Exception:
        pass

    try:
        stage()
    except (RuntimeError, BaseException):
        ...
    """
    findings = lint(source, rule="CW107")
    assert len(findings) == 2


def test_broad_except_that_acts_is_clean(lint):
    source = """\
    try:
        stage()
    except Exception as exc:
        log.warning("stage failed: %s", exc)

    try:
        stage()
    except Exception:
        raise PipelineError("stage failed")
    """
    assert lint(source, rule="CW107") == []


def test_narrow_except_pass_is_allowed(lint):
    source = """\
    try:
        cleanup()
    except KeyError:
        pass
    """
    assert lint(source, rule="CW107") == []


def test_bare_except_not_double_reported_by_cw107(lint):
    source = """\
    try:
        stage()
    except:
        pass
    """
    assert lint(source, rule="CW107") == []
