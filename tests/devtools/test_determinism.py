"""CW2xx — the determinism pack."""

from __future__ import annotations

from .conftest import rule_ids


class TestUnseededRandom:
    def test_flags_global_random_api(self, lint):
        findings = lint("import random\nx = random.random()\n", rule="CW201")
        assert rule_ids(findings) == ["CW201"]

    def test_flags_global_numpy_api(self, lint):
        findings = lint(
            "import numpy as np\nx = np.random.shuffle(items)\n", rule="CW201"
        )
        assert rule_ids(findings) == ["CW201"]

    def test_flags_zero_arg_constructors_with_fix(self, lint):
        findings = lint(
            """
            import random
            import numpy as np

            a = random.Random()
            b = np.random.default_rng()
            """,
            rule="CW201",
        )
        assert rule_ids(findings) == ["CW201", "CW201"]
        assert all(f.fix is not None for f in findings)

    def test_seeded_constructors_are_clean(self, lint):
        findings = lint(
            """
            import random
            import numpy as np

            a = random.Random(7)
            b = np.random.default_rng(seed)
            """,
            rule="CW201",
        )
        assert findings == []

    def test_instance_method_on_seeded_rng_is_clean(self, lint):
        findings = lint(
            """
            import random

            rng = random.Random(0)
            x = rng.random()
            """,
            rule="CW201",
        )
        assert findings == []


class TestWallclockData:
    def test_flags_wallclock_returned_as_data(self, lint):
        findings = lint(
            """
            import time

            def stamp():
                return {"at": time.time()}
            """,
            rule="CW202",
            module="repro.data.records",
        )
        assert rule_ids(findings) == ["CW202"]

    def test_elapsed_time_subtraction_is_clean(self, lint):
        findings = lint(
            """
            import time

            def timed(fn):
                t0 = time.time()
                fn()
                return time.time() - t0
            """,
            rule="CW202",
            module="repro.data.records",
        )
        assert findings == []

    def test_assigned_name_flowing_into_data_is_flagged(self, lint):
        findings = lint(
            """
            import time

            def record():
                now = time.time()
                return {"at": now}
            """,
            rule="CW202",
            module="repro.data.records",
        )
        assert rule_ids(findings) == ["CW202"]

    def test_obs_and_bench_layers_are_exempt(self, lint):
        source = """
            import time

            def stamp():
                return {"at": time.time()}
            """
        assert lint(source, rule="CW202", module="repro.obs.runtime") == []
        assert lint(source, rule="CW202", module="repro.bench.timing") == []

    def test_non_repro_files_are_exempt(self, lint):
        findings = lint(
            """
            import time

            def stamp():
                return {"at": time.time()}
            """,
            rule="CW202",
            module="tests.test_something",
        )
        assert findings == []


class TestUnorderedIteration:
    def test_flags_list_over_set_with_fix(self, lint):
        findings = lint(
            """
            def labels(items):
                found = {i.label for i in items}
                return list(found)
            """,
            rule="CW203",
        )
        assert rule_ids(findings) == ["CW203"]
        assert findings[0].fix is not None

    def test_flags_join_over_set(self, lint):
        findings = lint(
            """
            def csv(tags):
                uniq = set(tags)
                return ",".join(uniq)
            """,
            rule="CW203",
        )
        assert rule_ids(findings) == ["CW203"]

    def test_flags_for_loop_appending_from_set(self, lint):
        findings = lint(
            """
            def rows(records):
                keys = {r.key for r in records}
                out = []
                for key in keys:
                    out.append(key)
                return out
            """,
            rule="CW203",
        )
        assert rule_ids(findings) == ["CW203"]

    def test_sorted_iteration_is_clean(self, lint):
        findings = lint(
            """
            def labels(items):
                found = {i.label for i in items}
                return sorted(found)
            """,
            rule="CW203",
        )
        assert findings == []

    def test_order_insensitive_sinks_are_clean(self, lint):
        findings = lint(
            """
            def stats(items):
                found = {i.label for i in items}
                return len(found), sum(found), max(found)
            """,
            rule="CW203",
        )
        assert findings == []

    def test_unknown_iterable_is_not_flagged(self, lint):
        findings = lint(
            """
            def passthrough(rows):
                return list(rows)
            """,
            rule="CW203",
        )
        assert findings == []


class TestArbitrarySetElement:
    def test_flags_next_iter_of_set(self, lint):
        findings = lint(
            """
            def first(items):
                uniq = set(items)
                return next(iter(uniq))
            """,
            rule="CW204",
        )
        assert rule_ids(findings) == ["CW204"]

    def test_flags_set_pop(self, lint):
        findings = lint(
            """
            def take(items):
                uniq = set(items)
                return uniq.pop()
            """,
            rule="CW204",
        )
        assert rule_ids(findings) == ["CW204"]

    def test_list_pop_is_clean(self, lint):
        findings = lint(
            """
            def take(items):
                stack = list(items)
                return stack.pop()
            """,
            rule="CW204",
        )
        assert findings == []
