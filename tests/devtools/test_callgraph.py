"""Cross-module call resolution, the call graph, and project-level feeds."""

from __future__ import annotations

import ast
import textwrap
from typing import Dict

from repro.devtools.callgraph import CallGraph, ProjectAnalysis
from repro.devtools.domains import extract_summary


def project_of(modules: Dict[str, str]) -> ProjectAnalysis:
    files = [
        (f"/x/{key.replace('.', '/')}.py", textwrap.dedent(source), key, False)
        for key, source in modules.items()
    ]
    return ProjectAnalysis.build(files)


class TestResolution:
    def test_direct_import(self):
        project = project_of(
            {
                "repro.a": "from repro.b import store\ndef f():\n    store()\n",
                "repro.b": "def store():\n    pass\n",
            }
        )
        assert project.resolve("repro.a", "f", ["name", "store"]) == (
            ("repro.b", "store"),
            False,
        )

    def test_import_alias_and_reexport_chain(self):
        project = project_of(
            {
                "repro.a": "from repro.hub import store as put\ndef f():\n    put()\n",
                "repro.hub": "from repro.b import store\n",
                "repro.b": "def store():\n    pass\n",
            }
        )
        assert project.resolve("repro.a", "f", ["name", "put"]) == (
            ("repro.b", "store"),
            False,
        )

    def test_module_attribute_call(self):
        project = project_of(
            {
                "repro.a": "from repro import b\ndef f():\n    b.store()\n",
                "repro": "",
                "repro.b": "def store():\n    pass\n",
            }
        )
        assert project.resolve("repro.a", "f", ["attr", "b", "store"]) == (
            ("repro.b", "store"),
            False,
        )

    def test_dotted_absolute_call(self):
        project = project_of(
            {
                "repro.a": "import repro.b\ndef f():\n    repro.b.store()\n",
                "repro.b": "def store():\n    pass\n",
            }
        )
        assert project.resolve("repro.a", "f", ["dotted", "repro.b.store"]) == (
            ("repro.b", "store"),
            False,
        )

    def test_constructor_resolves_to_init_bound(self):
        project = project_of(
            {
                "repro.a": (
                    "from repro.b import Point\ndef f():\n    Point(1, 2)\n"
                ),
                "repro.b": (
                    "class Point:\n    def __init__(self, lat, lon):\n"
                    "        self.lat = lat\n"
                ),
            }
        )
        assert project.resolve("repro.a", "f", ["name", "Point"]) == (
            ("repro.b", "Point.__init__"),
            True,
        )

    def test_method_on_local_instance(self):
        project = project_of(
            {
                "repro.a": textwrap.dedent(
                    """
                    from repro.b import Agg

                    def f():
                        agg = Agg()
                        agg.add(1)
                    """
                ),
                "repro.b": textwrap.dedent(
                    """
                    class Agg:
                        def __init__(self):
                            pass

                        def add(self, item_id):
                            pass
                    """
                ),
            }
        )
        assert project.resolve("repro.a", "f", ["attr", "agg", "add"]) == (
            ("repro.b", "Agg.add"),
            True,
        )

    def test_self_dispatch_and_inherited_method(self):
        project = project_of(
            {
                "repro.b": textwrap.dedent(
                    """
                    class Base:
                        def flush(self):
                            pass

                    class Agg(Base):
                        def add(self):
                            self.flush()
                    """
                ),
            }
        )
        assert project.resolve("repro.b", "Agg.add", ["self", "flush"]) == (
            ("repro.b", "Base.flush"),
            True,
        )

    def test_unknown_callee_stays_unresolved(self):
        project = project_of({"repro.a": "def f():\n    mystery()\n"})
        assert project.resolve("repro.a", "f", ["name", "mystery"]) is None

    def test_partial_offset_binds_later_parameters(self):
        project = project_of(
            {
                "repro.a": textwrap.dedent(
                    """
                    from functools import partial
                    from repro.b import store

                    def f(user_id):
                        task = partial(store, 0)
                        task(user_id)
                    """
                ),
                "repro.b": "def store(flag, microcell_id):\n    pass\n",
            }
        )
        (conflict,) = project.call_conflicts("repro.a")
        assert conflict["param"] == "microcell_id"
        assert conflict["actual"] == "user_id"


class TestCallGraph:
    def test_edges_and_reachability(self):
        project = project_of(
            {
                "repro.a": "from repro.b import relay\ndef top():\n    relay()\n",
                "repro.b": (
                    "from repro.c import leaf\ndef relay():\n    leaf()\n"
                ),
                "repro.c": "def leaf():\n    pass\n\ndef orphan():\n    pass\n",
            }
        )
        graph = project.call_graph()
        assert isinstance(graph, CallGraph)
        assert ("repro.a:top", "repro.b:relay") in graph.edges
        assert graph.callers("repro.c:leaf") == {"repro.b:relay"}
        reachable = graph.reachable({"repro.a:top"})
        assert "repro.c:leaf" in reachable
        assert "repro.c:orphan" not in reachable

    def test_render_and_dot(self):
        project = project_of(
            {
                "repro.a": "from repro.b import f\ndef g():\n    f()\n",
                "repro.b": "def f():\n    pass\n",
            }
        )
        graph = project.call_graph()
        assert "repro.a:g -> repro.b:f" in graph.render()
        dot = graph.to_dot()
        assert dot.startswith("digraph")
        assert '"repro.a:g" -> "repro.b:f";' in dot


class TestDeadExports:
    def test_unreferenced_export_is_dead(self):
        project = project_of(
            {
                "repro.a": (
                    "__all__ = [\"used\", \"unused\"]\n\n"
                    "def used():\n    pass\n\n\ndef unused():\n    pass\n"
                ),
                "repro.b": "from repro.a import used\ndef f():\n    used()\n",
            }
        )
        (dead,) = project.dead_exports("repro.a")
        assert dead["name"] == "unused"

    def test_attribute_reference_keeps_export_alive(self):
        project = project_of(
            {
                "repro.a": "__all__ = [\"used\"]\n\ndef used():\n    pass\n",
                "repro.b": "from repro import a\ndef f():\n    a.used()\n",
            }
        )
        assert project.dead_exports("repro.a") == []


class TestDepKeys:
    MODULES = {
        "repro.a": "from repro.b import store\ndef f(user_id):\n    store(user_id)\n",
        "repro.b": "def store(value):\n    pass\n",
        "repro.c": "def unrelated():\n    pass\n",
    }

    def test_stable_across_identical_builds(self):
        first = project_of(self.MODULES)
        second = project_of(dict(self.MODULES))
        for key in self.MODULES:
            assert first.dep_key(key) == second.dep_key(key)

    def test_callee_signature_change_invalidates_caller_only(self):
        before = project_of(self.MODULES)
        changed = dict(self.MODULES)
        changed["repro.b"] = "def store(microcell_id):\n    pass\n"
        after = project_of(changed)
        assert before.dep_key("repro.a") != after.dep_key("repro.a")
        assert before.dep_key("repro.c") == after.dep_key("repro.c")


class TestSerialization:
    def test_round_trip_preserves_resolution_and_domains(self):
        project = project_of(
            {
                "repro.a": (
                    "from repro.b import store\n"
                    "def relay(value):\n    store(value)\n"
                ),
                "repro.b": "def store(microcell_id):\n    pass\n",
            }
        )
        clone = ProjectAnalysis.from_dict(project.to_dict())
        assert clone.resolve("repro.a", "relay", ["name", "store"]) == (
            ("repro.b", "store"),
            False,
        )
        assert clone.env.expected_domains(("repro.a", "relay"), "value") == {
            "id": "microcell_id"
        }


class TestSummaryCache:
    def test_build_uses_cached_summaries(self):
        class FakeCache:
            def __init__(self):
                self.store = {}
                self.gets = 0

            def get_summary(self, source, module, is_init):
                self.gets += 1
                return self.store.get((source, module, is_init))

            def put_summary(self, source, module, is_init, summary):
                self.store[(source, module, is_init)] = summary

        cache = FakeCache()
        files = [("/x/a.py", "def f():\n    pass\n", "repro.a", False)]
        first = ProjectAnalysis.build(files, cache=cache)
        assert (first.summaries_built, first.summaries_cached) == (1, 0)
        second = ProjectAnalysis.build(files, cache=cache)
        assert (second.summaries_built, second.summaries_cached) == (0, 1)
        assert second.summaries["repro.a"]["functions"].keys() == {"<module>", "f"}


def test_extract_summary_matches_build_keying():
    source = "def f():\n    pass\n"
    summary = extract_summary(ast.parse(source), "repro.a", "/x/a.py", False)
    project = ProjectAnalysis({"repro.a": summary})
    assert project.resolve("repro.a", "<module>", ["name", "f"]) == (
        ("repro.a", "f"),
        False,
    )
