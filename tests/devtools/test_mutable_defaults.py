"""CW104 mutable-default-argument: positive and negative fixtures."""

from __future__ import annotations


def test_flags_literal_defaults(lint):
    source = """\
    def f(a=[], b={}, c={1, 2}):
        pass
    """
    findings = lint(source, rule="CW104")
    assert len(findings) == 3


def test_flags_constructor_and_kwonly_and_lambda_defaults(lint):
    source = """\
    def g(*, cache=dict(), log=list()):
        pass

    h = lambda acc=[]: acc

    def i(counts=Counter()):
        pass
    """
    findings = lint(source, rule="CW104")
    assert len(findings) == 4


def test_immutable_defaults_are_clean(lint):
    source = """\
    def f(a=None, b=0, c="x", d=(), e=frozenset(), f_=3.5):
        pass

    def g(*, window=None, factory=tuple):
        pass
    """
    assert lint(source, rule="CW104") == []


def test_mutable_values_outside_defaults_are_clean(lint):
    source = """\
    def f(a=None):
        a = a if a is not None else []
        return a
    """
    assert lint(source, rule="CW104") == []
