"""Autofixed source must be *behaviourally* identical, not just syntactic.

The strongest claim the autofix engine makes is that its rewrites preserve
pipeline semantics.  This test earns it end to end: seed a CW203
determinism bug into a copy of the real tree (an ordered output rebuilt
straight from set iteration), let ``--fix`` repair it, then run the full
experiment pipeline from the pristine tree and from the autofixed tree in
separate interpreters and require **byte-identical** ``results.json``.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

from repro.devtools.engine import LintEngine, module_name_for
from repro.devtools.fix import fix_file

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

#: The seeding site: PatternProfile.labels() canonicalizes set iteration
#: with sorted(); dropping it to list() is exactly the bug CW203 exists for.
SEED_FILE = Path("repro") / "patterns" / "model.py"
PRISTINE = "return sorted({item.label for p in self.patterns for item in p.items})"
SEEDED = "return list({item.label for p in self.patterns for item in p.items})"

RUN_PIPELINE = """\
import json, sys
from pathlib import Path
from repro.experiments import run_all
out = run_all(Path(sys.argv[1]), scale="small", include_prediction=False)
print((out.output_dir / "results.json").resolve())
"""


def run_pipeline_with(tree: Path, out_dir: Path) -> bytes:
    result = subprocess.run(
        [sys.executable, "-c", RUN_PIPELINE, str(out_dir)],
        env={"PYTHONPATH": str(tree), "PYTHONHASHSEED": "random", "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return (out_dir / "results.json").read_bytes()


def test_autofixed_tree_produces_byte_identical_pipeline_output(tmp_path):
    # 1. Copy the real tree and seed the determinism bug.
    seeded_src = tmp_path / "src"
    shutil.copytree(
        REPO_SRC, seeded_src, ignore=shutil.ignore_patterns("__pycache__")
    )
    target = seeded_src / SEED_FILE
    source = target.read_text(encoding="utf-8")
    assert PRISTINE in source, "seeding site moved; update this test"
    target.write_text(source.replace(PRISTINE, SEEDED), encoding="utf-8")

    # 2. The linter must catch the seeded bug...
    engine = LintEngine(select=["CW203"])
    findings = engine.lint_file(target)
    assert [f.rule_id for f in findings] == ["CW203"]

    # 3. ...and --fix must repair it (sorted() wrapped back in).
    result = fix_file(engine, target, module_name_for(target) or "repro.patterns.model")
    assert result is not None and result.changed
    assert "sorted({item.label" in target.read_text(encoding="utf-8")
    assert engine.lint_file(target) == []

    # 4. Pristine and autofixed trees agree byte for byte at the pinned seed.
    baseline = run_pipeline_with(REPO_SRC, tmp_path / "out_pristine")
    fixed = run_pipeline_with(seeded_src, tmp_path / "out_fixed")
    assert baseline == fixed
