"""CW3xx — the concurrency pack (the exec.ordered_map contract)."""

from __future__ import annotations

from .conftest import rule_ids


class TestUnpicklableTask:
    def test_flags_lambda_task(self, lint):
        findings = lint(
            """
            from repro.exec import ordered_map

            def run(items):
                return ordered_map(lambda x: x + 1, items)
            """,
            rule="CW301",
        )
        assert rule_ids(findings) == ["CW301"]

    def test_flags_locally_defined_task(self, lint):
        findings = lint(
            """
            from repro.exec import ordered_map

            def run(items):
                def work(x):
                    return x + 1
                return ordered_map(work, items)
            """,
            rule="CW301",
        )
        assert rule_ids(findings) == ["CW301"]

    def test_flags_lambda_behind_assignment(self, lint):
        findings = lint(
            """
            from repro.exec import ordered_map

            def run(items):
                task = lambda x: x + 1
                return ordered_map(task, items)
            """,
            rule="CW301",
        )
        assert rule_ids(findings) == ["CW301"]

    def test_module_level_function_is_clean(self, lint):
        findings = lint(
            """
            from repro.exec import ordered_map

            def work(x):
                return x + 1

            def run(items):
                return ordered_map(work, items)
            """,
            rule="CW301",
        )
        assert findings == []

    def test_partial_of_module_level_function_is_clean(self, lint):
        findings = lint(
            """
            from functools import partial

            from repro.exec import ordered_map

            def work(cfg, x):
                return x + cfg.offset

            def run(cfg, items):
                return ordered_map(partial(work, cfg), items)
            """,
            rule="CW301",
        )
        assert findings == []

    def test_unresolvable_task_is_not_flagged(self, lint):
        findings = lint(
            """
            from repro.exec import ordered_map

            def run(tasks, items):
                return ordered_map(tasks.best, items)
            """,
            rule="CW301",
        )
        assert findings == []


class TestForkUnsafeModuleInit:
    def test_flags_module_level_lock(self, lint):
        findings = lint(
            """
            import threading

            _LOCK = threading.Lock()
            """,
            rule="CW302",
            module="repro.crowd.sync",
        )
        assert rule_ids(findings) == ["CW302"]

    def test_flags_module_level_pool_and_open(self, lint):
        findings = lint(
            """
            from concurrent.futures import ProcessPoolExecutor

            POOL = ProcessPoolExecutor()
            LOG = open("log.txt", "a")
            """,
            rule="CW302",
            module="repro.crowd.sync",
        )
        assert rule_ids(findings) == ["CW302", "CW302"]

    def test_flags_import_time_global_seeding(self, lint):
        findings = lint(
            """
            import random

            random.seed(0)
            """,
            rule="CW302",
            module="repro.mining.setup",
        )
        assert rule_ids(findings) == ["CW302"]

    def test_lazy_creation_inside_function_is_clean(self, lint):
        findings = lint(
            """
            import threading

            def lock():
                return threading.Lock()
            """,
            rule="CW302",
            module="repro.crowd.sync",
        )
        assert findings == []

    def test_main_guard_is_exempt(self, lint):
        findings = lint(
            """
            import threading

            if __name__ == "__main__":
                lock = threading.Lock()
            """,
            rule="CW302",
            module="repro.crowd.sync",
        )
        assert findings == []

    def test_non_repro_module_is_exempt(self, lint):
        findings = lint(
            "import threading\n_LOCK = threading.Lock()\n",
            rule="CW302",
            module="tests.conftest",
        )
        assert findings == []


class TestWorkerGlobalMutation:
    def test_flags_task_rebinding_a_global(self, lint):
        findings = lint(
            """
            from repro.exec import ordered_map

            TOTAL = 0

            def work(x):
                global TOTAL
                TOTAL += x
                return x

            def run(items):
                return ordered_map(work, items)
            """,
            rule="CW303",
        )
        assert rule_ids(findings) == ["CW303"]

    def test_flags_task_mutating_module_dict(self, lint):
        findings = lint(
            """
            from repro.exec import ordered_map

            CACHE = {}

            def work(x):
                CACHE[x] = x * 2
                return CACHE[x]

            def run(items):
                return ordered_map(work, items)
            """,
            rule="CW303",
        )
        assert rule_ids(findings) == ["CW303"]

    def test_flags_mutating_method_on_module_list(self, lint):
        findings = lint(
            """
            from repro.exec import ordered_map

            SEEN = []

            def work(x):
                SEEN.append(x)
                return x

            def run(items):
                return ordered_map(work, items)
            """,
            rule="CW303",
        )
        assert rule_ids(findings) == ["CW303"]

    def test_pure_task_is_clean(self, lint):
        findings = lint(
            """
            from repro.exec import ordered_map

            SCALE = 3

            def work(x):
                return x * SCALE

            def run(items):
                return ordered_map(work, items)
            """,
            rule="CW303",
        )
        assert findings == []

    def test_local_shadow_of_global_name_is_clean(self, lint):
        findings = lint(
            """
            from repro.exec import ordered_map

            CACHE = {}

            def work(x):
                CACHE = {}
                CACHE[x] = x
                return CACHE[x]

            def run(items):
                return ordered_map(work, items)
            """,
            rule="CW303",
        )
        assert findings == []
