"""CW105 export-drift: positive and negative fixtures."""

from __future__ import annotations


def test_flags_unknown_name_in_all(lint):
    source = """\
    __all__ = ["exists", "ghost"]

    def exists():
        pass
    """
    findings = lint(source, rule="CW105")
    assert len(findings) == 1
    assert "'ghost'" in findings[0].message


def test_flags_public_def_missing_from_all(lint):
    source = """\
    __all__ = ["listed"]

    def listed():
        pass

    def forgotten():
        pass

    class AlsoForgotten:
        pass
    """
    findings = lint(source, rule="CW105")
    assert len(findings) == 2
    assert {f.message for f in findings} == {
        "public name 'forgotten' is defined but missing from __all__",
        "public name 'AlsoForgotten' is defined but missing from __all__",
    }


def test_init_flags_imported_names_missing_from_all(lint):
    source = """\
    from .metrics import shiny, dull

    __all__ = ["shiny"]
    """
    findings = lint(source, rule="CW105", path="pkg/__init__.py")
    assert len(findings) == 1
    assert "'dull'" in findings[0].message


def test_regular_module_does_not_require_exporting_imports(lint):
    source = """\
    from math import sqrt
    import numpy as np

    __all__ = ["compute"]

    def compute():
        return sqrt(np.pi)
    """
    assert lint(source, rule="CW105") == []


def test_private_names_and_constants_are_exempt(lint):
    source = """\
    __all__ = ["API"]

    API = 1
    _INTERNAL = 2
    THRESHOLD = 3          # public constant: not forced into __all__

    def _helper():
        pass
    """
    assert lint(source, rule="CW105") == []


def test_module_without_all_is_skipped(lint):
    assert lint("def anything():\n    pass\n", rule="CW105") == []


def test_conditionally_bound_names_count_as_bound(lint):
    source = """\
    __all__ = ["maybe"]

    try:
        from fast_impl import maybe
    except ImportError:
        def maybe():
            pass
    """
    assert lint(source, rule="CW105") == []
