"""The dataflow core: CFG construction, reaching definitions, resolution."""

from __future__ import annotations

import ast
import textwrap

from repro.devtools.flow import Definition, FlowGraph, ModuleFlow


def flow_of(source: str) -> ModuleFlow:
    return ModuleFlow(ast.parse(textwrap.dedent(source)))


def func_named(flow: ModuleFlow, name: str) -> ast.FunctionDef:
    for node in ast.walk(flow.tree):
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    raise AssertionError(f"no function {name!r}")


def name_loads(flow: ModuleFlow, name: str):
    return [
        node
        for node in ast.walk(flow.tree)
        if isinstance(node, ast.Name) and node.id == name
        and isinstance(node.ctx, ast.Load)
    ]


class TestReachingDefinitions:
    def test_straight_line_single_definition(self):
        flow = flow_of(
            """
            def f():
                x = {1, 2}
                return x
            """
        )
        (use,) = name_loads(flow, "x")
        defs = flow.definitions_for(use)
        assert len(defs) == 1
        assert next(iter(defs)).kind == "assign"

    def test_rebinding_kills_the_earlier_definition(self):
        flow = flow_of(
            """
            def f():
                x = {1}
                x = [1]
                return x
            """
        )
        (use,) = name_loads(flow, "x")
        defs = flow.definitions_for(use)
        assert len(defs) == 1
        assert isinstance(next(iter(defs)).value, ast.List)

    def test_branches_merge_both_definitions(self):
        flow = flow_of(
            """
            def f(flag):
                if flag:
                    x = {1}
                else:
                    x = [1]
                return x
            """
        )
        (use,) = name_loads(flow, "x")
        values = {type(d.value).__name__ for d in flow.definitions_for(use)}
        assert values == {"Set", "List"}

    def test_loop_back_edge_carries_loop_body_definition(self):
        flow = flow_of(
            """
            def f(items):
                x = set()
                for item in items:
                    y = x
                    x = [item]
                return x
            """
        )
        use = name_loads(flow, "x")[0]  # the `y = x` read inside the loop
        values = {type(d.value).__name__ for d in flow.definitions_for(use)}
        # First iteration sees the set(); later iterations see the list.
        assert values == {"Call", "List"}

    def test_parameter_is_a_definition(self):
        flow = flow_of(
            """
            def f(x):
                return x
            """
        )
        (use,) = name_loads(flow, "x")
        kinds = {d.kind for d in flow.definitions_for(use)}
        assert kinds == {"param"}

    def test_module_level_falls_back_to_module_defs(self):
        flow = flow_of(
            """
            TABLE = {"a": 1}

            def f():
                return TABLE
            """
        )
        (use,) = name_loads(flow, "TABLE")
        defs = flow.definitions_for(use)
        assert len(defs) == 1
        assert isinstance(next(iter(defs)).value, ast.Dict)

    def test_try_except_is_pessimistic(self):
        flow = flow_of(
            """
            def f():
                x = {1}
                try:
                    x = [1]
                except ValueError:
                    pass
                return x
            """
        )
        (use,) = name_loads(flow, "x")
        # The body may or may not have completed before the handler ran.
        assert len(flow.definitions_for(use)) == 2


class TestResolution:
    def test_resolves_name_to_module_function(self):
        flow = flow_of(
            """
            def work(item):
                return item

            task = work
            result = runner(task)
            """
        )
        (use,) = name_loads(flow, "task")
        resolved = flow.resolve_callable(use)
        assert isinstance(resolved, ast.FunctionDef) and resolved.name == "work"

    def test_resolves_through_lambda_assignment(self):
        flow = flow_of(
            """
            task = lambda item: item
            runner(task)
            """
        )
        (use,) = name_loads(flow, "task")
        assert isinstance(flow.resolve_callable(use), ast.Lambda)

    def test_ambiguous_name_does_not_resolve(self):
        flow = flow_of(
            """
            def a(): ...
            def b(): ...

            def f(flag):
                task = a if flag else b
                return runner(task)
            """
        )
        (use,) = name_loads(flow, "task")
        assert flow.resolve_callable(use) is None

    def test_sole_definition_requires_exactly_one(self):
        flow = flow_of(
            """
            def f(flag):
                x = 1
                if flag:
                    x = 2
                return x
            """
        )
        (use,) = name_loads(flow, "x")
        assert flow.sole_definition(use) is None


class TestModuleTopLevel:
    def test_toplevel_calls_skip_function_bodies_and_main_guard(self):
        flow = flow_of(
            """
            import threading

            lock = threading.Lock()

            def f():
                inner_only()

            if __name__ == "__main__":
                main_only()
            """
        )
        callees = {
            node.func.attr if isinstance(node.func, ast.Attribute) else node.func.id
            for node in flow.module_toplevel_calls()
        }
        assert "Lock" in callees
        assert "inner_only" not in callees
        assert "main_only" not in callees

    def test_toplevel_calls_descend_into_try_and_if(self):
        flow = flow_of(
            """
            try:
                setup()
            except ImportError:
                fallback()

            if FLAG:
                conditional()
            """
        )
        callees = {node.func.id for node in flow.module_toplevel_calls()}
        assert callees == {"setup", "fallback", "conditional"}

    def test_uses_of_module_definition(self):
        flow = flow_of(
            """
            REGISTRY = {}

            def read():
                return REGISTRY

            def other():
                return []
            """
        )
        (definition,) = flow.module_defs["REGISTRY"]
        uses = flow.uses_of(definition)
        assert len(uses) == 1


class TestComprehensionScopes:
    """Comprehensions are their own scope (PEP 709 notwithstanding): targets
    must shadow outer bindings, except inside the first generator's iterable,
    which Python evaluates in the enclosing scope."""

    def test_target_shadows_module_binding(self):
        flow = flow_of(
            """
            x = {1}
            ys = [x for x in rows]
            """
        )
        elt_use = name_loads(flow, "x")[0]
        (definition,) = flow.definitions_for(elt_use)
        assert isinstance(definition, Definition)
        assert definition.kind == "comp"

    def test_first_iterable_sees_the_enclosing_scope(self):
        flow = flow_of(
            """
            x = [1]
            ys = [x for x in x]
            """
        )
        elt_use, iter_use = name_loads(flow, "x")
        assert {d.kind for d in flow.definitions_for(elt_use)} == {"comp"}
        (outer,) = flow.definitions_for(iter_use)
        assert outer.kind == "assign"
        assert isinstance(outer.value, ast.List)

    def test_second_iterable_is_shadowed(self):
        flow = flow_of(
            """
            x = [[1]]
            ys = [y for x in rows for y in x]
            """
        )
        (iter_use,) = name_loads(flow, "x")
        assert {d.kind for d in flow.definitions_for(iter_use)} == {"comp"}

    def test_nested_comprehension_resolves_to_outer_target(self):
        flow = flow_of(
            """
            row = {1}
            grid = [[cell for cell in row] for row in rows]
            """
        )
        # The inner comprehension's first iterable reads the *outer*
        # comprehension's target, not the module-level binding.
        (use,) = name_loads(flow, "row")
        assert {d.kind for d in flow.definitions_for(use)} == {"comp"}


class TestLambdaScopes:
    def test_lambda_parameter_shadows_module_binding(self):
        flow = flow_of(
            """
            work = {1}
            f = lambda work: work
            """
        )
        (use,) = name_loads(flow, "work")
        (definition,) = flow.definitions_for(use)
        assert definition.kind == "param"

    def test_lambda_free_variable_reaches_enclosing_function(self):
        flow = flow_of(
            """
            def f():
                base = {1}
                return lambda y: base
            """
        )
        (use,) = name_loads(flow, "base")
        (definition,) = flow.definitions_for(use)
        assert definition.kind == "assign"
        assert isinstance(definition.value, ast.Set)


class TestWalrusBindings:
    def test_walrus_in_condition_reaches_the_body(self):
        flow = flow_of(
            """
            def f(rows):
                if (n := len(rows)) > 3:
                    return n
            """
        )
        (use,) = name_loads(flow, "n")
        (definition,) = flow.definitions_for(use)
        assert definition.kind == "assign"
        assert isinstance(definition.value, ast.Call)

    def test_walrus_inside_comprehension_binds_enclosing_scope(self):
        flow = flow_of(
            """
            def f(rows):
                totals = [total := len(row) for row in rows]
                return total
            """
        )
        use = name_loads(flow, "total")[-1]  # the read after the listcomp
        defs = flow.definitions_for(use)
        assert {d.kind for d in defs} == {"assign"}

    def test_walrus_inside_nested_def_stays_local(self):
        flow = flow_of(
            """
            def f(rows):
                def g():
                    return (m := 1)
                return m
            """
        )
        use = name_loads(flow, "m")[-1]  # the read in f, after g's body
        assert flow.definitions_for(use) == set()


class TestNestedDefScopes:
    def test_inner_parameter_shadows_outer_binding(self):
        flow = flow_of(
            """
            def outer():
                item = {1}

                def inner(item):
                    return item
            """
        )
        (use,) = name_loads(flow, "item")
        assert {d.kind for d in flow.definitions_for(use)} == {"param"}

    def test_inner_free_variable_reaches_outer_assignment(self):
        flow = flow_of(
            """
            def outer():
                acc = []

                def inner(row):
                    return acc
            """
        )
        (use,) = name_loads(flow, "acc")
        (definition,) = flow.definitions_for(use)
        assert definition.kind == "assign"
        assert isinstance(definition.value, ast.List)

    def test_graph_for_builds_one_graph_per_scope(self):
        flow = flow_of(
            """
            def outer():
                x = 1

                def inner():
                    x = 2
                    return x
                return x
            """
        )
        outer_graph = flow.graph_for(func_named(flow, "outer"))
        inner_graph = flow.graph_for(func_named(flow, "inner"))
        assert isinstance(outer_graph, FlowGraph)
        assert isinstance(inner_graph, FlowGraph)
        assert outer_graph is not inner_graph
        # ast.walk is breadth-first: outer's shallower read comes first.
        outer_use, inner_use = name_loads(flow, "x")
        inner_value = next(iter(flow.definitions_for(inner_use))).value
        outer_value = next(iter(flow.definitions_for(outer_use))).value
        assert ast.literal_eval(inner_value) == 2
        assert ast.literal_eval(outer_value) == 1
