"""Helpers shared by the crowdlint rule tests."""

from __future__ import annotations

import textwrap
from typing import List, Optional

import pytest

from repro.devtools import Finding, LintEngine


@pytest.fixture
def lint():
    """Lint an inline source snippet with one rule (or all) and return findings."""

    def _lint(
        source: str,
        rule: Optional[str] = None,
        module: Optional[str] = None,
        path: str = "snippet.py",
    ) -> List[Finding]:
        engine = LintEngine(select=[rule] if rule else None)
        return engine.lint_source(textwrap.dedent(source), path=path, module=module)

    return _lint


def rule_ids(findings: List[Finding]) -> List[str]:
    return [finding.rule_id for finding in findings]
