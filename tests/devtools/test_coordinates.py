"""CW101 lat-lon-order: positive and negative fixtures."""

from __future__ import annotations


def test_flags_swapped_positional_args(lint):
    findings = lint("d = haversine_m(lon1, lat1, lon2, lat2)\n", rule="CW101")
    assert len(findings) == 4
    assert all(f.rule_id == "CW101" for f in findings)


def test_flags_swapped_geopoint_constructor(lint):
    findings = lint("p = GeoPoint(venue.lon, venue.lat)\n", rule="CW101")
    assert len(findings) == 2
    assert "expects a lat in position 1" in findings[0].message


def test_flags_swapped_keyword_argument(lint):
    findings = lint("validate_lat_lon(lat=point.lon, lon=point.lat)\n", rule="CW101")
    assert len(findings) == 2


def test_correct_order_is_clean(lint):
    source = """\
    d = haversine_m(a.lat, a.lon, b.lat, b.lon)
    p = GeoPoint(lat, lon)
    q = GeoPoint(lat=min_lat, lon=min_lon)
    dest = destination_point(lat1, lon1, bearing, dist)
    """
    assert lint(source, rule="CW101") == []


def test_unrelated_calls_and_opaque_args_are_clean(lint):
    source = """\
    plot(lon, lat)              # not a known geo signature
    p = GeoPoint(coords[0], coords[1])   # opaque: no axis hint
    d = haversine_m(*pair_a, *pair_b)
    """
    assert lint(source, rule="CW101") == []


def test_latitude_longitude_long_names_classify(lint):
    findings = lint("GeoPoint(start_longitude, start_latitude)\n", rule="CW101")
    assert len(findings) == 2
