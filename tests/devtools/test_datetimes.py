"""CW103 naive-datetime: positive and negative fixtures."""

from __future__ import annotations


def test_flags_naive_now_and_utc_helpers(lint):
    source = """\
    from datetime import datetime
    a = datetime.now()
    b = datetime.utcnow()
    c = datetime.utcfromtimestamp(ts)
    d = datetime.fromtimestamp(ts)
    """
    findings = lint(source, rule="CW103")
    assert len(findings) == 4
    assert all(f.rule_id == "CW103" for f in findings)


def test_flags_qualified_datetime_module(lint):
    findings = lint("import datetime\nx = datetime.datetime.utcnow()\n", rule="CW103")
    assert len(findings) == 1


def test_aware_calls_are_clean(lint):
    source = """\
    from datetime import datetime, timezone
    a = datetime.now(timezone.utc)
    b = datetime.now(tz=timezone.utc)
    c = datetime.fromtimestamp(ts, timezone.utc)
    d = datetime.fromtimestamp(ts, tz=local_tz)
    """
    assert lint(source, rule="CW103") == []


def test_unrelated_now_methods_are_clean(lint):
    source = """\
    clock.now()
    pandas.Timestamp.now()
    datetime.combine(day, time)
    """
    assert lint(source, rule="CW103") == []
