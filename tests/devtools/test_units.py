"""CW102 unit-suffix consistency: positive and negative fixtures."""

from __future__ import annotations


def test_flags_additive_mixing(lint):
    findings = lint("total = dist_m + offset_deg\n", rule="CW102")
    assert len(findings) == 1
    assert "meters" in findings[0].message and "degrees" in findings[0].message


def test_flags_subtraction_and_comparison(lint):
    source = """\
    gap = window_s - radius_m
    if radius_m < duration_s:
        pass
    """
    findings = lint(source, rule="CW102")
    assert len(findings) == 2


def test_flags_relabeling_assignment_and_keyword(lint):
    source = """\
    dist_m = bearing_deg
    move(distance_m=angle_deg)
    """
    findings = lint(source, rule="CW102")
    assert len(findings) == 2


def test_same_unit_arithmetic_is_clean(lint):
    source = """\
    total_m = leg1_m + leg2_m
    dt_s = end_s - start_s
    if dist_m < threshold_m:
        pass
    speed = dist_m / dt_s            # division crosses units legitimately
    area = width_m * height_m
    scaled = radius_m / EARTH_RADIUS_M
    """
    assert lint(source, rule="CW102") == []


def test_unsuffixed_names_are_clean(lint):
    source = """\
    x = dist_m + margin
    y = count + dwell_s
    stream = items + deg             # 'deg' alone is not a suffix
    """
    assert lint(source, rule="CW102") == []
