"""The per-file result cache: correctness, invalidation, and work avoided.

Every assertion here is structural — files analyzed, cache hits — never
wall-clock, so the suite cannot flake on a loaded 1-CPU runner.  The warm
"5x less work" ratio is over the analyzed counts of a generated many-file
tree (and is in fact infinite: a warm run re-analyzes nothing).
"""

from __future__ import annotations

import pytest

from repro.devtools.cache import LintCache, ruleset_fingerprint
from repro.devtools.engine import LintEngine

FILE_TEMPLATE = '''\
"""Generated fixture module {index}."""

from datetime import datetime


def naive_{index}():
    return datetime.now()


def busy_{index}(values):
    out = []
    for value in values:
        for other in values:
            if value < other:
                out.append((value, other))
    return out
'''


@pytest.fixture
def tree(tmp_path):
    """A generated multi-file tree with one finding per file."""
    package = tmp_path / "pkg"
    package.mkdir()
    for index in range(40):
        (package / f"mod_{index:02d}.py").write_text(
            FILE_TEMPLATE.format(index=index), encoding="utf-8"
        )
    return package


def test_warm_run_analyzes_nothing_and_matches_cold(tree, tmp_path):
    cache = LintCache(root=tmp_path / "cache")
    engine = LintEngine()

    cold = engine.lint_paths([tree], cache=cache)
    cold_stats = engine.last_stats
    assert cold_stats.analyzed == cold_stats.files == 40
    assert len(cold) == 40  # one CW103 per generated file

    warm = engine.lint_paths([tree], cache=cache)
    warm_stats = engine.last_stats
    assert warm_stats.analyzed == 0
    assert warm_stats.cache_hits == 40
    assert [f.as_dict() for f in warm] == [f.as_dict() for f in cold]


def test_warm_relint_does_at_least_5x_less_work(tree, tmp_path):
    # Work is measured structurally (files analyzed), never by wall-clock:
    # a loaded CI runner can stall either run arbitrarily, so a timing
    # ratio would flake while proving nothing the analyzed counts don't.
    cache = LintCache(root=tmp_path / "cache")
    engine = LintEngine()

    engine.lint_paths([tree], cache=cache)
    cold_analyzed = engine.last_stats.analyzed
    assert cold_analyzed == 40

    engine.lint_paths([tree], cache=cache)
    warm_analyzed = engine.last_stats.analyzed

    ratio = cold_analyzed / max(warm_analyzed, 1)
    assert ratio >= 5.0, f"warm relint did only {ratio:.1f}x less analysis"
    assert warm_analyzed == 0  # and in fact the warm run re-analyzes nothing


def test_editing_a_file_invalidates_only_that_file(tree, tmp_path):
    cache = LintCache(root=tmp_path / "cache")
    engine = LintEngine()
    engine.lint_paths([tree], cache=cache)

    target = tree / "mod_00.py"
    target.write_text(target.read_text() + "\n\nEXTRA = 1\n", encoding="utf-8")

    engine.lint_paths([tree], cache=cache)
    assert engine.last_stats.analyzed == 1
    assert engine.last_stats.cache_hits == 39


def test_cache_key_includes_module_identity_and_rule_selection():
    cache_key = LintCache.key_for
    source = "x = 1\n"
    assert cache_key(source, "repro.web.a", False) != cache_key(source, "repro.obs.a", False)
    assert cache_key(source, "repro.web.a", False) != cache_key(source, "repro.web.a", True)
    # an --ignore/--select run must not share entries with a full-rule run
    all_rules_key = cache_key(source, "repro.web.a", False, ["CW103", "CW104"])
    assert all_rules_key != cache_key(source, "repro.web.a", False, ["CW103"])
    # ...but rule order must not matter
    assert all_rules_key == cache_key(source, "repro.web.a", False, ["CW104", "CW103"])


def test_fingerprint_change_misses_cleanly(tree, tmp_path):
    root = tmp_path / "cache"
    engine = LintEngine()
    engine.lint_paths([tree], cache=LintCache(root=root, fingerprint="aaaa"))
    engine.lint_paths([tree], cache=LintCache(root=root, fingerprint="bbbb"))
    assert engine.last_stats.analyzed == 40  # nothing served across fingerprints


def test_ruleset_fingerprint_is_stable_within_a_process():
    assert ruleset_fingerprint() == ruleset_fingerprint()


def test_findings_rebind_to_the_current_path(tmp_path):
    cache = LintCache(root=tmp_path / "cache")
    engine = LintEngine()
    # Same file name in two directories: identical content AND identical
    # inferred module name, so the second lint is a hit at a new path.
    (tmp_path / "one").mkdir()
    (tmp_path / "two").mkdir()
    a = tmp_path / "one" / "mod.py"
    b = tmp_path / "two" / "mod.py"
    source = "from datetime import datetime\nts = datetime.now()\n"
    a.write_text(source, encoding="utf-8")
    b.write_text(source, encoding="utf-8")

    first = engine.lint_paths([a], cache=cache)
    second = engine.lint_paths([b], cache=cache)
    assert engine.last_stats.cache_hits == 1
    assert first[0].path.endswith("one/mod.py")
    assert second[0].path.endswith("two/mod.py")


def test_corrupt_cache_entry_degrades_to_a_miss(tree, tmp_path):
    cache = LintCache(root=tmp_path / "cache")
    engine = LintEngine()
    engine.lint_paths([tree], cache=cache)
    for entry in cache.dir.rglob("*.json"):
        entry.write_text("{not json", encoding="utf-8")
    findings = engine.lint_paths([tree], cache=cache)
    assert engine.last_stats.analyzed == 40
    assert len(findings) == 40
