"""Unit tests for the v5 exception-propagation analysis.

Fact extraction is tested straight off ``ast.parse``; the may-raise
fixpoint through :class:`ProjectAnalysis` over small on-disk trees, the
way the engine builds it.  The fixpoint cases the issue calls out —
recursion cycle, re-raise, ``finally`` — each get their own oracle.
"""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path
from typing import Dict

from repro.devtools.callgraph import ProjectAnalysis
from repro.devtools.cli import main
from repro.devtools.engine import iter_python_files, module_name_for
from repro.devtools.exceptions import ExceptionAnalysis, extract_exception_facts


def facts_of(source: str) -> Dict[str, object]:
    return extract_exception_facts(ast.parse(textwrap.dedent(source)))


def write_tree(root: Path, modules: Dict[str, str]) -> None:
    root.mkdir(parents=True, exist_ok=True)
    for dotted, source in modules.items():
        parts = dotted.split(".")
        directory = root
        for part in parts[:-1]:
            directory = directory / part
            directory.mkdir(exist_ok=True)
            init = directory / "__init__.py"
            if not init.exists():
                init.write_text("")
        (directory / f"{parts[-1]}.py").write_text(textwrap.dedent(source))


def analyze(root: Path, modules: Dict[str, str]) -> ExceptionAnalysis:
    write_tree(root, modules)
    files = []
    for file_path in iter_python_files([root]):
        files.append(
            (str(file_path), file_path.read_text(), module_name_for(file_path),
             file_path.name == "__init__.py")
        )
    return ProjectAnalysis.build(files).exceptions()


class TestExtraction:
    def test_raise_and_handler_facts(self):
        facts = facts_of(
            """
            def f(x):
                try:
                    if x:
                        raise ValueError("bad")
                except KeyError:
                    pass
                except Exception as exc:
                    log(exc)
            """
        )
        record = facts["functions"]["f"]
        (raised,) = record["raises"]
        assert raised["type"] == "ValueError"
        assert raised["guards"] == [[0, 1]]  # both handlers guard the body
        kinds = [(h["types"], h["uses"], h["silent"]) for h in record["handlers"]]
        assert kinds == [(["KeyError"], False, True), (["Exception"], True, False)]

    def test_project_class_hierarchy_collected(self):
        facts = facts_of(
            """
            class BoundaryError(ValueError):
                pass
            """
        )
        assert facts["classes"]["BoundaryError"] == ["ValueError"]

    def test_bare_raise_marks_reraise(self):
        facts = facts_of(
            """
            def f():
                try:
                    g()
                except Exception:
                    raise
            """
        )
        (handler,) = facts["functions"]["f"]["handlers"]
        assert handler["reraises"] is True


class TestFixpoint:
    def test_propagation_across_modules(self, tmp_path):
        analysis = analyze(
            tmp_path / "tree",
            {
                "repro.mining.deep": """
                    def fail():
                        raise ValueError("boom")
                    """,
                "repro.mining.top": """
                    from repro.mining.deep import fail


                    def call():
                        return fail()
                    """,
            },
        )
        assert analysis.may_raise("repro.mining.top", "call") == {"ValueError"}

    def test_recursion_cycle_converges(self, tmp_path):
        analysis = analyze(
            tmp_path / "tree",
            {
                "repro.mining.loop": """
                    def ping(n):
                        if n < 0:
                            raise IndexError(n)
                        return pong(n - 1)


                    def pong(n):
                        return ping(n)
                    """
            },
        )
        assert analysis.may_raise("repro.mining.loop", "ping") == {"IndexError"}
        assert analysis.may_raise("repro.mining.loop", "pong") == {"IndexError"}

    def test_handler_subsumption_stops_subclasses(self, tmp_path):
        analysis = analyze(
            tmp_path / "tree",
            {
                "repro.mining.io": """
                    def read():
                        raise FileNotFoundError("gone")


                    def guarded():
                        try:
                            return read()
                        except OSError:
                            return None


                    def mismatched():
                        try:
                            return read()
                        except KeyError:
                            return None
                    """
            },
        )
        assert analysis.may_raise("repro.mining.io", "guarded") == set()
        assert analysis.may_raise("repro.mining.io", "mismatched") == {
            "FileNotFoundError"
        }

    def test_project_exception_subsumed_via_base(self, tmp_path):
        analysis = analyze(
            tmp_path / "tree",
            {
                "repro.taxonomy.errors": """
                    class UnknownTagError(KeyError):
                        pass


                    def lookup(tag):
                        raise UnknownTagError(tag)
                    """,
                "repro.taxonomy.use": """
                    from repro.taxonomy.errors import lookup


                    def safe(tag):
                        try:
                            return lookup(tag)
                        except KeyError:
                            return None
                    """,
            },
        )
        assert analysis.may_raise("repro.taxonomy.errors", "lookup") == {
            "UnknownTagError"
        }
        assert analysis.may_raise("repro.taxonomy.use", "safe") == set()

    def test_reraise_propagates_received_types(self, tmp_path):
        analysis = analyze(
            tmp_path / "tree",
            {
                "repro.mining.relay": """
                    def fail():
                        raise ValueError("boom")


                    def log_and_reraise():
                        try:
                            return fail()
                        except Exception:
                            note()
                            raise


                    def note():
                        pass
                    """
            },
        )
        assert analysis.may_raise("repro.mining.relay", "log_and_reraise") == {
            "ValueError"
        }

    def test_finally_releases_but_does_not_swallow(self, tmp_path):
        analysis = analyze(
            tmp_path / "tree",
            {
                "repro.mining.fin": """
                    def fail():
                        raise RuntimeError("boom")


                    def cleanup():
                        try:
                            return fail()
                        finally:
                            note()


                    def note():
                        pass
                    """
            },
        )
        assert analysis.may_raise("repro.mining.fin", "cleanup") == {"RuntimeError"}

    def test_else_block_is_not_protected_by_its_try(self, tmp_path):
        analysis = analyze(
            tmp_path / "tree",
            {
                "repro.mining.orelse": """
                    def fail():
                        raise ValueError("boom")


                    def f():
                        try:
                            x = 1
                        except ValueError:
                            return None
                        else:
                            return fail()
                    """
            },
        )
        assert analysis.may_raise("repro.mining.orelse", "f") == {"ValueError"}


class TestRaisesCLI:
    MODULES = {
        "repro.mining.deep": """
            def fail():
                raise ValueError("boom")
            """,
        "repro.mining.top": """
            from repro.mining.deep import fail


            def call():
                return fail()
            """,
    }

    def test_chain_is_rendered(self, tmp_path, capsys):
        root = tmp_path / "tree"
        write_tree(root, self.MODULES)
        assert main([str(root), "--raises", "repro.mining.top:call"]) == 0
        out = capsys.readouterr().out
        assert "may raise ValueError" in out
        assert "via call at repro.mining.top:call" in out
        assert "raised at repro.mining.deep:fail" in out

    def test_dotted_symbol_form_resolves(self, tmp_path, capsys):
        root = tmp_path / "tree"
        write_tree(root, self.MODULES)
        assert main([str(root), "--raises", "repro.mining.deep.fail"]) == 0
        assert "raised at repro.mining.deep:fail" in capsys.readouterr().out

    def test_unknown_symbol_exits_two(self, tmp_path, capsys):
        root = tmp_path / "tree"
        write_tree(root, self.MODULES)
        assert main([str(root), "--raises", "repro.mining.top:nope"]) == 2
        assert "unknown symbol" in capsys.readouterr().out
