"""The finding baseline — the ratchet that lets CI fail on *new* findings."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.devtools.baseline import (
    BASELINE_VERSION,
    finding_signature,
    load_baseline,
    new_findings,
    snapshot,
    write_baseline,
)
from repro.devtools.cli import main
from repro.devtools.engine import Finding


def finding(path="src/a.py", line=3, rule="CW501", message="list scan in loop"):
    return Finding(path, line, 1, rule, message)


class TestSignatures:
    def test_signature_ignores_the_line_number(self):
        assert finding_signature(finding(line=3)) == finding_signature(finding(line=40))

    def test_signature_separates_rule_path_and_message(self):
        base = finding_signature(finding())
        assert finding_signature(finding(path="src/b.py")) != base
        assert finding_signature(finding(rule="CW502")) != base
        assert finding_signature(finding(message="other")) != base

    def test_snapshot_counts_duplicate_signatures(self):
        payload = snapshot([finding(line=3), finding(line=9)])
        assert payload["version"] == BASELINE_VERSION
        assert list(payload["entries"].values()) == [2]


class TestLoadAndFilter:
    def test_missing_file_is_an_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_malformed_file_raises(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("not json")
        with pytest.raises(ValueError):
            load_baseline(bad)

    def test_version_mismatch_raises(self, tmp_path):
        stale = tmp_path / "baseline.json"
        stale.write_text(json.dumps({"version": 99, "entries": {}}))
        with pytest.raises(ValueError):
            load_baseline(stale)

    def test_round_trip_suppresses_recorded_findings(self, tmp_path):
        path = tmp_path / "baseline.json"
        known = [finding(), finding(rule="CW604", message="dead export")]
        assert write_baseline(path, known) == 2
        fresh, suppressed = new_findings(known, load_baseline(path))
        assert fresh == []
        assert suppressed == 2

    def test_overflow_beyond_the_recorded_count_is_new(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [finding(line=3)])
        fresh, suppressed = new_findings(
            [finding(line=3), finding(line=41)], load_baseline(path)
        )
        assert suppressed == 1
        assert [f.line for f in fresh] == [41]


DIRTY_SOURCE = """
    def dedupe(rows):
        out = []
        for row in rows:
            if row in out:
                continue
            out.append(row)
        return out
"""


class TestCliRatchet:
    def write_tree(self, root, extra=""):
        (root / "mod.py").write_text(textwrap.dedent(DIRTY_SOURCE) + extra)

    def test_update_then_ratchet_passes(self, tmp_path, capsys):
        tree = tmp_path / "tree"
        tree.mkdir()
        self.write_tree(tree)
        baseline = tmp_path / "baseline.json"
        argv = [str(tree), "--no-cache", "--baseline", str(baseline)]

        assert main(argv + ["--update-baseline"]) == 0
        assert load_baseline(baseline)  # the CW501 got recorded
        assert main(argv) == 0
        assert "suppressed" in capsys.readouterr().err

    def test_new_finding_fails_and_is_the_only_one_reported(self, tmp_path, capsys):
        tree = tmp_path / "tree"
        tree.mkdir()
        self.write_tree(tree)
        baseline = tmp_path / "baseline.json"
        argv = [str(tree), "--no-cache", "--baseline", str(baseline)]
        assert main(argv + ["--update-baseline"]) == 0

        self.write_tree(tree, extra="\n\ntext = ''\nfor c in 'ab':\n    text += c\n")
        assert main(argv) == 1
        out = capsys.readouterr().out
        assert "CW502" in out
        assert "CW501" not in out  # baselined finding stays suppressed

    def test_update_baseline_requires_baseline(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        self.write_tree(tree)
        assert main([str(tree), "--no-cache", "--update-baseline"]) == 2
