"""CW8xx — resource-lifetime and cache-coherence rules.

The seeded fixtures are the acceptance oracle for the v5 analysis: a
leak-on-exception file handle, an unguarded lock hold, a swallowed
propagated exception, a non-durable atomic save, a stale served mutation,
and a handler-domain cache bypass must all be detected — and their clean
twins (identical shape, correct lifecycle) must produce zero findings.
"""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import Dict, List

from repro.devtools import Finding, LintEngine
from repro.devtools.cache import LintCache
from repro.devtools.cli import main
from repro.devtools.engine import LintStats

CW8XX = ["CW801", "CW802", "CW803", "CW804", "CW805", "CW806"]


def write_tree(root: Path, modules: Dict[str, str]) -> None:
    root.mkdir(parents=True, exist_ok=True)
    for dotted, source in modules.items():
        parts = dotted.split(".")
        directory = root
        for part in parts[:-1]:
            directory = directory / part
            directory.mkdir(exist_ok=True)
            init = directory / "__init__.py"
            if not init.exists():
                init.write_text("")
        (directory / f"{parts[-1]}.py").write_text(textwrap.dedent(source))


def lint_tree(root: Path, modules: Dict[str, str], select=None) -> List[Finding]:
    write_tree(root, modules)
    return LintEngine(select=select or CW8XX).lint_paths([root])


#: A raising callee, a leak-on-exception handle, a never-closed handle,
#: an unguarded lock hold, and a broad swallow of the propagated error.
SEEDED_LEAKS = {
    "repro.webapp.leaky": """
        import threading

        LOCK = threading.Lock()


        def risky():
            raise ValueError("boom")


        def leak_file(path):
            handle = open(path)
            data = handle.read()
            risky()
            handle.close()
            return data


        def never_closed(path):
            handle = open(path)
            return len(handle.read().split())


        def lock_leak():
            LOCK.acquire()
            risky()
            LOCK.release()


        def swallow():
            try:
                return risky()
            except Exception:
                return None
        """
}

#: Identical shapes with correct lifecycles: ``with`` for the handle and
#: the lock, the exception handled at its narrow type with the binding used.
CLEAN_LEAK_TWIN = {
    "repro.webapp.leaky": """
        import threading

        LOCK = threading.Lock()


        def risky():
            raise ValueError("boom")


        def leak_file(path):
            with open(path) as handle:
                data = handle.read()
                risky()
            return data


        def closed_in_finally(path):
            handle = open(path)
            try:
                return len(handle.read().split())
            finally:
                handle.close()


        def lock_guarded():
            with LOCK:
                risky()


        def handled(log):
            try:
                return risky()
            except ValueError as exc:
                log.append(str(exc))
                return None
        """
}

SEEDED_ATOMIC = {
    "repro.webapp.store": """
        import json
        import os
        import tempfile


        def save_unsafe(payload, path):
            fd, tmp_name = tempfile.mkstemp(dir=os.path.dirname(path) or ".")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        """
}

CLEAN_ATOMIC_TWIN = {
    "repro.webapp.store": """
        import json
        import os
        import tempfile


        def save_safe(payload, path):
            fd, tmp_name = tempfile.mkstemp(dir=os.path.dirname(path) or ".")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_name, path)
            except BaseException:
                os.unlink(tmp_name)
                raise
        """
}

#: ``refresh`` swaps served state without invalidating; ``rebuild`` is the
#: clean twin inside the same class.
SEEDED_STALE_CACHE = {
    "repro.webapp.app": """
        class ResponseCache:
            def __init__(self):
                self._entries = {}
                self._generation = 0

            def invalidate(self):
                self._generation += 1
                self._entries.clear()

            def lookup(self, key):
                return self._entries.get(key)


        class App:
            def __init__(self, result):
                self.result = result
                self.pages = {}
                self.cache = ResponseCache()

            def refresh(self, result):
                self.result = result

            def rebuild(self, result):
                self.result = result
                self.cache.invalidate()
        """
}

SEEDED_CACHE_BYPASS = {
    **SEEDED_STALE_CACHE,
    "repro.webapp.handler": """
        from http.server import BaseHTTPRequestHandler

        from repro.webapp.app import App

        APP = App(result={})


        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):
                entry = APP.cache._entries.get(self.path)
                self.wfile.write(entry or b"")
        """,
}

CLEAN_CACHE_TWIN = {
    **SEEDED_STALE_CACHE,
    "repro.webapp.handler": """
        from http.server import BaseHTTPRequestHandler

        from repro.webapp.app import App

        APP = App(result={})


        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):
                entry = APP.cache.lookup(self.path)
                self.wfile.write(entry or b"")
        """,
}


class TestSeededOracles:
    def test_leak_pack_fires_exactly_once_per_seed(self, tmp_path):
        findings = lint_tree(tmp_path, SEEDED_LEAKS)
        by_rule = sorted((f.rule_id, f.line) for f in findings)
        assert [rule for rule, _ in by_rule] == [
            "CW801",  # leak_file: handle lost if risky() raises
            "CW801",  # never_closed: handle never released at all
            "CW802",  # lock_leak: release skipped when risky() raises
            "CW803",  # swallow: broad handler eats the ValueError
        ]
        messages = {f.rule_id: f.message for f in findings}
        assert "never released" in messages["CW801"]
        assert "ValueError" in messages["CW803"]

    def test_leak_clean_twin_is_silent(self, tmp_path):
        assert lint_tree(tmp_path, CLEAN_LEAK_TWIN) == []

    def test_atomic_persistence_missing_fsync_and_cleanup(self, tmp_path):
        findings = lint_tree(tmp_path, SEEDED_ATOMIC)
        assert [f.rule_id for f in findings] == ["CW804", "CW804"]
        blob = " ".join(f.message for f in findings)
        assert "fsync" in blob and "clean" in blob

    def test_atomic_clean_twin_is_silent(self, tmp_path):
        assert lint_tree(tmp_path, CLEAN_ATOMIC_TWIN) == []

    def test_mutation_without_invalidation(self, tmp_path):
        findings = lint_tree(tmp_path, SEEDED_STALE_CACHE, select=["CW805"])
        assert [f.rule_id for f in findings] == ["CW805"]
        assert "refresh" in findings[0].message
        assert "invalidate" in findings[0].message

    def test_handler_cache_bypass(self, tmp_path):
        findings = lint_tree(tmp_path, SEEDED_CACHE_BYPASS, select=["CW806"])
        assert [f.rule_id for f in findings] == ["CW806"]
        assert "_entries" in findings[0].message
        assert findings[0].path.endswith("handler.py")

    def test_cache_api_twin_is_silent(self, tmp_path):
        assert lint_tree(tmp_path, CLEAN_CACHE_TWIN, select=["CW806"]) == []


class TestLifetimeJudgment:
    def test_escaped_handle_is_the_callers_problem(self, tmp_path):
        modules = {
            "repro.webapp.give": """
                def provide(path):
                    handle = open(path)
                    return handle
                """
        }
        assert lint_tree(tmp_path, modules, select=["CW801"]) == []

    def test_release_after_non_raising_calls_is_fine(self, tmp_path):
        modules = {
            "repro.webapp.calm": """
                def count(path):
                    handle = open(path)
                    data = handle.read()
                    handle.close()
                    return len(data)
                """
        }
        assert lint_tree(tmp_path, modules, select=["CW801"]) == []

    def test_early_return_between_acquire_and_release(self, tmp_path):
        modules = {
            "repro.webapp.early": """
                def peek(path, skip):
                    handle = open(path)
                    if skip:
                        return None
                    data = handle.read()
                    handle.close()
                    return data
                """
        }
        findings = lint_tree(tmp_path, modules, select=["CW801"])
        assert [f.rule_id for f in findings] == ["CW801"]
        assert "return" in findings[0].message

    def test_conditional_lock_acquire_is_not_tracked(self, tmp_path):
        modules = {
            "repro.webapp.trylock": """
                import threading

                LOCK = threading.Lock()


                def poll():
                    if LOCK.acquire(blocking=False):
                        LOCK.release()
                """
        }
        assert lint_tree(tmp_path, modules, select=["CW802"]) == []


class TestSwallowJudgment:
    def test_used_binding_is_not_a_swallow(self, tmp_path):
        modules = {
            "repro.webapp.logging": """
                def risky():
                    raise ValueError("boom")


                def report(log):
                    try:
                        return risky()
                    except Exception as exc:
                        log.append(str(exc))
                        return None
                """
        }
        assert lint_tree(tmp_path, modules, select=["CW803"]) == []

    def test_broad_catch_with_nothing_incoming_is_fine(self, tmp_path):
        modules = {
            "repro.webapp.noop": """
                def safe():
                    return 1


                def wrap():
                    try:
                        return safe()
                    except Exception:
                        return None
                """
        }
        assert lint_tree(tmp_path, modules, select=["CW803"]) == []


class TestLockFix:
    SOURCE = {
        "repro.webapp.guard": """
            import threading

            LOCK = threading.Lock()


            def risky():
                raise ValueError("boom")


            def tick(counts, key):
                LOCK.acquire()
                counts[key] = counts.get(key, 0) + 1
                risky()
                LOCK.release()
            """
    }

    def test_cli_fix_rewrites_to_with_block(self, tmp_path, capsys):
        # CW802 is a project rule: the per-file re-lint inside --fix cannot
        # see it, so the CLI must seed the fixer from a whole-program run.
        write_tree(tmp_path, self.SOURCE)
        assert main(["--select", "CW802", "--fix", str(tmp_path)]) == 0
        assert "fixed 1 finding(s)" in capsys.readouterr().err
        patched = (tmp_path / "repro" / "webapp" / "guard.py").read_text()
        assert "with LOCK:" in patched
        assert "LOCK.acquire()" not in patched
        assert "LOCK.release()" not in patched
        # the rewrite compiles and the re-lint is clean
        compile(patched, "guard.py", "exec")
        assert LintEngine(select=CW8XX).lint_paths([tmp_path]) == []
        # idempotent: a second run has nothing left to do
        assert main(["--select", "CW802", "--fix", str(tmp_path)]) == 0
        assert "fixed 0 finding(s)" in capsys.readouterr().err


class TestSeverityAndSuppression:
    def test_error_in_web_layer_warning_elsewhere(self, tmp_path):
        in_web = {"repro.web.leaky": SEEDED_LEAKS["repro.webapp.leaky"]}
        web = lint_tree(tmp_path / "a", in_web)
        assert {f.severity for f in web} == {"error"}
        elsewhere = {
            "repro.mining.leaky": SEEDED_LEAKS["repro.webapp.leaky"]
        }
        mining = lint_tree(tmp_path / "b", elsewhere)
        assert {f.rule_id for f in mining} == {"CW801", "CW802", "CW803"}
        assert {f.severity for f in mining} == {"warning"}

    def test_pragma_suppresses_with_justification(self, tmp_path):
        modules = {
            "repro.webapp.leaky": SEEDED_LEAKS["repro.webapp.leaky"].replace(
                "handle = open(path)\n            return len",
                "handle = open(path)  "
                "# crowdlint: disable=CW801 -- handed to the GC on purpose\n"
                "            return len",
            )
        }
        findings = lint_tree(tmp_path, modules, select=["CW801"])
        # only the un-pragma'd leak_file acquisition remains
        assert len(findings) == 1


class TestWarmCacheDependents:
    MODULES = {
        "repro.webapp.io": """
            def fetch(path):
                with open(path) as handle:
                    return handle.read()
            """,
        "repro.webapp.use": """
            from repro.webapp.io import fetch


            def load(path):
                handle = open(path)
                data = fetch(handle.read())
                handle.close()
                return data
            """,
        "repro.webapp.bystander": """
            def quiet():
                return 0
            """,
    }

    def test_leaf_raise_reanalyzes_only_dependents(self, tmp_path):
        root = tmp_path / "tree"
        root.mkdir()
        write_tree(root, self.MODULES)
        cache = LintCache(root=tmp_path / "cache")

        engine = LintEngine(select=CW8XX)
        assert engine.lint_paths([root], cache=cache) == []
        cold = engine.last_stats
        assert isinstance(cold, LintStats)
        assert cold.cache_hits == 0

        engine = LintEngine(select=CW8XX)
        assert engine.lint_paths([root], cache=cache) == []
        warm = engine.last_stats
        assert warm.analyzed == 0
        assert warm.cache_hits == warm.files

        # The leaf gains a raise: its may-raise summary changes, so the
        # caller (whose dep-key embeds it) must re-analyze and now leaks —
        # the bystander and package __init__ files must stay cache hits.
        write_tree(
            root,
            {
                "repro.webapp.io": """
                    def fetch(path):
                        raise OSError(path)
                    """
            },
        )
        engine = LintEngine(select=CW8XX)
        findings = engine.lint_paths([root], cache=cache)
        ratchet = engine.last_stats
        assert ratchet.analyzed == 2  # io + use
        assert ratchet.cache_hits == ratchet.files - 2
        assert [f.rule_id for f in findings] == ["CW801"]
        assert findings[0].path.endswith("use.py")


class TestRealTreeStaysClean:
    def test_repo_src_has_no_cw8xx_findings(self):
        findings = LintEngine(select=CW8XX).lint_paths([Path("src")])
        assert findings == []
