"""Value-domain seeding, module summaries, and interprocedural propagation."""

from __future__ import annotations

import ast
import textwrap

import pytest

from repro.devtools.domains import (
    CONFLICT,
    DomainEnv,
    axis_of,
    dt_domain_of,
    extract_summary,
    id_domain_of,
    seed_domains,
    unit_of,
)


def summarize(source: str, module: str = "repro.mod"):
    tree = ast.parse(textwrap.dedent(source))
    return extract_summary(tree, module, f"{module.replace('.', '/')}.py", False)


class TestSeedClassifiers:
    @pytest.mark.parametrize(
        "name, axis",
        [
            ("lat", "lat"),
            ("min_lon", "lon"),
            ("start_latitude", "lat"),
            ("lng", "lon"),
            ("lat1", "lat"),
            ("velocity", None),
            ("lat_lon_pair", None),  # mentions both axes: refuse to guess
        ],
    )
    def test_axis_of(self, name, axis):
        assert axis_of(name) == axis

    @pytest.mark.parametrize(
        "name, unit",
        [
            ("dist_m", "meters"),
            ("EARTH_RADIUS_M", "meters"),
            ("bearing_deg", "degrees"),
            ("dt_s", "seconds"),
            ("window_ms", "milliseconds"),
            ("radius_km", "kilometers"),
            ("distance", None),
            ("m", None),  # bare suffix with no stem says nothing
        ],
    )
    def test_unit_of(self, name, unit):
        assert unit_of(name) == unit

    @pytest.mark.parametrize(
        "name, domain",
        [
            ("user_id", "user_id"),
            ("owner_user_id", "user_id"),
            ("user_ids", "user_id"),
            ("uid", "user_id"),
            ("microcell_id", "microcell_id"),
            ("cell_id", "microcell_id"),
            ("item_id", "item_id"),
            ("id", None),  # bare id: unknown owner
            ("thread_id", None),  # unknown owner stays unknown
        ],
    )
    def test_id_domain_of(self, name, domain):
        assert id_domain_of(name) == domain

    @pytest.mark.parametrize(
        "name, kind",
        [
            ("ts_utc", "aware"),
            ("created_aware", "aware"),
            ("stamp_naive", "naive"),
            ("timestamp", None),
        ],
    )
    def test_dt_domain_of(self, name, kind):
        assert dt_domain_of(name) == kind

    def test_seed_domains_collects_every_family(self):
        assert seed_domains("user_id") == {"id": "user_id"}
        assert seed_domains("lat") == {"axis": "lat"}
        assert seed_domains("velocity") == {}


class TestSummaryExtraction:
    def test_functions_params_and_returns(self):
        summary = summarize(
            """
            def lookup(user_id, radius_m):
                return user_id
            """
        )
        info = summary["functions"]["lookup"]
        assert info["positional"] == ["user_id", "radius_m"]
        assert info["params"]["user_id"] == {"id": "user_id"}
        assert info["params"]["radius_m"] == {"unit": "meters"}
        assert info["returns"] == [["param", "user_id"]]

    def test_call_records_carry_arg_hints(self):
        summary = summarize(
            """
            def outer(user_id, venue):
                inner(user_id, venue.lat, 3)
            """
        )
        (call,) = summary["calls"]
        assert call["caller"] == "outer"
        assert call["callee"] == ["name", "inner"]
        assert call["args"] == [["param", "user_id"], ["name", "lat"], ["const"]]

    def test_partial_calls_unwrap_with_offset(self):
        summary = summarize(
            """
            from functools import partial

            def run(items):
                task = partial(store, 1, 2)
                task(items)
            """
        )
        (call,) = [c for c in summary["calls"] if c["caller"] == "run"]
        assert call["callee"] == ["name", "store"]
        assert call["offset"] == 2

    def test_method_and_constructor_syms(self):
        summary = summarize(
            """
            class Agg:
                def add(self, item_id):
                    self.flush(item_id)

            def use():
                agg = Agg()
                agg.add(7)
                Agg().add(8)
            """
        )
        callees = {tuple(map(str, c["callee"])) for c in summary["calls"]}
        assert ("self", "flush") in callees
        assert ("attr", "agg", "add") in callees
        assert any(c[0] == "new" for c in (call["callee"] for call in summary["calls"]))
        assert summary["functions"]["use"]["ctors"]["agg"] == ["name", "Agg"]

    def test_rebound_locals_are_never_chased(self):
        summary = summarize(
            """
            def f():
                g = first
                g = second
                g()
            """
        )
        (call,) = summary["calls"]
        assert call["callee"] == ["name", "g"]

    def test_exports_and_imports(self):
        summary = summarize(
            """
            from repro.geo import haversine_m as hav
            import repro.mining

            __all__ = ["lookup"]

            def lookup():
                return hav()
            """
        )
        assert summary["exports"] == ["lookup"]
        assert summary["imports"]["hav"] == ["symbol", "repro.geo", "haversine_m"]
        assert summary["imports"]["repro"] == ["module", "repro"]


def solve_pair(caller_src: str, callee_src: str):
    summaries = {
        "repro.a": summarize(caller_src, "repro.a"),
        "repro.b": summarize(callee_src, "repro.b"),
    }

    def resolver(module_key, caller, sym):
        if sym[0] != "name":
            return None
        for key in ("repro.a", "repro.b"):
            if sym[1] in summaries[key]["functions"]:
                return ((key, sym[1]), False)
        return None

    env = DomainEnv()
    env.solve(summaries, resolver)
    return env


class TestDomainPropagation:
    def test_pass_through_param_inherits_expectation(self):
        env = solve_pair(
            """
            def relay(value):
                return store(value)
            """,
            """
            def store(microcell_id):
                return microcell_id
            """,
        )
        assert env.expected_domains(("repro.a", "relay"), "value") == {
            "id": "microcell_id"
        }

    def test_disagreeing_callees_poison_the_slot(self):
        env = solve_pair(
            """
            def relay(value):
                store(value)
                keep(value)
            """,
            """
            def store(microcell_id):
                pass

            def keep(user_id):
                pass
            """,
        )
        ref = ("repro.a", "relay")
        assert env.expected.get(ref, {}).get("value", {}).get("id") == CONFLICT
        assert env.expected_domains(ref, "value") == {}  # conflicts never surface

    def test_seeded_param_is_authoritative(self):
        env = solve_pair(
            """
            def relay(user_id):
                store(user_id)
            """,
            """
            def store(microcell_id):
                pass
            """,
        )
        # The seed survives; the call-site check (not propagation) reports.
        assert env.expected_domains(("repro.a", "relay"), "user_id") == {
            "id": "user_id"
        }

    def test_return_domains_flow_forward(self):
        env = solve_pair(
            """
            def fetch():
                return make()
            """,
            """
            def make():
                return user_id
            """,
        )
        assert env.return_domains(("repro.b", "make")) == {"id": "user_id"}
        assert env.return_domains(("repro.a", "fetch")) == {"id": "user_id"}

    def test_mixed_return_paths_keep_only_agreement(self):
        env = solve_pair(
            """
            def fetch(flag):
                if flag:
                    return user_id
                return item_id
            """,
            """
            def unused():
                pass
            """,
        )
        assert env.return_domains(("repro.a", "fetch")) == {}

    def test_signature_reflects_expected_domains(self):
        env = solve_pair(
            """
            def relay(value):
                store(value)
            """,
            """
            def store(microcell_id):
                pass
            """,
        )
        signature = env.signature(("repro.a", "relay"), ["value"])
        assert "microcell_id" in signature
        assert env.signature(("repro.a", "relay"), ["value"]) == signature
