"""The crowdweb-lint CLI: flags, formats, exit codes."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.devtools.cli import main
from repro.devtools.engine import all_rules

DIRTY = """\
from datetime import datetime, timezone


def stamp():
    return datetime.utcnow()
"""

CLEAN = '"""Clean module."""\n\nX = 1\n'


@pytest.fixture
def dirty_file(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(DIRTY, encoding="utf-8")
    return path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path):
        (tmp_path / "ok.py").write_text(CLEAN, encoding="utf-8")
        assert main(["--no-cache", str(tmp_path)]) == 0

    def test_findings_exit_one(self, dirty_file):
        assert main(["--no-cache", str(dirty_file)]) == 1

    def test_missing_path_exits_two(self, tmp_path):
        assert main([str(tmp_path / "nope")]) == 2

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        assert main(["--select", "CW999", str(tmp_path)]) == 2
        assert "unknown rule id" in capsys.readouterr().err


class TestSelectIgnore:
    def test_select_restricts_to_one_rule(self, dirty_file, capsys):
        assert main(["--no-cache", "--select", "CW105", str(dirty_file)]) == 0
        assert main(["--no-cache", "--select", "CW103", str(dirty_file)]) == 1
        assert "CW103" in capsys.readouterr().out

    def test_ignore_drops_the_only_finding(self, dirty_file):
        assert main(["--no-cache", "--ignore", "CW103", str(dirty_file)]) == 0


class TestListRules:
    def test_human_listing_marks_fixable(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "CW103*" in out  # fixable marker
        assert "CW108 " in out

    def test_json_listing_is_the_full_catalog(self, capsys):
        assert main(["--list-rules", "--json"]) == 0
        catalog = json.loads(capsys.readouterr().out)
        assert [entry["id"] for entry in catalog] == sorted(
            rule.id for rule in all_rules()
        )
        by_id = {entry["id"]: entry for entry in catalog}
        assert by_id["CW103"]["fixable"] is True
        assert by_id["CW108"]["fixable"] is False
        assert all({"id", "name", "description", "fixable"} <= set(e) for e in catalog)


class TestFormats:
    def test_json_format(self, dirty_file, capsys):
        main(["--no-cache", "--format", "json", str(dirty_file)])
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["by_rule"] == {"CW103": 1}
        assert payload["findings"][0]["fixable"] is True

    def test_sarif_format(self, dirty_file, capsys):
        main(["--no-cache", "--format", "sarif", str(dirty_file)])
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        assert payload["runs"][0]["results"][0]["ruleId"] == "CW103"


class TestFixAndDiff:
    def test_diff_previews_without_writing(self, dirty_file, capsys):
        assert main(["--diff", str(dirty_file)]) == 0
        out = capsys.readouterr().out
        assert "+    return datetime.now(timezone.utc)" in out
        assert dirty_file.read_text(encoding="utf-8") == DIRTY  # untouched

    def test_fix_rewrites_in_place(self, dirty_file, capsys):
        assert main(["--fix", str(dirty_file)]) == 0
        assert "datetime.now(timezone.utc)" in dirty_file.read_text(encoding="utf-8")
        assert "fixed 1 finding(s)" in capsys.readouterr().err

    def test_fix_reports_unfixable_remainder(self, tmp_path, capsys):
        path = tmp_path / "stuck.py"
        path.write_text(
            textwrap.dedent(
                """\
                def first(items):
                    uniq = set(items)
                    return next(iter(uniq))
                """
            ),
            encoding="utf-8",
        )
        assert main(["--fix", str(path)]) == 1
        captured = capsys.readouterr()
        assert "CW204" in captured.out
        assert "1 remaining" in captured.err


class TestCacheFlags:
    def test_cache_dir_is_honoured(self, dirty_file, tmp_path):
        cache_dir = tmp_path / "mycache"
        assert main(["--cache-dir", str(cache_dir), str(dirty_file)]) == 1
        assert list(cache_dir.rglob("*.json"))

    def test_jobs_flag_matches_serial_output(self, tmp_path, capsys):
        for index in range(4):
            (tmp_path / f"mod_{index}.py").write_text(DIRTY, encoding="utf-8")
        main(["--no-cache", "--format", "json", str(tmp_path)])
        serial = json.loads(capsys.readouterr().out)
        main(["--no-cache", "--jobs", "2", "--format", "json", str(tmp_path)])
        parallel = json.loads(capsys.readouterr().out)
        assert serial == parallel
        assert parallel["count"] == 4
