"""CW7xx — thread-safety rules: seeded oracles, clean twins, autofix.

The two seeded-bug fixtures are the acceptance oracle for the race
detector: an unguarded shared-dict write reachable from a handler thread
and an inconsistent lock-order pair must both be detected, and their clean
twins — identical shape, correct locking — must produce zero findings.
"""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import Dict, List

from repro.devtools import Finding, LintEngine
from repro.devtools.cli import main

CW7XX = ["CW701", "CW702", "CW703", "CW704", "CW705"]


def write_tree(root: Path, modules: Dict[str, str]) -> None:
    root.mkdir(parents=True, exist_ok=True)
    for dotted, source in modules.items():
        parts = dotted.split(".")
        directory = root
        for part in parts[:-1]:
            directory = directory / part
            directory.mkdir(exist_ok=True)
            init = directory / "__init__.py"
            if not init.exists():
                init.write_text("")
        (directory / f"{parts[-1]}.py").write_text(textwrap.dedent(source))


def lint_tree(root: Path, modules: Dict[str, str], select=None) -> List[Finding]:
    write_tree(root, modules)
    return LintEngine(select=select or CW7XX).lint_paths([root])


SEEDED_HANDLER_BUG = {
    "repro.web.serve": """
        from http.server import BaseHTTPRequestHandler

        HITS = {}


        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):
                record(self.path)


        def record(path):
            HITS[path] = HITS.get(path, 0) + 1
        """
}

#: Identical shape, but every access takes the module lock.
CLEAN_HANDLER_TWIN = {
    "repro.web.serve": """
        import threading

        from http.server import BaseHTTPRequestHandler

        HITS = {}
        _LOCK = threading.Lock()


        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):
                record(self.path)


        def record(path):
            with _LOCK:
                HITS[path] = HITS.get(path, 0) + 1
        """
}

SEEDED_LOCK_ORDER = {
    "repro.webapp.locks": """
        import threading

        LOCK_A = threading.Lock()
        LOCK_B = threading.Lock()


        def forward():
            with LOCK_A:
                with LOCK_B:
                    pass


        def backward():
            with LOCK_B:
                with LOCK_A:
                    pass
        """
}

#: Identical shape, both paths agree on the order.
CLEAN_LOCK_ORDER_TWIN = {
    "repro.webapp.locks": """
        import threading

        LOCK_A = threading.Lock()
        LOCK_B = threading.Lock()


        def forward():
            with LOCK_A:
                with LOCK_B:
                    pass


        def backward():
            with LOCK_A:
                with LOCK_B:
                    pass
        """
}


class TestSeededOracles:
    def test_handler_bug_detected(self, tmp_path):
        findings = lint_tree(tmp_path, SEEDED_HANDLER_BUG)
        assert [f.rule_id for f in findings] == ["CW701"]
        finding = findings[0]
        assert "HITS" in finding.message
        assert "handler" in finding.message
        assert finding.severity == "error"  # web layer

    def test_handler_clean_twin_is_silent(self, tmp_path):
        assert lint_tree(tmp_path, CLEAN_HANDLER_TWIN) == []

    def test_lock_order_pair_detected(self, tmp_path):
        findings = lint_tree(tmp_path, SEEDED_LOCK_ORDER)
        assert [f.rule_id for f in findings] == ["CW704", "CW704"]
        assert {"forward" in f.message or "backward" in f.message for f in findings} == {True}

    def test_lock_order_clean_twin_is_silent(self, tmp_path):
        assert lint_tree(tmp_path, CLEAN_LOCK_ORDER_TWIN) == []


class TestInconsistentGuard:
    def test_bare_minority_write_flagged(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro.webapp.mixed": """
                    import threading

                    LOCK = threading.Lock()
                    CACHE = {}


                    def put_a():
                        with LOCK:
                            CACHE["a"] = 1


                    def put_b():
                        with LOCK:
                            CACHE["b"] = 2


                    def put_c():
                        CACHE["c"] = 3


                    def start():
                        threading.Thread(target=put_a).start()
                        threading.Thread(target=put_b).start()
                        threading.Thread(target=put_c).start()
                    """
            },
        )
        assert [f.rule_id for f in findings] == ["CW702"]
        assert "put_c" in findings[0].message
        assert "_LOCK" in findings[0].message or "LOCK" in findings[0].message


class TestCheckThenAct:
    SOURCE = {
        "repro.webapp.cta": """
            import threading

            SESSIONS = {}


            def touch(key):
                if key not in SESSIONS:
                    SESSIONS[key] = []


            def start():
                threading.Thread(target=touch, args=("k",)).start()
            """
    }

    def test_detected_with_setdefault_fix(self, tmp_path):
        findings = lint_tree(tmp_path, self.SOURCE, select=["CW703"])
        assert [f.rule_id for f in findings] == ["CW703"]
        fix = findings[0].fix
        assert fix is not None
        path = tmp_path / "repro" / "webapp" / "cta.py"
        source = path.read_text()
        edit, = fix.edits
        patched = source[: edit.start] + edit.replacement + source[edit.end :]
        assert "SESSIONS.setdefault(key, [])" in patched
        assert "if key not in SESSIONS" not in patched
        compile(patched, str(path), "exec")  # the rewrite stays valid Python

    def test_cli_fix_applies_the_rewrite(self, tmp_path, capsys):
        # CW703 is a project rule: the per-file re-lint inside --fix cannot
        # see it, so the CLI must seed the fixer from a whole-program run.
        write_tree(tmp_path, self.SOURCE)
        assert main(["--select", "CW703", "--fix", str(tmp_path)]) == 0
        assert "fixed 1 finding(s)" in capsys.readouterr().err
        patched = (tmp_path / "repro" / "webapp" / "cta.py").read_text()
        assert "SESSIONS.setdefault(key, [])" in patched
        assert "if key not in SESSIONS" not in patched
        # idempotent: a second run has nothing left to do
        assert main(["--select", "CW703", "--fix", str(tmp_path)]) == 0
        assert "fixed 0 finding(s)" in capsys.readouterr().err

    def test_silent_under_lock(self, tmp_path):
        guarded = {
            "repro.webapp.cta": """
                import threading

                SESSIONS = {}
                LOCK = threading.Lock()


                def touch(key):
                    with LOCK:
                        if key not in SESSIONS:
                            SESSIONS[key] = []


                def start():
                    threading.Thread(target=touch, args=("k",)).start()
                """
        }
        assert lint_tree(tmp_path, guarded, select=["CW703"]) == []


class TestBlockingUnderLock:
    def test_interprocedural_entry_locks(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro.webapp.slow": """
                    import threading
                    import time

                    LOCK = threading.Lock()


                    def flush():
                        time.sleep(0.1)


                    def worker():
                        with LOCK:
                            flush()


                    def start():
                        threading.Thread(target=worker).start()
                    """
            },
        )
        assert [f.rule_id for f in findings] == ["CW705"]
        assert "time.sleep" in findings[0].message
        assert "flush" in findings[0].message

    def test_silent_off_the_thread_path(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro.webapp.slow": """
                    import threading
                    import time

                    LOCK = threading.Lock()


                    def flush():
                        with LOCK:
                            time.sleep(0.1)
                    """
            },
        )
        assert findings == []  # never reached from a thread domain


class TestSeverityAndSuppression:
    def test_warning_outside_concurrent_layers(self, tmp_path):
        modules = {
            "repro.mining.serve": SEEDED_HANDLER_BUG["repro.web.serve"]
        }
        findings = lint_tree(tmp_path, modules)
        assert [f.rule_id for f in findings] == ["CW701"]
        assert findings[0].severity == "warning"

    def test_pragma_suppresses_with_justification(self, tmp_path):
        modules = {
            "repro.webapp.serve": SEEDED_HANDLER_BUG["repro.web.serve"].replace(
                "HITS[path] = HITS.get(path, 0) + 1",
                "HITS[path] = HITS.get(path, 0) + 1  "
                "# crowdlint: disable=CW701 -- benign last-write-wins counter",
            )
        }
        assert lint_tree(tmp_path, modules) == []


class TestRealTreeStaysClean:
    def test_repo_src_has_no_cw7xx_findings(self):
        findings = LintEngine(select=CW7XX).lint_paths([Path("src")])
        assert findings == []
