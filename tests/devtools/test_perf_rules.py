"""CW5xx — hot-path performance rules."""

from __future__ import annotations

from .conftest import rule_ids


class TestListMembershipInLoop:
    def test_flags_the_classic_quadratic_dedupe(self, lint):
        findings = lint(
            """
            def dedupe(rows):
                out = []
                for row in rows:
                    if row in out:
                        continue
                    out.append(row)
                return out
            """,
            rule="CW501",
        )
        assert rule_ids(findings) == ["CW501"]

    def test_flags_membership_in_comprehension(self, lint):
        findings = lint(
            """
            def keep(rows):
                banned = ["a", "b"]
                return [row for row in rows if row not in banned]
            """,
            rule="CW501",
        )
        assert rule_ids(findings) == ["CW501"]

    def test_set_membership_is_fine(self, lint):
        findings = lint(
            """
            def dedupe(rows):
                seen = set()
                out = []
                for row in rows:
                    if row in seen:
                        continue
                    seen.add(row)
                    out.append(row)
                return out
            """,
            rule="CW501",
        )
        assert findings == []

    def test_membership_outside_a_loop_is_fine(self, lint):
        findings = lint(
            """
            def has(row):
                allowed = [1, 2, 3]
                return row in allowed
            """,
            rule="CW501",
        )
        assert findings == []

    def test_list_rebound_each_iteration_is_fine(self, lint):
        findings = lint(
            """
            def group(rows):
                for row in rows:
                    batch = list(row)
                    if row in batch:
                        pass
            """,
            rule="CW501",
        )
        assert findings == []

    def test_hot_layer_escalates_to_error(self, lint):
        findings = lint(
            """
            def dedupe(rows):
                out = []
                for row in rows:
                    if row in out:
                        continue
                    out.append(row)
                return out
            """,
            rule="CW501",
            module="repro.mining.agg",
        )
        assert [f.severity for f in findings] == ["error"]

    def test_cold_layer_stays_warning(self, lint):
        findings = lint(
            """
            def dedupe(rows):
                out = []
                for row in rows:
                    if row in out:
                        out.append(row)
            """,
            rule="CW501",
            module="repro.report.tables",
        )
        assert [f.severity for f in findings] == ["warning"]


class TestStringConcatInLoop:
    def test_flags_string_accumulation(self, lint):
        findings = lint(
            """
            def render(rows):
                text = ""
                for row in rows:
                    text += str(row)
                return text
            """,
            rule="CW502",
        )
        assert rule_ids(findings) == ["CW502"]

    def test_numeric_accumulation_is_fine(self, lint):
        findings = lint(
            """
            def total(rows):
                acc = 0
                for row in rows:
                    acc += row
                return acc
            """,
            rule="CW502",
        )
        assert findings == []

    def test_concat_outside_a_loop_is_fine(self, lint):
        findings = lint(
            """
            def greet(name):
                text = "hello "
                text += name
                return text
            """,
            rule="CW502",
        )
        assert findings == []


class TestRegexCompileInLoop:
    def test_flags_constant_pattern_in_loop(self, lint):
        findings = lint(
            """
            import re

            def scan(lines):
                for line in lines:
                    rx = re.compile("x+")
                    rx.search(line)
            """,
            rule="CW503",
        )
        assert rule_ids(findings) == ["CW503"]

    def test_dynamic_pattern_is_fine(self, lint):
        findings = lint(
            """
            import re

            def scan(lines, patterns):
                for pattern in patterns:
                    re.compile(pattern)
            """,
            rule="CW503",
        )
        assert findings == []

    def test_module_level_compile_is_fine(self, lint):
        findings = lint(
            """
            import re

            RX = re.compile("x+")
            """,
            rule="CW503",
        )
        assert findings == []


class TestInvariantSortInLoop:
    def test_flags_loop_invariant_sort(self, lint):
        findings = lint(
            """
            def nearest(queries, stations):
                for query in queries:
                    ordered = sorted(stations)
                    yield ordered[0]
            """,
            rule="CW504",
        )
        assert rule_ids(findings) == ["CW504"]

    def test_sorting_a_mutated_list_is_fine(self, lint):
        findings = lint(
            """
            def accumulate(rows):
                acc = []
                for row in rows:
                    acc.append(row)
                    yield sorted(acc)
            """,
            rule="CW504",
        )
        assert findings == []

    def test_loop_dependent_key_is_fine(self, lint):
        findings = lint(
            """
            def rank(queries, stations):
                for query in queries:
                    yield sorted(stations, key=lambda s: s - query)
            """,
            rule="CW504",
        )
        assert findings == []

    def test_comprehension_source_iterable_is_exempt(self, lint):
        findings = lint(
            """
            def pick(traces):
                return {d: traces[d] for d in sorted(traces)[:22]}
            """,
            rule="CW504",
        )
        assert findings == []


class TestTimedItemInHotLoop:
    def test_flags_construction_in_mining_loop(self, lint):
        findings = lint(
            """
            def expand(bins, label):
                out = []
                for b in bins:
                    out.append(TimedItem(b, label))
                return out
            """,
            rule="CW505",
            module="repro.mining.expand",
        )
        assert rule_ids(findings) == ["CW505"]
        assert [f.severity for f in findings] == ["error"]

    def test_flags_construction_in_crowd_comprehension(self, lint):
        findings = lint(
            """
            from repro.sequences import items

            def widen(hits):
                return [items.TimedItem(h.bin, h.label) for h in hits]
            """,
            rule="CW505",
            module="repro.crowd.widen",
        )
        assert rule_ids(findings) == ["CW505"]

    def test_construction_outside_a_loop_is_fine(self, lint):
        findings = lint(
            """
            def probe(bin_index, label):
                return TimedItem(bin_index, label)
            """,
            rule="CW505",
            module="repro.mining.probe",
        )
        assert findings == []

    def test_cold_layers_are_exempt(self, lint):
        findings = lint(
            """
            def load(rows):
                return [TimedItem(b, l) for b, l in rows]
            """,
            rule="CW505",
            module="repro.persistence",
        )
        assert findings == []

    def test_other_calls_in_hot_loops_are_fine(self, lint):
        findings = lint(
            """
            def tally(rows):
                out = []
                for row in rows:
                    out.append(int(row))
                return out
            """,
            rule="CW505",
            module="repro.mining.tally",
        )
        assert findings == []
