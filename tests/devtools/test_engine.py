"""Engine-level behavior: registry, suppression, selection, output, discovery."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools import Finding, LintEngine, all_rules, get_rule, rule_registry
from repro.devtools.cli import main
from repro.devtools.engine import module_name_for


def test_registry_has_every_rule_pack():
    ids = sorted(rule_registry())
    assert ids == [
        # CW1xx: syntactic domain invariants
        "CW101", "CW102", "CW103", "CW104",
        "CW105", "CW106", "CW107", "CW108",
        # CW2xx: determinism
        "CW201", "CW202", "CW203", "CW204",
        # CW3xx: concurrency (the exec.ordered_map contract)
        "CW301", "CW302", "CW303",
        # CW4xx: observability conformance
        "CW401", "CW402", "CW403", "CW404",
        # CW5xx: hot-path performance
        "CW501", "CW502", "CW503", "CW504", "CW505",
        # CW6xx: interprocedural id-domain / units
        "CW601", "CW602", "CW603", "CW604", "CW605",
        # CW7xx: thread-safety (whole-program race detection)
        "CW701", "CW702", "CW703", "CW704", "CW705",
        # CW8xx: exception-flow / resource-lifetime / cache-coherence
        "CW801", "CW802", "CW803", "CW804", "CW805", "CW806",
    ]
    for rule_cls in all_rules():
        assert rule_cls.name and rule_cls.description


def test_get_rule_is_case_insensitive_and_raises_on_unknown():
    assert get_rule("cw104").id == "CW104"
    with pytest.raises(KeyError):
        get_rule("CW999")


def test_syntax_error_becomes_cw100_finding():
    findings = LintEngine().lint_source("def broken(:\n", path="broken.py")
    assert [f.rule_id for f in findings] == ["CW100"]
    assert "syntax error" in findings[0].message


def test_line_suppression_silences_only_that_line(lint):
    source = """\
    def f(a=[]):  # crowdlint: disable=CW104
        pass

    def g(b=[]):
        pass
    """
    findings = lint(source, rule="CW104")
    assert len(findings) == 1
    assert findings[0].line == 4


def test_disable_all_on_line_and_file_level_suppression(lint):
    assert lint("x = datetime.utcnow()  # crowdlint: disable=all\n", rule="CW103") == []
    source = """\
    # crowdlint: disable-file=CW103
    from datetime import datetime
    a = datetime.utcnow()
    b = datetime.utcnow()
    """
    assert lint(source, rule="CW103") == []


def test_pragma_text_inside_strings_is_inert(lint):
    source = '''\
    DOC = """
    # crowdlint: disable-file=CW104
    """

    def f(a=[]):
        pass
    '''
    findings = lint(source, rule="CW104")
    assert [f.rule_id for f in findings] == ["CW104"]


def test_select_and_ignore_filter_rules(lint):
    source = "def f(a=[], ts=datetime.utcnow()): pass\n"
    all_findings = LintEngine().lint_source(source)
    only_104 = LintEngine(select=["CW104"]).lint_source(source)
    without_104 = LintEngine(ignore=["CW104"]).lint_source(source)
    assert {f.rule_id for f in all_findings} == {"CW103", "CW104"}
    assert {f.rule_id for f in only_104} == {"CW104"}
    assert {f.rule_id for f in without_104} == {"CW103"}


def test_findings_sort_stably_and_format(tmp_path):
    finding = Finding("a.py", 3, 7, "CW104", "boom")
    assert finding.format() == "a.py:3:7: CW104 boom"
    assert finding.as_dict()["rule"] == "CW104"
    assert Finding("a.py", 1, 1, "CW101", "x") < finding


def test_module_name_inference(tmp_path):
    pkg = tmp_path / "repro" / "mining"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "gsp.py").write_text("x = 1\n")
    assert module_name_for(pkg / "gsp.py") == "repro.mining.gsp"
    assert module_name_for(pkg / "__init__.py") == "repro.mining"
    loose = tmp_path / "script.py"
    loose.write_text("x = 1\n")
    assert module_name_for(loose) == "script"


def test_cli_json_output_and_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main([str(clean), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload == {"findings": [], "count": 0, "by_rule": {}}

    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f(a=[]):\n    pass\n")
    assert main([str(dirty), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    assert payload["by_rule"] == {"CW104": 1}

    assert main([str(tmp_path / "missing_dir")]) == 2
    # a typo'd rule id must be a usage error, not a silent zero-rule pass
    assert main([str(dirty), "--select", "CW999"]) == 2
    assert main([str(dirty), "--ignore", "CW104,NOPE"]) == 2
    assert main([str(dirty), "--ignore", "cw104"]) == 0


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "CW101" in out and "import-layering" in out


def test_module_entry_point_runs():
    repo_root = Path(__file__).resolve().parents[2]
    result = subprocess.run(
        [sys.executable, "-m", "repro.devtools.lint", "--list-rules"],
        capture_output=True,
        text=True,
        cwd=repo_root,
        env={**os.environ, "PYTHONPATH": str(repo_root / "src")},
    )
    assert result.returncode == 0
    assert "CW108" in result.stdout
