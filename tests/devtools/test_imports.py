"""CW108 import-layering: positive and negative fixtures, plus the layer map."""

from __future__ import annotations

import pytest

from repro.devtools.layers import LAYER_MAP, layer_of, resolve_import


def test_flags_forbidden_absolute_import(lint):
    findings = lint(
        "from repro.web import api\n", rule="CW108", module="repro.mining.gsp"
    )
    assert len(findings) == 1
    assert "'mining' must not import 'repro.web'" in findings[0].message


def test_flags_forbidden_relative_import(lint):
    findings = lint(
        "from ..crowd import CrowdAggregator\n", rule="CW108", module="repro.sequences.sessions"
    )
    assert len(findings) == 1
    assert "'sequences' must not import 'repro.crowd'" in findings[0].message


def test_flags_plain_import_statement(lint):
    findings = lint("import repro.viz\n", rule="CW108", module="repro.geo.grid")
    assert len(findings) == 1


def test_flags_from_root_subpackage_alias(lint):
    findings = lint("from repro import web\n", rule="CW108", module="repro.mining.gsp")
    assert len(findings) == 1


def test_allowed_imports_are_clean(lint):
    source = """\
    from ..sequences import build_all_databases
    from repro.taxonomy import CategoryTree
    from . import base
    import math
    import numpy as np
    """
    assert lint(source, rule="CW108", module="repro.mining.gsp") == []


def test_files_outside_repro_are_exempt(lint):
    source = "from repro.web import api\nfrom repro.mining import gsp\n"
    assert lint(source, rule="CW108", module="tests.test_something") == []
    assert lint(source, rule="CW108", module=None) == []


def test_devtools_is_isolated_in_the_map():
    assert LAYER_MAP["devtools"] == frozenset()
    for layer, allowed in LAYER_MAP.items():
        assert "devtools" not in allowed, f"{layer} may not depend on devtools"


def test_layer_map_is_a_dag():
    state = {}

    def visit(layer):
        if state.get(layer) == "done":
            return
        if state.get(layer) == "visiting":
            pytest.fail(f"cycle through layer {layer!r}")
        state[layer] = "visiting"
        for dep in LAYER_MAP.get(layer, ()):
            assert dep in LAYER_MAP, f"{layer} depends on undeclared layer {dep}"
            visit(dep)
        state[layer] = "done"

    for layer in LAYER_MAP:
        visit(layer)


def test_layer_of():
    assert layer_of("repro.crowd.sync") == "crowd"
    assert layer_of("repro.pipeline") == "pipeline"
    assert layer_of("repro") is None
    assert layer_of("numpy.linalg") is None
    assert layer_of(None) is None


def test_resolve_import():
    assert resolve_import("repro.crowd.sync", "geo", 2, False) == "repro.geo"
    assert resolve_import("repro.crowd.sync", None, 1, False) == "repro.crowd"
    assert resolve_import("repro.crowd", "aggregate", 1, True) == "repro.crowd.aggregate"
    assert resolve_import("repro.crowd.sync", "numpy", 0, False) == "numpy"
    assert resolve_import(None, "thing", 1, False) is None
    assert resolve_import("repro", "x", 3, False) is None
