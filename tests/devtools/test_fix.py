"""The autofix engine: golden rewrites, idempotency, safety."""

from __future__ import annotations

import textwrap

import pytest

from repro.devtools.engine import Edit, Finding, Fix, LintEngine
from repro.devtools.fix import FixResult, apply_fixes, fix_source, unified_diff


def fix(source: str, rule=None, module="repro.web.demo", path="src/repro/web/demo.py"):
    engine = LintEngine(select=[rule] if rule else None)
    result = fix_source(engine, textwrap.dedent(source), path, module)
    assert isinstance(result, FixResult)
    return result


#: (rule, before, after) — one golden pair per fixable rule.
GOLDENS = [
    (
        "CW201",
        """
        import random

        rng = random.Random()
        """,
        """
        import random

        rng = random.Random(0)
        """,
    ),
    (
        "CW201",
        """
        import numpy as np

        rng = np.random.default_rng()
        """,
        """
        import numpy as np

        rng = np.random.default_rng(0)
        """,
    ),
    (
        "CW203",
        """
        def labels(items):
            found = {i.label for i in items}
            return list(found)
        """,
        """
        def labels(items):
            found = {i.label for i in items}
            return list(sorted(found))
        """,
    ),
    (
        "CW103",
        """
        from datetime import datetime, timezone

        def stamp():
            return datetime.utcnow()
        """,
        """
        from datetime import datetime, timezone

        def stamp():
            return datetime.now(timezone.utc)
        """,
    ),
    (
        "CW103",
        """
        from datetime import datetime, timezone

        def when(ts):
            return datetime.fromtimestamp(ts)
        """,
        """
        from datetime import datetime, timezone

        def when(ts):
            return datetime.fromtimestamp(ts, tz=timezone.utc)
        """,
    ),
    (
        "CW106",
        """
        def safe(fn):
            try:
                return fn()
            except:
                return None
        """,
        """
        def safe(fn):
            try:
                return fn()
            except Exception:
                return None
        """,
    ),
    (
        "CW401",
        """
        def f(obs):
            obs.inc("repro_web_hits_count", 1)
        """,
        """
        def f(obs):
            obs.inc("repro_web_hits_total", 1)
        """,
    ),
    (
        "CW402",
        """
        def f(obs):
            obs.inc("repro_mining_hits_total", 1)
        """,
        """
        def f(obs):
            obs.inc("repro_web_hits_total", 1)
        """,
    ),
]


@pytest.mark.parametrize(
    "rule,before,after",
    GOLDENS,
    ids=[f"{rule}-{index}" for index, (rule, _, _) in enumerate(GOLDENS)],
)
def test_golden_rewrite(rule, before, after):
    result = fix(before, rule=rule)
    assert result.source == textwrap.dedent(after)
    assert result.changed


@pytest.mark.parametrize(
    "rule,before,after",
    GOLDENS,
    ids=[f"{rule}-{index}" for index, (rule, _, _) in enumerate(GOLDENS)],
)
def test_fix_is_idempotent(rule, before, after):
    once = fix(before, rule=rule)
    twice = fix(once.source, rule=rule)
    assert twice.source == once.source
    assert twice.applied == 0


def test_clean_source_round_trips_byte_identically():
    source = '"""Module."""\n\n\ndef f(x):\n    return x + 1\n'
    result = fix(source)
    assert result.source == source
    assert not result.changed


def test_all_fixable_rules_fix_in_one_run():
    result = fix(
        """
        from datetime import datetime, timezone
        import random

        def stamp(obs):
            obs.inc("repro_web_stamps_count", 1)
            try:
                rng = random.Random()
                return datetime.utcnow(), rng.random()
            except:
                return None
        """
    )
    assert result.applied == 4
    # The CW103 fix makes the timestamp tz-aware but it is still wall-clock
    # data in a return path — the unfixable CW202 finding correctly survives.
    assert [f.rule_id for f in result.remaining] == ["CW202"]


def test_cw103_fix_requires_timezone_import():
    result = fix(
        """
        from datetime import datetime

        def stamp():
            return datetime.utcnow()
        """,
        rule="CW103",
    )
    # No `timezone` in scope: the finding stays, unfixed, instead of
    # producing a rewrite that fails at import.
    assert not result.changed
    assert [f.rule_id for f in result.remaining] == ["CW103"]


def test_overlapping_fixes_are_not_combined_in_one_pass():
    source = "abcdef"
    findings = [
        Finding("x.py", 1, 1, "T1", "a", fix=Fix(edits=(Edit(0, 4, "AAAA"),))),
        Finding("x.py", 1, 1, "T2", "b", fix=Fix(edits=(Edit(2, 6, "BBBB"),))),
    ]
    patched, applied = apply_fixes(source, findings)
    assert applied == 1
    assert patched == "AAAAef"


def test_out_of_range_edits_are_dropped():
    findings = [
        Finding("x.py", 1, 1, "T1", "a", fix=Fix(edits=(Edit(0, 99, "Z"),))),
    ]
    patched, applied = apply_fixes("short", findings)
    assert applied == 0
    assert patched == "short"


def test_broken_rewrite_never_escapes():
    class Saboteur:
        """Mimics the engine but attaches a syntax-breaking fix."""

        def lint_source(self, source, path, module):
            if "(" not in source:
                return []
            return [
                Finding(
                    path, 1, 1, "T1", "bad",
                    fix=Fix(edits=(Edit(source.index("("), source.index("(") + 1, "((",),)),
                )
            ]

    result = fix_source(Saboteur(), "x = f(1)\n", "x.py", "")
    assert result.source == "x = f(1)\n"
    assert result.applied == 0


def test_unified_diff_renders_and_is_empty_when_clean():
    assert unified_diff("same\n", "same\n", "x.py") == ""
    diff = unified_diff("a\n", "b\n", "x.py")
    assert "--- a/x.py" in diff and "+++ b/x.py" in diff
    assert "-a" in diff and "+b" in diff
