"""The real tree must be lint-clean, and seeded domain bugs must be caught.

These two tests are the subsystem's acceptance criteria: the first keeps the
repo honest (CI runs the same command), the second keeps the *linter* honest —
if a rule regresses into a no-op, the seeded-bug fixture fails.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.devtools import LintEngine
from repro.devtools.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_and_tests_trees_are_lint_clean():
    findings = LintEngine().lint_paths([REPO_ROOT / "src", REPO_ROOT / "tests"])
    assert findings == [], "\n".join(f.format() for f in findings)


def test_cli_exits_zero_on_the_repo():
    assert main([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]) == 0


def test_cli_exits_nonzero_on_seeded_domain_bugs(tmp_path, capsys):
    """One seeded bug per rule family; a pack regressing to a no-op fails here."""
    pkg = tmp_path / "repro" / "mining"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "seeded.py").write_text(
        textwrap.dedent(
            """\
            import random
            import threading
            from datetime import datetime

            from repro.web import api
            from repro.exec import ordered_map

            _LOCK = threading.Lock()


            def place(venue):
                p = GeoPoint(venue.lon, venue.lat)
                stamped = datetime.now()
                return p, stamped


            def shuffled(venues):
                return random.sample(venues, len(venues))


            def fanout(items):
                return ordered_map(lambda x: x + 1, items)


            def count(obs, venues):
                obs.inc("repro_mining_venues_counted", len(venues))
            """
        )
    )
    assert main(["--no-cache", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "CW101" in out  # CW1xx: lat/lon swap
    assert "CW103" in out  # CW1xx: naive datetime
    assert "CW108" in out  # CW1xx: forbidden mining -> web import
    assert "CW201" in out  # CW2xx: unseeded global RNG
    assert "CW301" in out  # CW3xx: lambda shipped to ordered_map
    assert "CW302" in out  # CW3xx: module-level lock
    assert "CW401" in out  # CW4xx: metric name missing its unit segment
