"""Unit tests for the v4 thread analysis: facts, roots, domains, locksets.

The extraction level is tested straight off ``ast.parse``; the whole-program
level through :class:`ProjectAnalysis` over small on-disk trees, exactly the
way the engine builds it.
"""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path
from typing import Dict

from repro.devtools.callgraph import ProjectAnalysis
from repro.devtools.engine import iter_python_files, module_name_for
from repro.devtools.threads import ThreadAnalysis, extract_thread_facts


def facts_of(source: str) -> Dict[str, object]:
    return extract_thread_facts(ast.parse(textwrap.dedent(source)))


def write_tree(root: Path, modules: Dict[str, str]) -> None:
    root.mkdir(parents=True, exist_ok=True)
    for dotted, source in modules.items():
        parts = dotted.split(".")
        directory = root
        for part in parts[:-1]:
            directory = directory / part
            directory.mkdir(exist_ok=True)
            init = directory / "__init__.py"
            if not init.exists():
                init.write_text("")
        (directory / f"{parts[-1]}.py").write_text(textwrap.dedent(source))


def build_project(root: Path, modules: Dict[str, str]) -> ProjectAnalysis:
    write_tree(root, modules)
    files = []
    for file_path in iter_python_files([root]):
        files.append(
            (str(file_path), file_path.read_text(), module_name_for(file_path),
             file_path.name == "__init__.py")
        )
    return ProjectAnalysis.build(files)


def analyze(root: Path, modules: Dict[str, str]) -> ThreadAnalysis:
    return build_project(root, modules).threads()


class TestExtraction:
    def test_module_inventory(self):
        facts = facts_of(
            """
            import threading

            CACHE = {}
            COUNTS = dict()
            NAME = "x"
            LOCK = threading.Lock()
            """
        )
        assert set(facts["mutable_globals"]) == {"CACHE", "COUNTS"}
        assert facts["locks"] == ["LOCK"]

    def test_handler_class_discovery_including_nested(self):
        facts = facts_of(
            """
            from http.server import BaseHTTPRequestHandler


            class Plain(BaseHTTPRequestHandler):
                def do_GET(self):
                    pass


            class Derived(Plain):
                pass


            def make_server():
                class Inner(BaseHTTPRequestHandler):
                    def do_GET(self):
                        pass
                return Inner
            """
        )
        assert facts["handler_classes"] == ["Derived", "Plain", "make_server.Inner"]
        assert facts["functions"]["make_server.Inner.do_GET"]["class"] == "make_server.Inner"

    def test_with_lock_regions_and_writes(self):
        facts = facts_of(
            """
            import threading

            LOCK = threading.Lock()
            CACHE = {}


            def guarded(key):
                with LOCK:
                    CACHE[key] = 1
                CACHE[key] = 2
            """
        )
        writes = facts["functions"]["guarded"]["writes"]
        assert [(w["sym"], w["held"]) for w in writes] == [
            ("g:CACHE", ["g:LOCK"]),
            ("g:CACHE", []),
        ]
        acquires = facts["functions"]["guarded"]["acquires"]
        assert [(a["lock"], a["held"]) for a in acquires] == [("g:LOCK", [])]

    def test_acquire_release_toggle(self):
        facts = facts_of(
            """
            import threading

            LOCK = threading.Lock()
            CACHE = {}


            def manual(key):
                LOCK.acquire()
                CACHE[key] = 1
                LOCK.release()
                CACHE[key] = 2
            """
        )
        writes = facts["functions"]["manual"]["writes"]
        assert [w["held"] for w in writes] == [["g:LOCK"], []]

    def test_instance_locks_chase_bases(self):
        facts = facts_of(
            """
            import threading


            class Base:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}


            class Derived(Base):
                def put(self, key):
                    with self._lock:
                        self._items[key] = 1
            """
        )
        writes = facts["functions"]["Derived.put"]["writes"]
        assert writes == [
            {"sym": "a:Base:_items", "line": 14, "col": 12, "held": ["a:Base:_lock"]}
        ]

    def test_global_rebind_and_mutating_methods(self):
        facts = facts_of(
            """
            ITEMS = []
            CURRENT = None


            def swap(value):
                global CURRENT
                CURRENT = value
                ITEMS.append(value)
                local = []
                local.append(value)
            """
        )
        syms = [w["sym"] for w in facts["functions"]["swap"]["writes"]]
        assert syms == ["g:CURRENT", "g:ITEMS"]

    def test_spawn_records(self):
        facts = facts_of(
            """
            import threading
            from concurrent.futures import ThreadPoolExecutor

            from repro.exec import ordered_map


            def work(x):
                return x


            def fan_out(items):
                threading.Thread(target=work, daemon=True).start()
                with ThreadPoolExecutor(max_workers=2) as pool:
                    pool.submit(work, 1)
                    pool.map(work, items)
                return ordered_map(work, items)
            """
        )
        spawns = facts["functions"]["fan_out"]["spawns"]
        assert [(s["domain"], s["target"]) for s in spawns] == [
            ("thread", ["name", "work"]),
            ("thread", ["name", "work"]),
            ("thread", ["name", "work"]),
            ("pool", ["name", "work"]),
        ]

    def test_check_then_act_with_and_without_fix(self):
        facts = facts_of(
            """
            CACHE = {}


            def fill(key):
                if key not in CACHE:
                    CACHE[key] = []


            def bump(key):
                if key in CACHE:
                    CACHE[key] += 1
            """
        )
        fill_cta, = facts["functions"]["fill"]["cta"]
        assert fill_cta["sym"] == "g:CACHE"
        assert fill_cta["fix"]["text"] == "CACHE.setdefault(key, [])"
        bump_cta, = facts["functions"]["bump"]["cta"]
        assert bump_cta["fix"] is None

    def test_cta_fix_refused_for_effectful_values(self):
        facts = facts_of(
            """
            CACHE = {}


            def fill(key):
                if key not in CACHE:
                    CACHE[key] = expensive(key)
            """
        )
        cta, = facts["functions"]["fill"]["cta"]
        assert cta["fix"] is None  # eager evaluation would change behaviour

    def test_blocking_records_held(self):
        facts = facts_of(
            """
            import threading
            import time

            LOCK = threading.Lock()


            def slow():
                with LOCK:
                    time.sleep(0.1)
                time.sleep(0.2)
            """
        )
        blocking = facts["functions"]["slow"]["blocking"]
        assert [(b["what"], b["held"]) for b in blocking] == [
            ("time.sleep", ["g:LOCK"]),
            ("time.sleep", []),
        ]


HANDLER_TREE = {
    "repro.webapp.serve": """
        from http.server import BaseHTTPRequestHandler

        HITS = {}


        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):
                record(self.path)


        def record(path):
            HITS[path] = HITS.get(path, 0) + 1
        """
}


class TestAnalysis:
    def test_handler_roots_and_domains(self, tmp_path):
        analysis = analyze(tmp_path, HANDLER_TREE)
        roots = {(node[1], domain) for node, domain, _via in analysis.roots}
        assert ("Handler.do_GET", "handler") in roots
        record_node = ("repro.webapp.serve", "record")
        assert analysis.domains[record_node] == {"handler"}

    def test_shared_symbol_and_missing_guard(self, tmp_path):
        analysis = analyze(tmp_path, HANDLER_TREE)
        info = analysis.shared["repro.webapp.serve::g:HITS"]
        assert info["guard"] is None
        rules = [r["rule"] for r in analysis.records_for("repro.webapp.serve")]
        assert rules == ["CW701"]

    def test_entry_lock_fixpoint_reaches_callees(self, tmp_path):
        analysis = analyze(
            tmp_path,
            {
                "repro.webapp.locked": """
                    import threading

                    LOCK = threading.Lock()
                    CACHE = {}


                    def store(key):
                        CACHE[key] = 1


                    def worker(key):
                        with LOCK:
                            store(key)


                    def start():
                        threading.Thread(target=worker, args=(1,)).start()
                    """
            },
        )
        store_node = ("repro.webapp.locked", "store")
        assert analysis.entry_locks[store_node] == frozenset({"g:LOCK"})
        # Every write is effectively guarded: nothing to report.
        assert analysis.records_for("repro.webapp.locked") == []
        assert analysis.shared["repro.webapp.locked::g:CACHE"]["guard"] == "g:LOCK"

    def test_pool_domain_never_races(self, tmp_path):
        analysis = analyze(
            tmp_path,
            {
                "repro.webapp.pooled": """
                    from repro.exec import ordered_map

                    TOTALS = {}


                    def work(item):
                        TOTALS[item] = item
                        return item


                    def run(items):
                        return ordered_map(work, items)
                    """
            },
        )
        # Process workers have their own address space — not shared state.
        assert analysis.shared == {}
        assert analysis.records_for("repro.webapp.pooled") == []

    def test_constructor_writes_exempt(self, tmp_path):
        analysis = analyze(
            tmp_path,
            {
                "repro.webapp.ctor": """
                    import threading


                    class Store:
                        def __init__(self):
                            self.items = {}

                        def start(self):
                            threading.Thread(target=self.run).start()

                        def run(self):
                            self.items["k"] = 1
                    """
            },
        )
        shared = analysis.shared.get("repro.webapp.ctor::a:Store:items")
        assert shared is not None
        functions = [w["node"][1] for w in shared["writes"]]
        assert functions == ["Store.run"]  # __init__ happens-before the escape

    def test_dep_digest_tracks_findings(self, tmp_path):
        clean = dict(HANDLER_TREE)
        clean["repro.webapp.serve"] = clean["repro.webapp.serve"].replace(
            "HITS[path] = HITS.get(path, 0) + 1", "return HITS.get(path, 0)"
        )
        buggy = analyze(tmp_path / "a", HANDLER_TREE)
        fixed = analyze(tmp_path / "b", clean)
        assert buggy.dep_digest("repro.webapp.serve") != fixed.dep_digest(
            "repro.webapp.serve"
        )

    def test_render_lists_roots_and_shared_state(self, tmp_path):
        rendered = analyze(tmp_path, HANDLER_TREE).render()
        assert "thread roots (" in rendered
        assert "[handler] repro.webapp.serve:Handler.do_GET" in rendered
        assert "repro.webapp.serve.HITS" in rendered
        assert "guarded_by=<none>" in rendered

    def test_worker_rehydration_rebuilds_lazily(self, tmp_path):
        project = build_project(tmp_path, HANDLER_TREE)
        clone = ProjectAnalysis.from_dict(project.to_dict())
        assert clone.thread_records("repro.webapp.serve") == project.thread_records(
            "repro.webapp.serve"
        )
        assert clone.dep_key("repro.webapp.serve") == project.dep_key(
            "repro.webapp.serve"
        )
