"""The docs↔code sync gates (``repro.devtools.docscheck``)."""

from __future__ import annotations

from pathlib import Path

from repro.devtools.docscheck import (
    CATALOG_END,
    CATALOG_START,
    DOC_FILES,
    check_catalog,
    check_docs,
    check_module_registry,
    generate_catalog,
    main,
    write_catalog,
)
from repro.devtools.engine import all_rules
from repro.devtools.layers import LAYER_MAP

REPO_ROOT = Path(__file__).resolve().parents[2]


def _docs_tree(tmp_path: Path, text: str = "repro.geo is documented") -> Path:
    (tmp_path / "docs").mkdir()
    for rel in DOC_FILES:
        (tmp_path / rel).write_text(text, encoding="utf-8")
    return tmp_path


class TestRealRepo:
    def test_this_repository_is_in_sync(self):
        """Every declared layer is mentioned in the docs — the CI gate."""
        assert check_docs(REPO_ROOT) == []

    def test_main_exits_zero_here(self, capsys):
        assert main(["--root", str(REPO_ROOT)]) == 0
        out = capsys.readouterr().out
        assert f"{len(LAYER_MAP)} layers covered" in out

    def test_rule_catalog_is_current(self):
        """docs/devtools.md's generated table matches the live registry."""
        assert check_catalog(REPO_ROOT) == []

    def test_module_registry_is_complete(self):
        """Every devtools module on disk is declared in DEVTOOLS_MODULES."""
        assert check_module_registry(REPO_ROOT) == []


class TestFailurePaths:
    def test_undocumented_layer_is_flagged(self, tmp_path):
        root = _docs_tree(tmp_path)
        problems = check_docs(root, layers=["geo", "zzz"])
        assert len(problems) == 1
        assert "'zzz'" in problems[0]
        assert "repro.zzz" in problems[0]

    def test_missing_doc_file_is_flagged(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / DOC_FILES[0]).write_text("repro.geo", encoding="utf-8")
        problems = check_docs(tmp_path, layers=["geo"])
        assert problems == [
            f"missing documentation file: {rel}" for rel in DOC_FILES[1:]
        ]

    def test_substring_layer_names_do_not_mask_each_other(self, tmp_path):
        # "repro.data" must not satisfy a hypothetical "repro.data_extra".
        root = _docs_tree(tmp_path, text="only repro.data here")
        problems = check_docs(root, layers=["data", "data_extra"])
        assert len(problems) == 1 and "'data_extra'" in problems[0]

    def test_main_exits_nonzero_on_problems(self, tmp_path, capsys):
        (tmp_path / "docs").mkdir()
        assert main(["--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "problem(s) found" in out


class TestRuleCatalog:
    def _devtools_doc(self, tmp_path: Path, body: str) -> Path:
        (tmp_path / "docs").mkdir(exist_ok=True)
        (tmp_path / "docs" / "devtools.md").write_text(body, encoding="utf-8")
        return tmp_path

    def test_generated_catalog_covers_every_rule(self):
        catalog = generate_catalog()
        for rule in all_rules():
            assert f"| {rule.id} |" in catalog
            assert f"`{rule.name}`" in catalog

    def test_stale_catalog_is_flagged(self, tmp_path):
        root = self._devtools_doc(
            tmp_path, f"{CATALOG_START}\n| old table |\n{CATALOG_END}\n"
        )
        problems = check_catalog(root)
        assert len(problems) == 1 and "stale" in problems[0]

    def test_missing_markers_are_flagged(self, tmp_path):
        root = self._devtools_doc(tmp_path, "# no markers here\n")
        problems = check_catalog(root)
        assert len(problems) == 1 and "markers" in problems[0]

    def test_write_catalog_round_trips_to_current(self, tmp_path):
        root = self._devtools_doc(
            tmp_path, f"intro\n\n{CATALOG_START}\nstale\n{CATALOG_END}\n\noutro\n"
        )
        assert write_catalog(root) is True
        assert check_catalog(root) == []
        assert write_catalog(root) is False  # already current
        text = (root / "docs" / "devtools.md").read_text(encoding="utf-8")
        assert text.startswith("intro") and text.rstrip().endswith("outro")


class TestModuleRegistry:
    def test_undeclared_module_is_flagged(self, tmp_path):
        package = tmp_path / "src" / "repro" / "devtools"
        package.mkdir(parents=True)
        (package / "__init__.py").write_text("")
        (package / "rogue.py").write_text("")
        problems = check_module_registry(tmp_path)
        assert any("'rogue'" in problem for problem in problems)
