"""The docs↔layer-map sync gate (``repro.devtools.docscheck``)."""

from __future__ import annotations

from pathlib import Path

from repro.devtools.docscheck import DOC_FILES, check_docs, main
from repro.devtools.layers import LAYER_MAP

REPO_ROOT = Path(__file__).resolve().parents[2]


def _docs_tree(tmp_path: Path, text: str = "repro.geo is documented") -> Path:
    (tmp_path / "docs").mkdir()
    for rel in DOC_FILES:
        (tmp_path / rel).write_text(text, encoding="utf-8")
    return tmp_path


class TestRealRepo:
    def test_this_repository_is_in_sync(self):
        """Every declared layer is mentioned in the docs — the CI gate."""
        assert check_docs(REPO_ROOT) == []

    def test_main_exits_zero_here(self, capsys):
        assert main(["--root", str(REPO_ROOT)]) == 0
        out = capsys.readouterr().out
        assert f"all {len(LAYER_MAP)} layers" in out


class TestFailurePaths:
    def test_undocumented_layer_is_flagged(self, tmp_path):
        root = _docs_tree(tmp_path)
        problems = check_docs(root, layers=["geo", "zzz"])
        assert len(problems) == 1
        assert "'zzz'" in problems[0]
        assert "repro.zzz" in problems[0]

    def test_missing_doc_file_is_flagged(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / DOC_FILES[0]).write_text("repro.geo", encoding="utf-8")
        problems = check_docs(tmp_path, layers=["geo"])
        assert problems == [f"missing documentation file: {DOC_FILES[1]}"]

    def test_substring_layer_names_do_not_mask_each_other(self, tmp_path):
        # "repro.data" must not satisfy a hypothetical "repro.data_extra".
        root = _docs_tree(tmp_path, text="only repro.data here")
        problems = check_docs(root, layers=["data", "data_extra"])
        assert len(problems) == 1 and "'data_extra'" in problems[0]

    def test_main_exits_nonzero_on_problems(self, tmp_path, capsys):
        (tmp_path / "docs").mkdir()
        assert main(["--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "problem(s) found" in out
