"""CW4xx — the observability-conformance pack."""

from __future__ import annotations

from .conftest import rule_ids

MODULE = "repro.web.server"


class TestMetricNameGrammar:
    def test_flags_unknown_unit_with_normalizing_fix(self, lint):
        findings = lint(
            'def f(obs):\n    obs.inc("repro_web_hits_count", 1)\n',
            rule="CW401",
            module=MODULE,
        )
        assert rule_ids(findings) == ["CW401"]
        assert findings[0].fix is not None
        assert "repro_web_hits_total" in findings[0].fix.edits[0].replacement

    def test_flags_missing_repro_prefix(self, lint):
        findings = lint(
            'def f(obs):\n    obs.observe("web_latency_s", 0.1)\n',
            rule="CW401",
            module=MODULE,
        )
        assert rule_ids(findings) == ["CW401"]

    def test_flags_uppercase_segments(self, lint):
        findings = lint(
            'def f(obs):\n    obs.inc("repro_web_Hits_total", 1)\n',
            rule="CW401",
            module=MODULE,
        )
        assert rule_ids(findings) == ["CW401"]

    def test_valid_names_are_clean(self, lint):
        findings = lint(
            """
            def f(obs):
                obs.inc("repro_web_requests_total", 1)
                obs.observe("repro_web_render_latency_s", 0.1)
                obs.set_gauge("repro_web_queue_size", 4)
            """,
            rule="CW401",
            module=MODULE,
        )
        assert findings == []

    def test_dynamic_names_are_not_flagged(self, lint):
        findings = lint(
            'def f(obs, name):\n    obs.inc(name, 1)\n',
            rule="CW401",
            module=MODULE,
        )
        assert findings == []

    def test_non_repro_files_are_exempt(self, lint):
        findings = lint(
            'def f(obs):\n    obs.inc("a", 1)\n',
            rule="CW401",
            module="tests.obs.test_runtime",
        )
        assert findings == []


class TestMetricLayerMismatch:
    def test_flags_wrong_layer_segment_with_fix(self, lint):
        findings = lint(
            'def f(obs):\n    obs.inc("repro_mining_requests_total", 1)\n',
            rule="CW402",
            module=MODULE,
        )
        assert rule_ids(findings) == ["CW402"]
        assert "repro_web_requests_total" in findings[0].fix.edits[0].replacement

    def test_flags_undeclared_layer_segment(self, lint):
        findings = lint(
            'def f(obs):\n    obs.inc("repro_nosuch_requests_total", 1)\n',
            rule="CW402",
            module=MODULE,
        )
        assert rule_ids(findings) == ["CW402"]

    def test_matching_layer_is_clean(self, lint):
        findings = lint(
            'def f(obs):\n    obs.inc("repro_web_requests_total", 1)\n',
            rule="CW402",
            module=MODULE,
        )
        assert findings == []

    def test_malformed_name_is_cw401_territory(self, lint):
        findings = lint(
            'def f(obs):\n    obs.inc("hits", 1)\n',
            rule="CW402",
            module=MODULE,
        )
        assert findings == []


class TestUnbalancedSpan:
    def test_flags_discarded_span(self, lint):
        findings = lint(
            'def f(obs):\n    obs.span("region")\n',
            rule="CW403",
            module=MODULE,
        )
        assert rule_ids(findings) == ["CW403"]

    def test_flags_assigned_never_entered_span(self, lint):
        findings = lint(
            """
            def f(obs):
                s = obs.span("region")
                do_work()
            """,
            rule="CW403",
            module=MODULE,
        )
        assert rule_ids(findings) == ["CW403"]

    def test_with_entered_span_is_clean(self, lint):
        findings = lint(
            """
            def f(obs):
                with obs.span("region"):
                    do_work()
            """,
            rule="CW403",
            module=MODULE,
        )
        assert findings == []

    def test_assigned_then_entered_span_is_clean(self, lint):
        findings = lint(
            """
            def f(obs):
                s = obs.span("region")
                with s:
                    do_work()
            """,
            rule="CW403",
            module=MODULE,
        )
        assert findings == []

    def test_returned_span_is_clean(self, lint):
        findings = lint(
            """
            def f(obs):
                s = obs.span("region")
                return s
            """,
            rule="CW403",
            module=MODULE,
        )
        assert findings == []


class TestUnguardedInstrumentation:
    def test_flags_registry_bypass(self, lint):
        findings = lint(
            'def f(obs):\n    obs.registry.inc("repro_web_hits_total", 1)\n',
            rule="CW404",
            module=MODULE,
        )
        assert rule_ids(findings) == ["CW404"]

    def test_flags_tracer_bypass(self, lint):
        findings = lint(
            'def f(obs):\n    with obs.tracer.span("region"):\n        pass\n',
            rule="CW404",
            module=MODULE,
        )
        assert rule_ids(findings) == ["CW404"]

    def test_guarded_observer_calls_are_clean(self, lint):
        findings = lint(
            """
            def f(obs):
                obs.inc("repro_web_hits_total", 1)
                with obs.span("region"):
                    pass
            """,
            rule="CW404",
            module=MODULE,
        )
        assert findings == []

    def test_obs_layer_itself_is_exempt(self, lint):
        findings = lint(
            'def f(self):\n    self.registry.inc("repro_obs_events_total", 1)\n',
            rule="CW404",
            module="repro.obs.runtime",
        )
        assert findings == []

    def test_reads_are_not_mutations(self, lint):
        findings = lint(
            "def f(obs):\n    return obs.registry.snapshot()\n",
            rule="CW404",
            module=MODULE,
        )
        assert findings == []
