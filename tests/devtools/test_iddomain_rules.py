"""CW6xx — interprocedural id-domain/units rules: oracle and parity tests.

The seeded-bug fixtures are the acceptance oracle for the whole-program
layer: a cross-module id-domain bug routed through one pass-through
intermediary and a cross-call lat/lon swap must both be detected, and their
clean twins — identical shape, correct domains — must produce zero findings.
"""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import Dict, List

from repro.devtools import Finding, LintEngine
from repro.devtools.cache import LintCache
from repro.devtools.engine import LintStats


def write_tree(root: Path, modules: Dict[str, str]) -> None:
    for dotted, source in modules.items():
        parts = dotted.split(".")
        directory = root
        for part in parts[:-1]:
            directory = directory / part
            directory.mkdir(exist_ok=True)
            init = directory / "__init__.py"
            if not init.exists():
                init.write_text("")
        (directory / f"{parts[-1]}.py").write_text(textwrap.dedent(source))


def lint_tree(root: Path, modules: Dict[str, str], **kwargs) -> List[Finding]:
    write_tree(root, modules)
    return LintEngine(**kwargs).lint_paths([root])


SEEDED_ID_BUG = {
    "repro.mining.lookup": """
        from repro.mining.relay import relay


        def lookup(user_id):
            return relay(user_id)
        """,
    "repro.mining.relay": """
        from repro.mining.store import store


        def relay(value):
            return store(value)
        """,
    "repro.mining.store": """
        def store(microcell_id):
            return microcell_id
        """,
}

#: Identical call shape, but the value really is a microcell id.
CLEAN_ID_TWIN = {
    key: source.replace("user_id", "microcell_id")
    for key, source in SEEDED_ID_BUG.items()
}

SEEDED_LATLON_SWAP = {
    "repro.mining.geo": """
        def project(lat, lon):
            return lat + lon
        """,
    "repro.mining.plot": """
        from repro.mining.geo import project


        def place(venue):
            return project(venue.lon, venue.lat)
        """,
}

CLEAN_LATLON_TWIN = {
    "repro.mining.geo": SEEDED_LATLON_SWAP["repro.mining.geo"],
    "repro.mining.plot": """
        from repro.mining.geo import project


        def place(venue):
            return project(venue.lat, venue.lon)
        """,
}


class TestOracle:
    def test_seeded_cross_module_id_bug_is_detected(self, tmp_path):
        findings = lint_tree(tmp_path, SEEDED_ID_BUG)
        assert [f.rule_id for f in findings] == ["CW601"]
        (finding,) = findings
        assert "user id" in finding.message
        assert "microcell id" in finding.message
        assert finding.path.endswith("lookup.py")
        assert finding.severity == "error"

    def test_clean_id_twin_has_zero_findings(self, tmp_path):
        assert lint_tree(tmp_path, CLEAN_ID_TWIN) == []

    def test_cross_call_latlon_swap_is_detected(self, tmp_path):
        findings = lint_tree(tmp_path, SEEDED_LATLON_SWAP)
        assert {f.rule_id for f in findings} == {"CW602"}
        assert len(findings) == 2  # both arguments land on the wrong axis
        assert all(f.path.endswith("plot.py") for f in findings)

    def test_clean_latlon_twin_has_zero_findings(self, tmp_path):
        assert lint_tree(tmp_path, CLEAN_LATLON_TWIN) == []


class TestUnitMismatch:
    def test_degrees_into_meters_parameter(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro.mining.dist": """
                    def widen(radius_m):
                        return radius_m * 2
                    """,
                "repro.mining.use": """
                    from repro.mining.dist import widen


                    def run(bearing_deg):
                        return widen(bearing_deg)
                    """,
            },
            select=["CW603"],
        )
        assert [f.rule_id for f in findings] == ["CW603"]
        assert "degrees" in findings[0].message

    def test_naive_datetime_into_aware_parameter(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro.mining.window": """
                    def clamp(start_utc):
                        return start_utc
                    """,
                "repro.mining.use": """
                    from repro.mining.window import clamp


                    def run(stamp_naive):
                        return clamp(stamp_naive)
                    """,
            },
            select=["CW603"],
        )
        assert [f.rule_id for f in findings] == ["CW603"]

    def test_matching_units_are_silent(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro.mining.dist": """
                    def widen(radius_m):
                        return radius_m * 2
                    """,
                "repro.mining.use": """
                    from repro.mining.dist import widen


                    def run(spacing_m):
                        return widen(spacing_m)
                    """,
            },
            select=["CW603"],
        )
        assert findings == []


class TestDeadExports:
    def test_unreferenced_export_is_flagged(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro.mining.api": """
                    __all__ = ["used", "orphan"]


                    def used():
                        return 1


                    def orphan():
                        return 2
                    """,
                "repro.mining.client": """
                    from repro.mining.api import used


                    def go():
                        return used()
                    """,
            },
            select=["CW604"],
        )
        assert [f.rule_id for f in findings] == ["CW604"]
        assert "orphan" in findings[0].message

    def test_pragma_suppresses_intentional_surface(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro.mining.api": """
                    # crowdlint: disable-file=CW604 -- public surface for notebooks
                    __all__ = ["orphan"]


                    def orphan():
                        return 2
                    """,
            },
            select=["CW604"],
        )
        assert findings == []


class TestMixedContainerKeys:
    def test_mixed_id_domains_in_one_map(self, lint):
        findings = lint(
            """
            def fuse(counts, user_id, cell_id):
                counts[user_id] = 1
                counts[cell_id] = 2
            """,
            rule="CW605",
        )
        assert [f.rule_id for f in findings] == ["CW605"]

    def test_consistent_keys_are_silent(self, lint):
        findings = lint(
            """
            def tally(counts, user_id, other_user_id):
                counts[user_id] = 1
                counts[other_user_id] = 2
            """,
            rule="CW605",
        )
        assert findings == []

    def test_separate_functions_do_not_mix(self, lint):
        findings = lint(
            """
            def by_user(counts, user_id):
                counts[user_id] = 1

            def by_cell(counts, cell_id):
                counts[cell_id] = 2
            """,
            rule="CW605",
        )
        assert findings == []


class TestProjectRulesWithoutProject:
    def test_cross_call_rules_noop_on_lint_source(self, lint):
        # lint_source has no project; CW601-604 must stay silent, not crash.
        findings = lint(
            """
            def lookup(user_id):
                return user_id
            """,
            rule="CW601",
        )
        assert findings == []


class TestWarmRatchet:
    """The dep-key acceptance criterion: a warm run re-analyzes exactly the
    files whose content or call-graph dependencies changed."""

    MODULES = {
        "repro.mining.caller": """
            from repro.mining.middle import relay


            def go(token):
                return relay(token)
            """,
        "repro.mining.middle": """
            from repro.mining.leaf import store


            def relay(value):
                return store(value)
            """,
        "repro.mining.leaf": """
            def store(slot):
                return slot
            """,
        "repro.mining.bystander": """
            def quiet():
                return 0
            """,
    }

    def test_dependents_reanalyze_when_a_callee_signature_changes(self, tmp_path):
        root = tmp_path / "tree"
        root.mkdir()
        write_tree(root, self.MODULES)
        cache = LintCache(root=tmp_path / "cache")

        engine = LintEngine()
        assert engine.lint_paths([root], cache=cache) == []
        cold = engine.last_stats
        assert isinstance(cold, LintStats)
        assert cold.cache_hits == 0
        assert cold.analyzed == cold.files

        engine = LintEngine()
        assert engine.lint_paths([root], cache=cache) == []
        warm = engine.last_stats
        assert warm.analyzed == 0
        assert warm.cache_hits == warm.files
        assert warm.summaries_cached == warm.files

        # Rename leaf's parameter: its signature changes, so middle and
        # caller (whose dep-keys embed it) must re-analyze — bystander and
        # the package __init__ files must not.
        write_tree(
            root,
            {
                "repro.mining.leaf": """
                    def store(microcell_id):
                        return microcell_id
                    """
            },
        )
        engine = LintEngine()
        findings = engine.lint_paths([root], cache=cache)
        ratchet = engine.last_stats
        assert ratchet.analyzed == 3  # leaf + middle + caller
        assert ratchet.cache_hits == ratchet.files - 3
        # And the cross-module check now sees through both hops: nothing is
        # flagged because `token`/`value` carry no conflicting seed...
        assert findings == []

        # ...but a caller that passes a *seeded* wrong id does get caught.
        write_tree(
            root,
            {
                "repro.mining.caller": """
                    from repro.mining.middle import relay


                    def go(user_id):
                        return relay(user_id)
                    """
            },
        )
        engine = LintEngine()
        findings = engine.lint_paths([root], cache=cache)
        assert [f.rule_id for f in findings] == ["CW601"]
