"""SARIF 2.1.0 output."""

from __future__ import annotations

import json
import textwrap

from repro.devtools.engine import LintEngine, all_rules
from repro.devtools.sarif import sarif_json, sarif_payload


def findings_for(source: str, module="repro.web.demo"):
    return LintEngine().lint_source(
        textwrap.dedent(source), "src/repro/web/demo.py", module
    )


def test_payload_shape_and_rule_catalog():
    payload = sarif_payload([])
    assert payload["version"] == "2.1.0"
    (run,) = payload["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "crowdweb-lint"
    assert [rule["id"] for rule in driver["rules"]] == sorted(
        rule.id for rule in all_rules()
    )
    assert run["results"] == []


def test_results_carry_location_and_rule_index():
    findings = findings_for(
        """
        from datetime import datetime

        def stamp():
            return datetime.now()
        """
    )
    payload = sarif_payload(findings)
    (run,) = payload["runs"]
    results = run["results"]
    assert len(results) == len(findings) > 0
    rules = run["tool"]["driver"]["rules"]
    for result, finding in zip(results, findings):
        assert result["ruleId"] == finding.rule_id
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/web/demo.py"
        assert location["region"]["startLine"] == finding.line
        assert rules[result["ruleIndex"]]["id"] == finding.rule_id


def test_fixable_findings_are_marked():
    findings = findings_for(
        'def f(obs):\n    obs.inc("repro_web_hits_count", 1)\n'
    )
    fixable = [f for f in findings if f.fix is not None]
    assert fixable
    payload = sarif_payload(findings)
    marked = [
        result
        for result in payload["runs"][0]["results"]
        if result.get("properties", {}).get("fixable")
    ]
    assert len(marked) == len(fixable)


def test_sarif_json_round_trips():
    text = sarif_json(findings_for("import os\n"))
    assert json.loads(text)["version"] == "2.1.0"
