"""The ``BENCH_*.json`` schema round-trips exactly."""

from __future__ import annotations

import json

import pytest

from repro.bench import BENCH_SCHEMA_VERSION, BenchReport, BenchRow


def _report() -> BenchReport:
    return BenchReport(
        benchmark="mining",
        scale="smoke",
        seed=7,
        git_rev="abc1234",
        n_cpus=2,
        rows=(
            BenchRow(
                name="reference",
                wall_clock_s=1.25,
                ops_per_sec=2.4,
                speedup_vs_serial=1.0,
            ),
            BenchRow(
                name="indexed",
                wall_clock_s=0.25,
                ops_per_sec=12.0,
                speedup_vs_serial=5.0,
            ),
        ),
    )


class TestRoundtrip:
    def test_dict_roundtrip_is_exact(self):
        report = _report()
        assert BenchReport.from_dict(report.to_dict()) == report

    def test_file_roundtrip_is_exact(self, tmp_path):
        report = _report()
        path = report.save(tmp_path / "BENCH_mining.json")
        assert BenchReport.load(path) == report

    def test_payload_is_plain_json(self, tmp_path):
        path = _report().save(tmp_path / "b.json")
        payload = json.loads(path.read_text())
        assert payload["schema"] == BENCH_SCHEMA_VERSION
        assert payload["benchmark"] == "mining"
        assert payload["n_cpus"] == 2
        assert [row["name"] for row in payload["rows"]] == ["reference", "indexed"]

    def test_row_lookup(self):
        report = _report()
        assert report.row("indexed").speedup_vs_serial == 5.0
        with pytest.raises(KeyError):
            report.row("nope")

    def test_summary_mentions_every_row(self):
        text = _report().summary()
        assert "reference" in text and "indexed" in text
        assert "2 cpu" in text


class TestSchemaHistory:
    def test_v2_fields_roundtrip(self):
        report = BenchReport(
            benchmark="obs_overhead",
            scale="smoke",
            seed=7,
            git_rev="abc1234-dirty",
            n_cpus=2,
            dirty=True,
            trace=({"name": "patterns.detect_all", "wall_s": 0.5},),
        )
        restored = BenchReport.from_dict(report.to_dict())
        assert restored == report
        assert restored.dirty is True
        assert restored.trace[0]["name"] == "patterns.detect_all"

    def test_v1_payload_loads_with_defaults(self):
        """Committed schema-1 reports stay readable: dirty/trace default."""
        payload = _report().to_dict()
        payload["schema"] = 1
        del payload["dirty"]
        del payload["trace"]
        report = BenchReport.from_dict(payload)
        assert report.dirty is False
        assert report.trace == ()

    def test_v2_payload_without_memory_fields_loads(self):
        """Schema-2 rows predate the memory fields: they default to None."""
        payload = _report().to_dict()
        payload["schema"] = 2
        for row in payload["rows"]:
            assert "peak_tracemalloc_kb" not in row
            assert "bytes_per_sequence" not in row
        report = BenchReport.from_dict(payload)
        assert all(row.peak_tracemalloc_kb is None for row in report.rows)
        assert all(row.bytes_per_sequence is None for row in report.rows)

    def test_v3_memory_fields_roundtrip(self):
        row = BenchRow(
            name="db_build_interned",
            wall_clock_s=0.5,
            ops_per_sec=100.0,
            speedup_vs_serial=2.0,
            peak_tracemalloc_kb=2048.25,
            bytes_per_sequence=96.5,
        )
        payload = row.to_dict()
        assert payload["peak_tracemalloc_kb"] == 2048.25
        assert payload["bytes_per_sequence"] == 96.5
        assert BenchRow.from_dict(payload) == row

    def test_unmeasured_memory_fields_stay_out_of_the_payload(self):
        payload = _report().to_dict()
        for row in payload["rows"]:
            assert "peak_tracemalloc_kb" not in row
            assert "bytes_per_sequence" not in row

    def test_summary_flags_dirty_reports(self):
        report = BenchReport(benchmark="b", scale="smoke", seed=1,
                             git_rev="x-dirty", dirty=True)
        assert "dirty tree" in report.summary()


class TestValidation:
    def test_unsupported_schema_rejected(self):
        payload = _report().to_dict()
        payload["schema"] = BENCH_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="unsupported bench schema"):
            BenchReport.from_dict(payload)

    def test_row_needs_a_name(self):
        with pytest.raises(ValueError, match="name"):
            BenchRow(name="", wall_clock_s=1.0, ops_per_sec=1.0, speedup_vs_serial=1.0)

    def test_negative_measurements_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            BenchRow(
                name="x", wall_clock_s=-1.0, ops_per_sec=1.0, speedup_vs_serial=1.0
            )

    def test_negative_memory_measurements_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            BenchRow(
                name="x", wall_clock_s=1.0, ops_per_sec=1.0,
                speedup_vs_serial=1.0, peak_tracemalloc_kb=-1.0,
            )
        with pytest.raises(ValueError, match="non-negative"):
            BenchRow(
                name="x", wall_clock_s=1.0, ops_per_sec=1.0,
                speedup_vs_serial=1.0, bytes_per_sequence=-0.5,
            )

    def test_report_needs_a_benchmark(self):
        with pytest.raises(ValueError, match="benchmark"):
            BenchReport(benchmark="", scale="smoke", seed=1, git_rev="x")

    def test_zero_cpus_rejected(self):
        with pytest.raises(ValueError, match="n_cpus"):
            BenchReport(benchmark="b", scale="smoke", seed=1, git_rev="x", n_cpus=0)
