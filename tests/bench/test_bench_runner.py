"""The perf-regression runners produce pinned, self-checking reports."""

from __future__ import annotations

import pytest

from repro.bench import (
    BENCH_MINING_FILENAME,
    BENCH_PIPELINE_FILENAME,
    BenchReport,
    SCALES,
    run_mining_bench,
    run_pipeline_bench,
    write_reports,
)


def test_scales_are_pinned():
    """Every scale has an explicit seed, so runs are reproducible."""
    assert {"smoke", "small", "bench", "paper"} <= set(SCALES)
    for config in SCALES.values():
        assert isinstance(config.seed, int)


def test_unknown_scale_rejected():
    with pytest.raises(ValueError, match="unknown bench scale"):
        run_mining_bench("galactic")


@pytest.fixture(scope="module")
def smoke_mining_report():
    return run_mining_bench("smoke", git_rev="testrev")


def test_mining_report_shape(smoke_mining_report):
    report = smoke_mining_report
    assert report.benchmark == "mining"
    assert report.scale == "smoke"
    assert report.seed == SCALES["smoke"].seed
    assert report.git_rev == "testrev"
    assert report.n_cpus >= 1
    reference = report.row("modified_prefixspan_reference")
    indexed = report.row("modified_prefixspan_indexed")
    assert reference.speedup_vs_serial == 1.0
    assert indexed.wall_clock_s > 0
    # The indexed core must win even at smoke scale; the ≥5× acceptance
    # figure is measured at the "bench" scale, where indexes amortize more.
    assert indexed.speedup_vs_serial > 1.0


def test_pipeline_report_shape():
    report = run_pipeline_bench("smoke", workers=(2,), git_rev="testrev")
    assert report.benchmark == "pipeline"
    assert report.row("detect_all_patterns_serial").speedup_vs_serial == 1.0
    fanned = report.row("detect_all_patterns_process_2w")
    # Parity with serial is asserted inside the runner; here only the
    # measurement's presence matters (speedup is host-CPU-bound).
    assert fanned.wall_clock_s > 0


def test_write_reports_emits_both_files(tmp_path):
    mining_path, pipeline_path = write_reports(
        tmp_path, scale="smoke", workers=(2,)
    )
    assert mining_path == tmp_path / BENCH_MINING_FILENAME
    assert pipeline_path == tmp_path / BENCH_PIPELINE_FILENAME
    assert BenchReport.load(mining_path).benchmark == "mining"
    assert BenchReport.load(pipeline_path).benchmark == "pipeline"
