"""The perf-regression runners produce pinned, self-checking reports."""

from __future__ import annotations

import pytest

from repro.bench import (
    BENCH_MINING_FILENAME,
    BENCH_PIPELINE_FILENAME,
    BenchReport,
    SCALES,
    run_interning_bench,
    run_mining_bench,
    run_obs_overhead_bench,
    run_pipeline_bench,
    write_reports,
)


def test_scales_are_pinned():
    """Every scale has an explicit seed, so runs are reproducible."""
    assert {"smoke", "small", "bench", "paper"} <= set(SCALES)
    for config in SCALES.values():
        assert isinstance(config.seed, int)


def test_unknown_scale_rejected():
    with pytest.raises(ValueError, match="unknown bench scale"):
        run_mining_bench("galactic")


@pytest.fixture(scope="module")
def smoke_mining_report():
    return run_mining_bench("smoke", git_rev="testrev")


def test_mining_report_shape(smoke_mining_report):
    report = smoke_mining_report
    assert report.benchmark == "mining"
    assert report.scale == "smoke"
    assert report.seed == SCALES["smoke"].seed
    assert report.git_rev == "testrev"
    assert report.n_cpus >= 1
    reference = report.row("modified_prefixspan_reference")
    interned = report.row("modified_prefixspan_interned")
    assert reference.speedup_vs_serial == 1.0
    assert interned.wall_clock_s > 0
    # The interned core must win even at smoke scale; the ≥20× acceptance
    # figure is measured at the "bench" scale, where indexes amortize more.
    assert interned.speedup_vs_serial > 1.0


def test_mining_report_carries_interning_rows(smoke_mining_report):
    """BENCH_mining.json records the representation's memory side too."""
    obj = smoke_mining_report.row("db_build_object")
    interned = smoke_mining_report.row("db_build_interned")
    assert obj.speedup_vs_serial == 1.0
    for row in (obj, interned):
        assert row.peak_tracemalloc_kb is not None and row.peak_tracemalloc_kb > 0
        assert row.bytes_per_sequence is not None and row.bytes_per_sequence > 0
    # The acceptance bar (≤ 1/4 of the object representation) is structural
    # — byte sizes, not wall clock — so it holds at any scale.
    assert interned.bytes_per_sequence <= obj.bytes_per_sequence / 4


def test_interning_report_shape():
    report = run_interning_bench("smoke", git_rev="testrev")
    assert report.benchmark == "interning"
    assert report.scale == "smoke"
    names = [row.name for row in report.rows]
    assert names == ["db_build_object", "db_build_interned"]
    interned = report.row("db_build_interned")
    obj = report.row("db_build_object")
    assert interned.bytes_per_sequence < obj.bytes_per_sequence


def test_pipeline_report_shape():
    report = run_pipeline_bench("smoke", workers=(2,), git_rev="testrev")
    assert report.benchmark == "pipeline"
    assert report.row("detect_all_patterns_serial").speedup_vs_serial == 1.0
    fanned = report.row("detect_all_patterns_process_2w")
    # Parity with serial is asserted inside the runner; here only the
    # measurement's presence matters (speedup is host-CPU-bound).
    assert fanned.wall_clock_s > 0


def test_obs_overhead_report_shape():
    report = run_obs_overhead_bench("smoke", repeats=1, git_rev="testrev")
    assert report.benchmark == "obs_overhead"
    assert report.dirty is False
    disabled = report.row("detect_all_obs_disabled")
    enabled = report.row("detect_all_obs_enabled")
    assert disabled.speedup_vs_serial == 1.0
    assert enabled.wall_clock_s > 0
    # The instrumented leg's trace rides along in the report.
    assert report.trace
    assert report.trace[0]["name"] == "patterns.detect_all"


class TestDirtyTreeGuard:
    def _run(self, monkeypatch, tmp_path, dirty, argv=()):
        import repro.bench.__main__ as bench_main
        import repro.bench.runner as bench_runner

        monkeypatch.setattr(bench_main, "_git_state",
                            lambda: ("abc1234", dirty))
        monkeypatch.setattr(bench_runner, "_git_state",
                            lambda: ("abc1234", dirty))
        return bench_main.main(
            ["--scale", "smoke", "--workers", "2", "--out", str(tmp_path),
             *argv]
        )

    def test_refuses_to_overwrite_on_dirty_tree(self, monkeypatch, tmp_path,
                                                capsys):
        (tmp_path / BENCH_MINING_FILENAME).write_text("{}")
        assert self._run(monkeypatch, tmp_path, dirty=True) == 2
        out = capsys.readouterr().out
        assert "refusing to overwrite" in out
        assert BENCH_MINING_FILENAME in out
        assert "--force" in out
        # The refusal happened before any benchmark ran or file changed.
        assert (tmp_path / BENCH_MINING_FILENAME).read_text() == "{}"
        assert not (tmp_path / BENCH_PIPELINE_FILENAME).exists()

    def test_dirty_tree_without_existing_reports_proceeds(self, monkeypatch,
                                                          tmp_path):
        assert self._run(monkeypatch, tmp_path, dirty=True) == 0
        assert (tmp_path / BENCH_MINING_FILENAME).exists()
        assert (tmp_path / BENCH_PIPELINE_FILENAME).exists()

    def test_force_overwrites_and_stamps_dirty(self, monkeypatch, tmp_path):
        (tmp_path / BENCH_MINING_FILENAME).write_text("{}")
        assert self._run(monkeypatch, tmp_path, dirty=True,
                         argv=("--force",)) == 0
        report = BenchReport.load(tmp_path / BENCH_MINING_FILENAME)
        assert report.dirty is True
        assert report.git_rev.endswith("-dirty")


def test_write_reports_emits_both_files(tmp_path):
    mining_path, pipeline_path = write_reports(
        tmp_path, scale="smoke", workers=(2,)
    )
    assert mining_path == tmp_path / BENCH_MINING_FILENAME
    assert pipeline_path == tmp_path / BENCH_PIPELINE_FILENAME
    assert BenchReport.load(mining_path).benchmark == "mining"
    assert BenchReport.load(pipeline_path).benchmark == "pipeline"
