"""Tests for the serving load-test harness and its structural CI gate."""

import importlib.util
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench import BENCH_WEB_FILENAME, BenchReport, BenchRow, run_web_bench
from repro.bench.web import _quantile, _schedule

REPO_ROOT = Path(__file__).resolve().parents[2]

ROW_NAMES = (
    "web_cold_uncached",
    "web_hot_cached",
    "web_hot_conditional_304",
    "web_hot_gzip",
)


@pytest.fixture(scope="module")
def web_report(pipeline_result):
    """One real harness run over the session's pipeline result."""
    return run_web_bench("smoke", clients=2, rounds=2, git_rev="testrev",
                         result=pipeline_result)


class TestHarness:
    def test_report_shape(self, web_report):
        assert web_report.benchmark == "web"
        assert [row.name for row in web_report.rows] == list(ROW_NAMES)
        for row in web_report.rows:
            assert row.ops_per_sec > 0
            assert row.p50_s is not None and row.p99_s is not None
            assert row.p50_s <= row.p99_s
            assert row.hit_ratio is not None
            assert row.bytes_on_wire is not None
            assert row.work_units is not None

    def test_hot_path_does_no_rendering_work(self, web_report):
        cold = web_report.row("web_cold_uncached")
        hot = web_report.row("web_hot_cached")
        assert cold.work_units > 0
        assert cold.hit_ratio == 0.0
        assert hot.work_units == 0
        assert hot.hit_ratio == 1.0

    def test_304_phase_moves_no_body_bytes(self, web_report):
        cond = web_report.row("web_hot_conditional_304")
        assert cond.work_units == 0
        assert cond.bytes_on_wire == 0

    def test_gzip_phase_shrinks_bytes_on_wire(self, web_report):
        hot = web_report.row("web_hot_cached")
        gz = web_report.row("web_hot_gzip")
        assert gz.work_units == 0
        assert 0 < gz.bytes_on_wire < hot.bytes_on_wire

    def test_report_round_trips_through_schema(self, web_report, tmp_path):
        path = web_report.save(tmp_path / BENCH_WEB_FILENAME)
        loaded = BenchReport.load(path)
        # to_dict rounds measurements, so compare the serialized forms: a
        # second trip through the schema must be the identity.
        assert loaded.to_dict() == web_report.to_dict()
        assert [row.name for row in loaded.rows] == list(ROW_NAMES)
        payload = json.loads(path.read_text())
        hot = next(r for r in payload["rows"] if r["name"] == "web_hot_cached")
        assert {"p50_s", "p99_s", "hit_ratio", "bytes_on_wire",
                "work_units"} <= set(hot)
        # Serving fields stay off non-serving rows' payloads.
        assert "p50_s" not in BenchRow("x", 1, 1, 1).to_dict()

    def test_schedule_is_deterministic_and_mixed(self, pipeline_result):
        paths = _schedule(pipeline_result)
        assert paths == _schedule(pipeline_result)
        assert len(paths) == len(set(paths))
        assert any(p.startswith("/api/tiles/") for p in paths)
        assert any(p.startswith("/city?") for p in paths)
        assert any(p.startswith("/api/user/") for p in paths)

    def test_smoke_gate_passes_on_real_report(self, web_report, tmp_path):
        web_report.save(tmp_path / BENCH_WEB_FILENAME)
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "bench_smoke_check.py"),
             "--web", str(tmp_path)],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "web bench smoke OK" in proc.stdout

    def test_smoke_gate_rejects_a_lazy_hot_path(self, web_report, tmp_path):
        """A hot phase that re-rendered everything must fail the gate."""
        spec = importlib.util.spec_from_file_location(
            "bench_smoke_check", REPO_ROOT / "scripts" / "bench_smoke_check.py"
        )
        gate = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(gate)
        check_web = gate.check_web

        bad_rows = []
        for row in web_report.rows:
            if row.name == "web_hot_cached":
                row = BenchRow(
                    name=row.name, wall_clock_s=row.wall_clock_s,
                    ops_per_sec=row.ops_per_sec,
                    speedup_vs_serial=row.speedup_vs_serial,
                    p50_s=row.p50_s, p99_s=row.p99_s, hit_ratio=0.0,
                    bytes_on_wire=row.bytes_on_wire,
                    work_units=web_report.row("web_cold_uncached").work_units * 4,
                )
            bad_rows.append(row)
        bad = BenchReport(
            benchmark="web", scale=web_report.scale, seed=web_report.seed,
            git_rev=web_report.git_rev, n_cpus=web_report.n_cpus, rows=bad_rows,
        )
        bad.save(tmp_path / BENCH_WEB_FILENAME)
        with pytest.raises(AssertionError, match="re-rendered"):
            check_web(tmp_path)


class TestQuantiles:
    def test_quantile_interpolates_within_buckets(self):
        series = {
            "buckets": [0.001, 0.01, 0.1],
            "counts": [0, 10, 0, 0],
            "count": 10,
            "sum": 0.05,
            "min": 0.002,
            "max": 0.009,
        }
        p50 = _quantile([series], 0.5)
        assert 0.001 < p50 < 0.01

    def test_quantile_merges_series(self):
        low = {"buckets": [0.001, 0.01], "counts": [10, 0, 0], "count": 10,
               "sum": 0.005, "min": 0.0005, "max": 0.0009}
        high = {"buckets": [0.001, 0.01], "counts": [0, 0, 10], "count": 10,
                "sum": 5.0, "min": 0.5, "max": 0.5}
        assert _quantile([low, high], 0.99) == 0.5  # overflow bin: merged max
        p25 = _quantile([low, high], 0.25)
        assert p25 <= 0.001

    def test_quantile_of_nothing_is_none(self):
        assert _quantile([], 0.5) is None
        assert _quantile([{}], 0.5) is None
