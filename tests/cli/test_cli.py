"""Tests for the crowdweb CLI (driving main() directly)."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def dataset_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "ds.csv"
    assert main(["generate", str(path), "--scale", "small"]) == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestGenerate:
    def test_writes_file(self, dataset_file):
        assert dataset_file.exists()
        assert dataset_file.stat().st_size > 10_000

    def test_seed_changes_output(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        main(["generate", str(a), "--seed", "1"])
        main(["generate", str(b), "--seed", "2"])
        assert a.read_text() != b.read_text()


class TestStats:
    def test_prints_table(self, dataset_file, capsys):
        assert main(["stats", str(dataset_file)]) == 0
        out = capsys.readouterr().out
        assert "check-ins" in out
        assert "densest 3 months" in out


class TestMine:
    def test_mines_known_user(self, dataset_file, capsys):
        # u0009 is the busiest user of the small seed-7 world.
        assert main(["mine", str(dataset_file), "u0009",
                     "--min-support", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "User u0009" in out

    def test_unknown_user_fails(self, dataset_file, capsys):
        assert main(["mine", str(dataset_file), "nobody"]) == 2
        assert "not in dataset" in capsys.readouterr().err

    def test_level_option(self, dataset_file, capsys):
        assert main(["mine", str(dataset_file), "u0009", "--level", "leaf"]) == 0


class TestCrowd:
    def test_prints_snapshot(self, dataset_file, capsys):
        assert main(["crowd", str(dataset_file), "--hour", "9.5",
                     "--min-days", "25", "--months", "2"]) == 0
        out = capsys.readouterr().out
        assert "window 09:00-10:00" in out


class TestFigures:
    def test_regenerates_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "figs"
        assert main(["figures", str(out_dir), "--scale", "small"]) == 0
        names = {p.name for p in out_dir.iterdir()}
        assert {"fig5_sequences_vs_support.svg", "fig6_sequence_count_distribution.svg",
                "fig7_length_vs_support.svg", "fig8_length_distribution.svg",
                "fig3_crowd_0900.svg", "fig4_crowd_1300.svg",
                "results.json", "report.html"} <= names
        results = json.loads((out_dir / "results.json").read_text())
        assert len(results["sweep_rows"]) == 5


class TestAnalyze:
    def test_prints_metrics_table(self, dataset_file, capsys):
        assert main(["analyze", str(dataset_file), "--min-checkins", "30"]) == 0
        out = capsys.readouterr().out
        assert "Pi_max" in out
        assert "users analyzed" in out

    def test_no_qualifying_users(self, dataset_file, capsys):
        assert main(["analyze", str(dataset_file), "--min-checkins", "99999"]) == 1


class TestCommunities:
    def test_prints_communities(self, dataset_file, capsys):
        assert main(["communities", str(dataset_file), "--min-days", "25",
                     "--months", "2"]) == 0
        out = capsys.readouterr().out
        assert "communities over" in out


class TestPredict:
    def test_prints_comparison(self, dataset_file, capsys):
        assert main(["predict", str(dataset_file), "--min-days", "25",
                     "--months", "2"]) == 0
        out = capsys.readouterr().out
        assert "markov-1" in out
        assert "pattern-based" in out


class TestAudit:
    def test_clean_dataset_ok(self, dataset_file, capsys):
        assert main(["audit", str(dataset_file)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_dirty_dataset_fails(self, tmp_path, capsys):
        from datetime import datetime, timezone
        from repro.data import CheckIn, CheckInDataset, save_dataset

        bad = CheckInDataset([CheckIn(
            user_id="u", venue_id="v", category_id="", category_name="Cafe",
            lat=0.0, lon=0.0, tz_offset_min=0,
            timestamp=datetime(2099, 1, 1, tzinfo=timezone.utc),
        )])
        path = tmp_path / "bad.csv"
        save_dataset(bad, path)
        assert main(["audit", str(path)]) == 1
        assert "FAILED" in capsys.readouterr().out


class TestMonitor:
    def test_replays_last_day(self, dataset_file, capsys):
        assert main(["monitor", str(dataset_file), "u0009",
                     "--min-support", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "replaying" in out
        assert "conformance" in out

    def test_unknown_user(self, dataset_file, capsys):
        assert main(["monitor", str(dataset_file), "nobody"]) == 2

    def test_no_patterns_exits_one(self, dataset_file, capsys):
        # An extremely high support threshold yields no patterns.
        assert main(["monitor", str(dataset_file), "u0009",
                     "--min-support", "0.999"]) == 1


class TestExportSpmf:
    def test_exports_db_and_patterns(self, dataset_file, tmp_path, capsys):
        out = tmp_path / "u.spmf"
        assert main(["export-spmf", str(dataset_file), "u0009", str(out),
                     "--min-support", "0.4"]) == 0
        assert out.exists()
        assert (tmp_path / "u.spmf.dict").exists()
        assert (tmp_path / "u.spmf.patterns").exists()
        first = out.read_text().splitlines()[0]
        assert first.endswith("-2")

    def test_unknown_user(self, dataset_file, tmp_path):
        assert main(["export-spmf", str(dataset_file), "ghost",
                     str(tmp_path / "x.spmf")]) == 2
