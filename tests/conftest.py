"""Shared fixtures: one small synthetic world reused across the suite."""

from __future__ import annotations

import pytest

from repro.data import ActiveUserFilter, generate, SMALL_CONFIG
from repro.experiments import small_pipeline_config
from repro.pipeline import run_pipeline
from repro.sequences import build_all_databases
from repro.taxonomy import AbstractionLevel, build_default_taxonomy


@pytest.fixture(scope="session")
def taxonomy():
    return build_default_taxonomy()


@pytest.fixture(scope="session")
def small_gen():
    """The small synthetic generation result (dataset + ground truth)."""
    return generate(SMALL_CONFIG)


@pytest.fixture(scope="session")
def small_ds(small_gen):
    return small_gen.dataset


@pytest.fixture(scope="session")
def pipeline_result(small_ds):
    """The full pipeline on the small dataset (a few active users)."""
    return run_pipeline(small_ds, small_pipeline_config())


@pytest.fixture(scope="session")
def user_databases(small_ds, taxonomy):
    """Per-user ROOT-level sequence databases of the small dataset."""
    return build_all_databases(small_ds, taxonomy, AbstractionLevel.ROOT)


@pytest.fixture(scope="session")
def active_db(user_databases):
    """The densest single-user database (the busiest simulated user)."""
    uid = max(user_databases, key=lambda u: len(user_databases[u]))
    return user_databases[uid]
