"""Tests for the animated-SVG crowd export."""

import xml.dom.minidom

import pytest

from repro.crowd import build_animation
from repro.viz import render_animated_crowd


class TestAnimatedSvg:
    @pytest.fixture(scope="class")
    def frames(self, pipeline_result):
        return build_animation(pipeline_result.timeline, steps_per_transition=2)

    def test_valid_xml(self, frames, pipeline_result):
        svg = render_animated_crowd(frames, pipeline_result.grid)
        doc = xml.dom.minidom.parseString(svg)
        assert doc.documentElement.tagName == "svg"

    def test_one_circle_per_user(self, frames, pipeline_result):
        svg = render_animated_crowd(frames, pipeline_result.grid)
        doc = xml.dom.minidom.parseString(svg)
        circles = doc.getElementsByTagName("circle")
        users = {d.user_id for f in frames for d in f.dots}
        assert len(circles) == len(users)

    def test_animate_elements_cover_xy_opacity(self, frames, pipeline_result):
        svg = render_animated_crowd(frames, pipeline_result.grid)
        doc = xml.dom.minidom.parseString(svg)
        attrs = {a.getAttribute("attributeName")
                 for a in doc.getElementsByTagName("animate")}
        assert attrs == {"cx", "cy", "opacity"}

    def test_keytimes_match_frame_count(self, frames, pipeline_result):
        svg = render_animated_crowd(frames, pipeline_result.grid)
        doc = xml.dom.minidom.parseString(svg)
        animate = doc.getElementsByTagName("animate")[0]
        values = animate.getAttribute("values").split(";")
        key_times = animate.getAttribute("keyTimes").split(";")
        assert len(values) == len(frames)
        assert len(key_times) == len(frames)
        assert key_times[0] == "0.0000"

    def test_empty_frames_raise(self, pipeline_result):
        with pytest.raises(ValueError):
            render_animated_crowd([], pipeline_result.grid)

    def test_invalid_speed(self, frames, pipeline_result):
        with pytest.raises(ValueError):
            render_animated_crowd(frames, pipeline_result.grid, seconds_per_frame=0)
