"""Tests for the city map, place-graph renderer, and HTML report."""

import xml.dom.minidom

import networkx as nx
import pytest

from repro.patterns import build_place_graph
from repro.sequences import make_labeler
from repro.taxonomy import AbstractionLevel
from repro.viz import (
    HtmlReport,
    label_color_order,
    render_place_graph,
    render_snapshot,
    render_venue_map,
)


def parse(svg):
    return xml.dom.minidom.parseString(svg)


class TestSnapshotRendering:
    def test_valid_svg_with_dots(self, pipeline_result):
        snap = pipeline_result.aggregator.busiest_window()
        svg = render_snapshot(snap)
        doc = parse(svg)
        circles = doc.getElementsByTagName("circle")
        # Crowd dots + legend chips.
        assert len(circles) >= snap.n_users

    def test_title_includes_window(self, pipeline_result):
        snap = pipeline_result.timeline.at_hour(9.5)
        assert snap.window.label in render_snapshot(snap)

    def test_label_order_stabilizes_colors(self, pipeline_result):
        timeline = list(pipeline_result.timeline)
        order = label_color_order(timeline)
        assert order == label_color_order(timeline)  # deterministic
        snap = pipeline_result.aggregator.busiest_window()
        svg1 = render_snapshot(snap, label_order=order)
        svg2 = render_snapshot(snap, label_order=order)
        assert svg1 == svg2

    def test_empty_snapshot_renders(self, pipeline_result):
        empty = pipeline_result.timeline.at_hour(4.2)
        parse(render_snapshot(empty))


class TestVenueMap:
    def test_renders(self, pipeline_result):
        svg = render_venue_map(pipeline_result.dataset, pipeline_result.grid)
        doc = parse(svg)
        assert doc.getElementsByTagName("circle")


class TestPlaceGraphRendering:
    def test_renders_user_graph(self, pipeline_result, taxonomy):
        uid = sorted(pipeline_result.profiles)[0]
        labeler = make_labeler(taxonomy, AbstractionLevel.ROOT)
        graph = build_place_graph(pipeline_result.dataset, uid, labeler)
        svg = render_place_graph(graph)
        doc = parse(svg)
        assert len(doc.getElementsByTagName("circle")) == graph.number_of_nodes()

    def test_empty_graph_placeholder(self):
        svg = render_place_graph(nx.DiGraph(user_id="ghost"))
        assert "no places visited" in svg

    def test_deterministic_layout(self, pipeline_result, taxonomy):
        uid = sorted(pipeline_result.profiles)[0]
        labeler = make_labeler(taxonomy, AbstractionLevel.ROOT)
        graph = build_place_graph(pipeline_result.dataset, uid, labeler)
        assert render_place_graph(graph, seed=1) == render_place_graph(graph, seed=1)


class TestHtmlReport:
    def test_full_document(self, tmp_path):
        report = (
            HtmlReport("Title", "sub")
            .add_heading("Section")
            .add_paragraph("Some <text> & stuff")
            .add_table(["a", "b"], [[1, 2], [3, 4]], caption="cap")
            .add_preformatted("raw < pre >")
            .add_svg('<svg xmlns="http://www.w3.org/2000/svg"/>', caption="fig")
        )
        html = report.to_html()
        assert "<h1>Title</h1>" in html
        assert "Some &lt;text&gt; &amp; stuff" in html
        assert "<td>3</td>" in html
        assert "raw &lt; pre &gt;" in html
        out = report.save(tmp_path / "r.html")
        assert out.read_text().startswith("<!DOCTYPE html>")

    def test_table_dimensions(self):
        html = HtmlReport("T").add_table(["x"], [["v1"], ["v2"], ["v3"]]).to_html()
        assert html.count("<tr>") == 4  # header + 3 rows


class TestTraceRendering:
    def test_renders_trace_with_stays(self, small_gen):
        from datetime import date, timedelta

        from repro.data.synth import simulate_traces
        from repro.prediction import DBSCANRNNConfig, DBSCANRNNPipeline
        from repro.sequences import detect_stay_points
        from repro.viz import render_trace

        agent = max(small_gen.agents, key=lambda a: a.checkin_prob)
        days = [date(2012, 4, 2) + timedelta(days=i) for i in range(12)]
        traces = simulate_traces([agent], small_gen.city, days,
                                 small_gen.config, seed=6)[agent.user_id]
        day = max(traces, key=lambda d: len(traces[d]))
        stays = detect_stay_points(traces[day], 150.0, 15 * 60.0)
        pipe = DBSCANRNNPipeline(DBSCANRNNConfig(rnn_epochs=3, seed=1)).fit(traces)
        svg = render_trace(traces[day], stays, pipe.cluster_centers,
                           title=f"{agent.user_id} on {day}")
        doc = parse(svg)
        # Stay dots + cluster rings + start/end markers, all circles.
        assert len(doc.getElementsByTagName("circle")) >= len(stays) + 2
        assert doc.getElementsByTagName("polyline")

    def test_empty_trace_raises(self):
        from repro.viz import render_trace

        with pytest.raises(ValueError):
            render_trace([])
