"""Tests for the chart kit."""

import xml.dom.minidom

import pytest

from repro.viz import (
    BarChart,
    CATEGORICAL,
    Heatmap,
    Histogram,
    LineChart,
    OTHER,
    ScatterChart,
    categorical_for,
    nice_ticks,
    sequential_color,
)


def parse(svg):
    return xml.dom.minidom.parseString(svg)


class TestNiceTicks:
    def test_covers_range(self):
        ticks = nice_ticks(0.13, 9.7)
        assert ticks[0] <= 0.13
        assert ticks[-1] >= 9.7

    def test_steps_are_125(self):
        ticks = nice_ticks(0, 100)
        step = ticks[1] - ticks[0]
        mantissa = step / (10 ** len(str(int(step))) if step >= 1 else 1)
        assert step in (20, 25, 50, 10)

    def test_degenerate_range(self):
        ticks = nice_ticks(5.0, 5.0)
        assert len(ticks) >= 2
        assert ticks[0] <= 5.0 <= ticks[-1]

    def test_inverted_input_handled(self):
        ticks = nice_ticks(10, 0)
        assert ticks[0] <= 0 and ticks[-1] >= 10

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            nice_ticks(0, 1, target=1)


class TestPalette:
    def test_fixed_slot_assignment(self):
        colors = categorical_for(["x", "y", "z"])
        assert colors["x"] == CATEGORICAL[0]
        assert colors["y"] == CATEGORICAL[1]

    def test_overflow_folds_to_other(self):
        names = [f"n{i}" for i in range(12)]
        colors = categorical_for(names)
        assert colors["n8"] == OTHER
        assert colors["n11"] == OTHER

    def test_sequential_monotone_extremes(self):
        low = sequential_color(0, 0, 10)
        high = sequential_color(10, 0, 10)
        assert low != high
        assert sequential_color(20, 0, 10) == high  # clamped

    def test_sequential_degenerate_range(self):
        assert sequential_color(5, 5, 5)  # no crash, some mid color


class TestLineChart:
    def test_render_valid_svg(self):
        chart = LineChart("T", "x", "y").add_series("s", [1, 2, 3], [4, 5, 6])
        doc = parse(chart.render())
        assert doc.getElementsByTagName("polyline")
        assert len(doc.getElementsByTagName("circle")) == 3

    def test_no_series_raises(self):
        with pytest.raises(ValueError):
            LineChart("T").render()

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            LineChart("T").add_series("s", [1], [1, 2])

    def test_legend_only_for_multiseries(self):
        single = LineChart("T").add_series("only", [1, 2], [1, 2]).render()
        multi = (LineChart("T")
                 .add_series("a", [1, 2], [1, 2])
                 .add_series("b", [1, 2], [2, 1])
                 .render())
        assert ">only</text>" not in single  # no legend text for one series
        assert ">a</text>" in multi and ">b</text>" in multi

    def test_tooltips_on_markers(self):
        svg = LineChart("T").add_series("s", [1], [2]).render()
        assert "<title>s: (1, 2)</title>" in svg


class TestBarChart:
    def test_bar_per_category(self):
        chart = BarChart("T").add_many([("a", 1), ("b", 2), ("c", 3)])
        doc = parse(chart.render())
        bars = [r for r in doc.getElementsByTagName("rect")
                if r.getElementsByTagName("title")]
        assert len(bars) == 3

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            BarChart("T").render()

    def test_zero_values_render(self):
        parse(BarChart("T").add("a", 0).render())


class TestHistogram:
    def test_binning_exact(self):
        hist = Histogram("T", bins=4).add_values([0, 1, 2, 3, 4, 4, 4])
        edges, counts = hist.histogram()
        assert len(edges) == 5
        assert sum(counts) == 7
        assert counts[-1] == 4  # the three 4s plus the boundary value 3

    def test_constant_values(self):
        hist = Histogram("T", bins=5).add_values([2.0] * 10)
        edges, counts = hist.histogram()
        assert sum(counts) == 10

    def test_no_values_raises(self):
        with pytest.raises(ValueError):
            Histogram("T").render()

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            Histogram("T", bins=0)

    def test_renders_with_count_label(self):
        svg = Histogram("T", bins=3).add_values([1, 2, 3]).render()
        parse(svg)
        assert "n=3" in svg


class TestScatter:
    def test_points_and_categories(self):
        chart = ScatterChart("T")
        chart.add_point(1, 2, "a").add_point(3, 4, "b").add_point(5, 6, "a")
        doc = parse(chart.render())
        assert len(doc.getElementsByTagName("circle")) == 3

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ScatterChart("T").render()


class TestHeatmap:
    def test_valid_grid(self):
        heatmap = Heatmap("T", ["r1", "r2"], ["c1", "c2", "c3"],
                          [[1, 2, 3], [4, 5, 6]])
        doc = parse(heatmap.render())
        cells = [r for r in doc.getElementsByTagName("rect")
                 if r.getElementsByTagName("title")]
        assert len(cells) == 6

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            Heatmap("T", ["r1"], ["c1"], [[1, 2]])
        with pytest.raises(ValueError):
            Heatmap("T", ["r1", "r2"], ["c1"], [[1]])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Heatmap("T", [], [], []).render()


class TestThemes:
    def test_dark_theme_renders_valid_svg(self):
        from repro.viz.palette import DARK

        svg = (LineChart("T", theme=DARK)
               .add_series("a", [1, 2], [3, 4])
               .add_series("b", [1, 2], [4, 3])
               .render())
        parse(svg)
        assert DARK.surface in svg
        assert DARK.categorical[0] in svg

    def test_theme_slot_assignment(self):
        from repro.viz.palette import DARK, LIGHT

        colors = DARK.categorical_for(["x", "y"])
        assert colors["x"] == DARK.categorical[0]
        many = LIGHT.categorical_for([f"n{i}" for i in range(12)])
        assert many["n11"] == LIGHT.other

    def test_theme_sequential_clamped(self):
        from repro.viz.palette import DARK

        assert DARK.sequential_color(99, 0, 10) == DARK.sequential[-1]
        assert DARK.sequential_color(5, 5, 5) in DARK.sequential

    def test_light_remains_default(self):
        from repro.viz.palette import LIGHT

        chart = Histogram("T", bins=3)
        assert chart.theme is LIGHT
