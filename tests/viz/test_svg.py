"""Tests for the SVG builder."""

import xml.dom.minidom

import pytest

from repro.viz import SvgCanvas


def parse(svg: str):
    return xml.dom.minidom.parseString(svg)


class TestCanvas:
    def test_empty_document_valid(self):
        doc = parse(SvgCanvas(100, 50).to_string())
        root = doc.documentElement
        assert root.tagName == "svg"
        assert root.getAttribute("width") == "100"

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            SvgCanvas(0, 10)

    def test_background_rect(self):
        svg = SvgCanvas(10, 10, background="#fff").to_string()
        assert '<rect' in svg and '#fff' in svg

    def test_shapes_render(self):
        canvas = SvgCanvas(200, 100)
        canvas.line(0, 0, 10, 10, stroke="#000")
        canvas.rect(5, 5, 20, 10, fill="#123456", rx=2)
        canvas.circle(50, 50, 5, fill="#abc")
        canvas.polyline([(0, 0), (5, 5), (10, 0)], stroke="#000")
        canvas.path("M 0 0 L 10 10", stroke="#000")
        canvas.text(10, 20, "hello", fill="#000")
        doc = parse(canvas.to_string())
        for tag in ("line", "rect", "circle", "polyline", "path", "text"):
            assert doc.getElementsByTagName(tag), tag

    def test_tooltip_becomes_title_child(self):
        canvas = SvgCanvas(100, 100)
        canvas.circle(10, 10, 3, fill="#000", tooltip="dot & detail <1>")
        doc = parse(canvas.to_string())
        titles = doc.getElementsByTagName("title")
        assert titles[0].firstChild.data == "dot & detail <1>"

    def test_text_escaped(self):
        canvas = SvgCanvas(100, 100)
        canvas.text(0, 0, "<script>&", fill="#000")
        svg = canvas.to_string()
        assert "<script>" not in svg
        assert "&lt;script&gt;&amp;" in svg

    def test_attribute_quoting(self):
        canvas = SvgCanvas(100, 100)
        canvas.rect(0, 0, 10, 10, fill='va"lue')
        parse(canvas.to_string())  # must not blow up

    def test_groups_must_balance(self):
        canvas = SvgCanvas(100, 100)
        canvas.group()
        with pytest.raises(ValueError, match="unclosed"):
            canvas.to_string()
        canvas.endgroup()
        parse(canvas.to_string())

    def test_endgroup_without_group(self):
        with pytest.raises(ValueError):
            SvgCanvas(10, 10).endgroup()

    def test_rotated_text_has_transform(self):
        canvas = SvgCanvas(100, 100)
        canvas.text(10, 10, "tilt", fill="#000", rotate=-90)
        assert "rotate(-90 10 10)" in canvas.to_string()

    def test_save(self, tmp_path):
        canvas = SvgCanvas(10, 10)
        out = canvas.save(tmp_path / "sub" / "x.svg")
        assert out.exists()
        parse(out.read_text())

    def test_negative_rect_clamped(self):
        canvas = SvgCanvas(100, 100)
        canvas.rect(0, 0, -5, -5, fill="#000")
        doc = parse(canvas.to_string())
        rect = doc.getElementsByTagName("rect")[0]
        assert rect.getAttribute("width") == "0"


class TestEscapingFuzz:
    """Arbitrary text anywhere in the document must keep it well-formed."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    nasty = st.text(max_size=60)

    @given(text=nasty, tooltip=nasty)
    @settings(max_examples=60, deadline=None)
    def test_any_text_yields_valid_xml(self, text, tooltip):
        canvas = SvgCanvas(100, 100)
        canvas.text(5, 5, text, fill="#000")
        canvas.circle(10, 10, 2, fill="#000", tooltip=tooltip)
        canvas.rect(0, 0, 5, 5, fill=f"c{text[:8]}")  # attribute position too
        parse(canvas.to_string())
