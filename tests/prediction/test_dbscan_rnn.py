"""Tests for GPS-trace simulation and the DBSCAN+RNN pipeline (ref [10])."""

from datetime import date, timedelta

import numpy as np
import pytest

from repro.data.synth import TraceConfig, simulate_day_trace, simulate_traces
from repro.prediction import DBSCANRNNConfig, DBSCANRNNPipeline
from repro.sequences import detect_stay_points


@pytest.fixture(scope="module")
def world(small_gen):
    agent = max(small_gen.agents, key=lambda a: a.checkin_prob)
    return small_gen, agent


@pytest.fixture(scope="module")
def traces(world):
    gen, agent = world
    days = [date(2012, 4, 1) + timedelta(days=i) for i in range(30)]
    return simulate_traces([agent], gen.city, days, gen.config, seed=3)[agent.user_id]


class TestTraceConfig:
    @pytest.mark.parametrize("kwargs", [
        {"sample_interval_s": 0},
        {"walking_speed_mps": 0},
        {"gps_noise_m": -1},
        {"dwell_minutes_mean": 0},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            TraceConfig(**kwargs)


class TestDayTrace:
    def test_chronological_fixes(self, traces):
        for fixes in traces.values():
            times = [f.timestamp for f in fixes]
            assert times == sorted(times)

    def test_fixes_near_city(self, world, traces):
        gen, _ = world
        bbox = gen.city.bbox.expand(0.01)
        for fixes in traces.values():
            for f in list(fixes)[:50]:
                assert bbox.contains_lat_lon(f.lat, f.lon)

    def test_dense_sampling(self, traces):
        lengths = [len(fixes) for fixes in traces.values()]
        assert np.mean(lengths) > 50  # dwells alone give dozens of fixes

    def test_deterministic_given_seed(self, world):
        gen, agent = world
        days = [date(2012, 4, 2)]
        a = simulate_traces([agent], gen.city, days, gen.config, seed=9)
        b = simulate_traces([agent], gen.city, days, gen.config, seed=9)
        fa = a.get(agent.user_id, {}).get(days[0], [])
        fb = b.get(agent.user_id, {}).get(days[0], [])
        assert [(f.lat, f.lon) for f in fa] == [(f.lat, f.lon) for f in fb]

    def test_stay_points_recoverable(self, traces):
        """Dwells must be long/tight enough for the stay-point detector."""
        day = max(traces, key=lambda d: len(traces[d]))
        stays = detect_stay_points(traces[day], 150.0, 15 * 60.0)
        assert len(stays) >= 2


class TestPipeline:
    @pytest.fixture(scope="class")
    def fitted(self, traces):
        train = {d: traces[d] for d in sorted(traces)[:22]}
        return DBSCANRNNPipeline(
            DBSCANRNNConfig(rnn_epochs=10, seed=2)
        ).fit(train), {d: traces[d] for d in sorted(traces)[22:]}

    def test_finds_significant_places(self, fitted):
        pipe, _ = fitted
        assert 2 <= pipe.n_places <= 40

    def test_day_sequences_tokenized(self, fitted):
        pipe, _ = fitted
        assert pipe.day_sequences
        for tokens in pipe.day_sequences.values():
            assert all(0 <= t < pipe.n_places for t in tokens)
            # No immediate repeats after dedup.
            assert all(a != b for a, b in zip(tokens, tokens[1:]))

    def test_predict_next_returns_centers(self, fitted):
        pipe, test = fitted
        some_day = sorted(test)[0]
        predictions = pipe.predict_next(list(test[some_day])[:40], k=3)
        assert 1 <= len(predictions) <= 3
        for p in predictions:
            assert any(p.fast_distance_to(c) < 1.0 for c in pipe.cluster_centers)

    def test_evaluation_reports(self, fitted):
        pipe, test = fitted
        reports = pipe.evaluate(test)
        assert set(reports) == {"dbscan-rnn", "dbscan-markov"}
        for rep in reports.values():
            assert 0.0 <= rep.accuracy_at_1 <= rep.accuracy_at_3 <= 1.0

    def test_beats_chance(self, fitted):
        """A routinized agent must be predictable above uniform chance."""
        pipe, test = fitted
        reports = pipe.evaluate(test)
        chance = 1.0 / pipe.n_places
        assert reports["dbscan-rnn"].accuracy_at_3 > chance

    def test_unfitted_raises(self):
        pipe = DBSCANRNNPipeline()
        with pytest.raises(RuntimeError):
            pipe.predict_next([])
        with pytest.raises(RuntimeError):
            pipe.evaluate({})

    def test_empty_traces_raise(self):
        with pytest.raises(ValueError, match="no stay points"):
            DBSCANRNNPipeline().fit({date(2012, 4, 1): []})
