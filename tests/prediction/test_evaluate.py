"""Tests for the prediction evaluation harness."""

import pytest

from repro.prediction import (
    FrequencyPredictor,
    MarkovPredictor,
    compare_predictors,
    evaluate_predictor,
)


SEQUENCES = [
    ["home", "work", "lunch", "work"],
    ["home", "work", "lunch", "work"],
    ["home", "work", "lunch", "work"],
    ["home", "work", "lunch", "work"],
    ["home", "work", "lunch", "work"],
    ["home", "work", "lunch", "work"],
]


class TestEvaluate:
    def test_perfectly_regular_user_high_accuracy(self):
        report = evaluate_predictor(MarkovPredictor(1), SEQUENCES, train_frac=0.67)
        assert report.n_examples == 6  # 2 test days x 3 transitions
        assert report.accuracy_at_1 == 1.0
        assert report.accuracy_at_3 == 1.0

    def test_frequency_weaker_than_markov_here(self):
        markov = evaluate_predictor(MarkovPredictor(1), SEQUENCES)
        freq = evaluate_predictor(FrequencyPredictor(), SEQUENCES)
        assert markov.accuracy_at_1 >= freq.accuracy_at_1

    def test_accuracy_at_3_at_least_at_1(self):
        report = evaluate_predictor(FrequencyPredictor(), SEQUENCES)
        assert report.accuracy_at_3 >= report.accuracy_at_1

    def test_no_test_examples(self):
        report = evaluate_predictor(MarkovPredictor(1), [["a", "b"]])
        assert report.n_examples == 0
        assert report.accuracy_at_1 == 0.0

    def test_as_row(self):
        row = evaluate_predictor(MarkovPredictor(1), SEQUENCES).as_row()
        assert set(row) == {"predictor", "n_examples", "acc@1", "acc@3"}


class TestCompare:
    def test_micro_average_across_users(self):
        by_user = {"u1": SEQUENCES, "u2": SEQUENCES}
        reports = compare_predictors(
            {"freq": FrequencyPredictor, "markov": lambda: MarkovPredictor(1)},
            by_user,
        )
        assert set(reports) == {"freq", "markov"}
        assert reports["markov"].n_examples == 12
        assert reports["markov"].accuracy_at_1 == 1.0

    def test_empty_users(self):
        reports = compare_predictors({"freq": FrequencyPredictor}, {})
        assert reports["freq"].n_examples == 0
