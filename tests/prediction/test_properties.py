"""Property-based tests on predictor contracts."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prediction import FrequencyPredictor, MarkovPredictor

tokens = st.sampled_from(["home", "work", "gym", "thai", "bar"])
corpora = st.lists(st.lists(tokens, min_size=0, max_size=6), min_size=1, max_size=8)
prefixes = st.lists(tokens, min_size=0, max_size=4)


class TestPredictorContracts:
    @given(corpus=corpora, prefix=prefixes, k=st.integers(1, 5))
    @settings(max_examples=60, deadline=None)
    def test_predictions_come_from_training_vocabulary(self, corpus, prefix, k):
        vocabulary = {t for seq in corpus for t in seq}
        for predictor in (FrequencyPredictor(), MarkovPredictor(1), MarkovPredictor(2)):
            predictor.fit(corpus)
            top = predictor.predict(prefix, k=k)
            assert len(top) <= k
            assert len(set(top)) == len(top)  # no duplicates
            assert set(top) <= vocabulary

    @given(corpus=corpora, prefix=prefixes)
    @settings(max_examples=40, deadline=None)
    def test_top1_is_prefix_of_top3(self, corpus, prefix):
        predictor = MarkovPredictor(1).fit(corpus)
        top1 = predictor.predict(prefix, k=1)
        top3 = predictor.predict(prefix, k=3)
        assert top3[: len(top1)] == top1

    @given(corpus=corpora)
    @settings(max_examples=40, deadline=None)
    def test_frequency_order_matches_counts(self, corpus):
        from collections import Counter

        counts = Counter(t for seq in corpus for t in seq)
        ranked = FrequencyPredictor().fit(corpus).predict([], k=5)
        values = [counts[t] for t in ranked]
        assert values == sorted(values, reverse=True)


class TestTimeBinningProperties:
    @given(st.floats(min_value=0.0, max_value=23.999),
           st.sampled_from([0.5, 1.0, 2.0, 3.0, 4.0, 6.0]))
    @settings(max_examples=80, deadline=None)
    def test_hour_falls_inside_its_bin(self, hour, width):
        from repro.sequences import TimeBinning

        binning = TimeBinning(width)
        b = binning.bin_of_hour(hour)
        lo, hi = binning.bounds(b)
        assert lo <= hour < hi or (b == binning.n_bins - 1 and hour >= lo)

    @given(st.integers(0, 23), st.integers(0, 23))
    @settings(max_examples=60, deadline=None)
    def test_circular_distance_symmetric_and_bounded(self, a, b):
        from repro.sequences import HOURLY

        d = HOURLY.distance(a, b)
        assert d == HOURLY.distance(b, a)
        assert 0 <= d <= 12
