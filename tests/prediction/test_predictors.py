"""Tests for the next-place predictors."""

import pytest

from repro.mining import SequentialPattern
from repro.prediction import (
    FrequencyPredictor,
    MarkovPredictor,
    PatternBasedPredictor,
    RNNPredictor,
    prediction_examples,
    split_sequences,
)


TRAIN = [
    ["home", "work", "lunch", "work", "home"],
    ["home", "work", "lunch", "work", "gym"],
    ["home", "work", "lunch", "work", "home"],
    ["home", "cafe", "work", "lunch"],
]


class TestSplit:
    def test_chronological(self):
        train, test = split_sequences(TRAIN, 0.5)
        assert train == TRAIN[:2]
        assert test == TRAIN[2:]

    def test_never_empty_train(self):
        train, test = split_sequences(TRAIN, 0.01)
        assert len(train) == 1

    def test_invalid_frac(self):
        with pytest.raises(ValueError):
            split_sequences(TRAIN, 1.0)

    def test_examples(self):
        examples = prediction_examples([["a", "b", "c"]])
        assert examples == [(("a",), "b"), (("a", "b"), "c")]
        assert prediction_examples([["solo"]]) == []


class TestFrequency:
    def test_ranks_by_count(self):
        predictor = FrequencyPredictor().fit(TRAIN)
        assert predictor.predict([], k=2) == ["work", "home"]

    def test_ignores_prefix(self):
        predictor = FrequencyPredictor().fit(TRAIN)
        assert predictor.predict(["gym"], k=1) == predictor.predict([], k=1)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            FrequencyPredictor().fit(TRAIN).predict([], k=0)

    def test_empty_training(self):
        assert FrequencyPredictor().fit([]).predict([], k=3) == []


class TestMarkov:
    def test_order1_transitions(self):
        predictor = MarkovPredictor(1).fit(TRAIN)
        assert predictor.predict(["work"], k=1) == ["lunch"]
        assert predictor.predict(["home"], k=1) == ["work"]

    def test_order2_uses_longer_context(self):
        sequences = [
            ["a", "b", "x"],
            ["a", "b", "x"],
            ["c", "b", "y"],
            ["c", "b", "y"],
        ]
        order1 = MarkovPredictor(1).fit(sequences)
        order2 = MarkovPredictor(2).fit(sequences)
        # Order 1 sees b->x and b->y equally; order 2 disambiguates via a/c.
        assert order2.predict(["a", "b"], k=1) == ["x"]
        assert order2.predict(["c", "b"], k=1) == ["y"]
        assert set(order1.predict(["a", "b"], k=2)) == {"x", "y"}

    def test_backoff_to_frequency(self):
        predictor = MarkovPredictor(1).fit(TRAIN)
        assert predictor.predict(["never-seen"], k=1) == ["work"]

    def test_backoff_fills_k(self):
        predictor = MarkovPredictor(1).fit(TRAIN)
        top = predictor.predict(["work"], k=4)
        assert top[0] == "lunch"
        assert len(top) == 4
        assert len(set(top)) == 4

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            MarkovPredictor(0)


class TestPatternBased:
    def patterns(self):
        return [
            SequentialPattern(items=("work", "lunch"), count=9, support=0.9),
            SequentialPattern(items=("lunch", "gym"), count=5, support=0.5),
            SequentialPattern(items=("home",), count=8, support=0.8),
        ]

    def test_matched_prefix_drives_prediction(self):
        predictor = PatternBasedPredictor(self.patterns()).fit(TRAIN)
        assert predictor.predict(["home", "work"], k=1) == ["lunch"]
        assert predictor.predict(["work", "lunch"], k=1) == ["gym"]

    def test_single_item_pattern_acts_as_prior(self):
        predictor = PatternBasedPredictor(self.patterns()).fit(TRAIN)
        top = predictor.predict([], k=3)
        assert "home" in top

    def test_fallback_used_when_no_pattern_matches(self):
        predictor = PatternBasedPredictor([]).fit(TRAIN)
        assert predictor.predict(["work"], k=1) == ["lunch"]  # markov fallback

    def test_matched_prefix_len(self):
        f = PatternBasedPredictor._matched_prefix_len
        assert f(("a", "b"), ["x", "a", "y", "b"]) == 2
        assert f(("a", "b"), ["b", "a"]) == 1
        assert f(("a",), []) == 0


class TestRNN:
    def test_learns_deterministic_cycle(self):
        sequences = [["a", "b", "c", "a", "b", "c"]] * 8
        predictor = RNNPredictor(hidden_size=16, embed_size=8, epochs=40, seed=3)
        predictor.fit(sequences)
        assert predictor.predict(["a"], k=1) == ["b"]
        assert predictor.predict(["a", "b"], k=1) == ["c"]

    def test_deterministic_given_seed(self):
        p1 = RNNPredictor(epochs=5, seed=7).fit(TRAIN)
        p2 = RNNPredictor(epochs=5, seed=7).fit(TRAIN)
        assert p1.predict(["home"], k=3) == p2.predict(["home"], k=3)

    def test_unseen_tokens_skipped(self):
        predictor = RNNPredictor(epochs=5, seed=0).fit(TRAIN)
        top = predictor.predict(["martian"], k=2)
        assert len(top) == 2  # falls back to bias ranking

    def test_empty_training(self):
        predictor = RNNPredictor(epochs=2).fit([])
        assert predictor.predict(["a"], k=1) == []

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RNNPredictor(hidden_size=0)
