"""Tests for time-of-day binning."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.sequences import FOUR_HOURLY, HOURLY, TWO_HOURLY, TimeBinning


class TestConstruction:
    def test_presets(self):
        assert HOURLY.n_bins == 24
        assert TWO_HOURLY.n_bins == 12
        assert FOUR_HOURLY.n_bins == 6

    @pytest.mark.parametrize("width", [0, -1, 5, 7, 24.5])
    def test_invalid_widths(self, width):
        with pytest.raises(ValueError):
            TimeBinning(width)

    def test_fractional_width_allowed(self):
        assert TimeBinning(0.5).n_bins == 48


class TestBinning:
    def test_hour_boundaries(self):
        assert HOURLY.bin_of_hour(0.0) == 0
        assert HOURLY.bin_of_hour(8.99) == 8
        assert HOURLY.bin_of_hour(9.0) == 9
        assert HOURLY.bin_of_hour(23.99) == 23

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            HOURLY.bin_of_hour(24.0)
        with pytest.raises(ValueError):
            HOURLY.bin_of_hour(-0.1)

    def test_bin_of_datetime_uses_local_clock(self):
        tz = timezone(timedelta(minutes=-240))
        local = datetime(2012, 4, 1, 9, 30, 0, tzinfo=tz)
        assert HOURLY.bin_of(local) == 9

    def test_two_hourly(self):
        assert TWO_HOURLY.bin_of_hour(9.5) == 4
        assert TWO_HOURLY.bin_of_hour(23.0) == 11


class TestLabelsAndBounds:
    def test_bounds(self):
        assert HOURLY.bounds(9) == (9.0, 10.0)
        assert FOUR_HOURLY.bounds(5) == (20.0, 24.0)

    def test_bounds_out_of_range(self):
        with pytest.raises(ValueError):
            HOURLY.bounds(24)

    def test_label_format(self):
        assert HOURLY.label(9) == "09:00-10:00"
        assert TimeBinning(0.5).label(19) == "09:30-10:00"

    def test_all_labels(self):
        labels = HOURLY.all_labels()
        assert len(labels) == 24
        assert labels[0] == "00:00-01:00"


class TestDistance:
    def test_plain_distance(self):
        assert HOURLY.distance(9, 11) == 2

    def test_circular_wraps_midnight(self):
        assert HOURLY.distance(23, 0) == 1
        assert HOURLY.distance(0, 23) == 1
        assert HOURLY.distance(1, 22) == 3

    def test_max_distance_is_half_day(self):
        assert HOURLY.distance(0, 12) == 12
