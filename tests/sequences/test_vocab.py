"""Tests for the interning vocabulary and the database's packed storage."""

import pickle
from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequences import ItemVocab, SequenceDatabase, TimedItem
from repro.sequences.vocab import vocab_sort_key

labels = st.sampled_from(["Home", "Work", "Eatery", "Gym", "Park"])
timed_items = st.builds(TimedItem, bin=st.integers(0, 23), label=labels)
timed_sequences = st.lists(st.lists(timed_items, max_size=6), max_size=8)


class TestItemVocab:
    def test_ids_are_dense_and_sorted_by_label_then_bin(self):
        items = [
            TimedItem(9, "Work"),
            TimedItem(7, "Home"),
            TimedItem(22, "Home"),
            TimedItem(12, "Eatery"),
        ]
        vocab = ItemVocab(items)
        assert len(vocab) == 4
        assert vocab.items == (
            TimedItem(12, "Eatery"),
            TimedItem(7, "Home"),
            TimedItem(22, "Home"),
            TimedItem(9, "Work"),
        )
        assert [vocab.encode(item) for item in vocab.items] == [0, 1, 2, 3]
        assert vocab.items == tuple(sorted(items, key=vocab_sort_key))

    def test_construction_order_does_not_matter(self):
        items = [TimedItem(b, l) for b in (3, 1, 2) for l in ("x", "y")]
        assert ItemVocab(items) == ItemVocab(reversed(items))
        assert ItemVocab(items + items) == ItemVocab(items)

    def test_unknown_item_raises_and_get_defaults(self):
        vocab = ItemVocab([TimedItem(9, "Work")])
        with pytest.raises(KeyError, match="not in this vocabulary"):
            vocab.encode(TimedItem(9, "Home"))
        assert vocab.get(TimedItem(9, "Home")) == -1
        assert vocab.get(TimedItem(9, "Home"), default=-7) == -7
        assert vocab.get(TimedItem(9, "Work")) == 0

    def test_decode_out_of_range_raises(self):
        vocab = ItemVocab([TimedItem(9, "Work")])
        with pytest.raises(IndexError):
            vocab.decode(1)
        with pytest.raises(IndexError):
            vocab.decode(-1)

    def test_decode_returns_the_shared_instance(self):
        vocab = ItemVocab([TimedItem(9, "Work"), TimedItem(7, "Home")])
        assert vocab.decode(0) is vocab.decode(0)
        seq = vocab.decode_sequence(array("i", [0, 1, 0]))
        assert seq[0] is seq[2]

    def test_sequence_round_trip(self):
        vocab = ItemVocab([TimedItem(b, "Home") for b in range(5)])
        original = (TimedItem(3, "Home"), TimedItem(0, "Home"), TimedItem(3, "Home"))
        encoded = vocab.encode_sequence(original)
        assert isinstance(encoded, array) and encoded.typecode == "i"
        assert vocab.decode_sequence(encoded) == original

    def test_heterogeneous_alphabet_falls_back_deterministically(self):
        mixed = ["b", 2, "a", 1]
        assert ItemVocab(mixed).items == ItemVocab(reversed(mixed)).items

    def test_pickle_round_trip_preserves_ids(self):
        vocab = ItemVocab([TimedItem(9, "Work"), TimedItem(7, "Home")])
        clone = pickle.loads(pickle.dumps(vocab))
        assert clone == vocab
        assert [clone.encode(item) for item in vocab.items] == [0, 1]

    @given(st.lists(timed_items, max_size=30))
    @settings(max_examples=50)
    def test_encode_decode_inverse(self, items):
        vocab = ItemVocab(items)
        for item in set(items):
            assert vocab.decode(vocab.encode(item)) == item
        assert len(vocab) == len(set(items))


class TestDatabasePackedStorage:
    def test_storage_round_trips_through_from_storage(self):
        db = SequenceDatabase([
            [TimedItem(9, "Work"), TimedItem(19, "Home")],
            [],
            [TimedItem(9, "Work")],
        ])
        flat, offsets = db.storage
        clone = SequenceDatabase.from_storage(flat, offsets, db.vocab, name=db.name)
        assert clone.sequences == db.sequences
        assert len(clone) == 3
        assert clone[1] == ()

    def test_from_encoded_matches_object_construction(self):
        sequences = [[TimedItem(9, "Work")], [TimedItem(9, "Work"), TimedItem(7, "Home")]]
        db = SequenceDatabase(sequences)
        rebuilt = SequenceDatabase.from_encoded(db.encoded, db.vocab, name=db.name)
        assert rebuilt.sequences == db.sequences
        assert rebuilt.storage == db.storage

    def test_pickle_ships_only_packed_state(self):
        db = SequenceDatabase([[TimedItem(9, "Work")], [TimedItem(7, "Home")]])
        _ = db.sequences  # populate the decoded cache; it must not travel
        clone = pickle.loads(pickle.dumps(db))
        assert clone.sequences == db.sequences
        assert clone.vocab == db.vocab

    @given(timed_sequences)
    @settings(max_examples=50)
    def test_object_view_survives_the_packed_representation(self, seqs):
        db = SequenceDatabase(seqs)
        assert db.sequences == tuple(tuple(s) for s in seqs)
        assert db.total_items() == sum(len(s) for s in seqs)
