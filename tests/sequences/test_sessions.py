"""Tests for sessionization and item labeling."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.data import CheckIn, CheckInDataset
from repro.sequences import (
    HOURLY,
    TimedItem,
    make_labeler,
    sessionize_dataset,
    sessionize_user,
)
from repro.taxonomy import AbstractionLevel

UTC = timezone.utc


def checkin(user, day, hour, minute=0, venue="v1", cat_name="Thai Restaurant",
            cat_id=None, tz=0):
    return CheckIn(
        user_id=user, venue_id=venue,
        category_id=cat_id or "", category_name=cat_name,
        lat=40.7, lon=-74.0, tz_offset_min=tz,
        timestamp=datetime(2012, 4, day, hour, minute, 0, tzinfo=UTC),
    )


class TestLabelers:
    def test_venue_level(self, taxonomy):
        labeler = make_labeler(taxonomy, AbstractionLevel.VENUE)
        assert labeler(checkin("u", 1, 9, venue="vX")) == "vX"

    def test_leaf_level(self, taxonomy):
        labeler = make_labeler(taxonomy, AbstractionLevel.LEAF)
        assert labeler(checkin("u", 1, 9)) == "Thai Restaurant"

    def test_root_level_resolves_by_name(self, taxonomy):
        labeler = make_labeler(taxonomy, AbstractionLevel.ROOT)
        assert labeler(checkin("u", 1, 9)) == "Eatery"

    def test_root_level_resolves_by_id(self, taxonomy):
        thai_id = taxonomy.get_by_name("Thai Restaurant").category_id
        labeler = make_labeler(taxonomy, AbstractionLevel.ROOT)
        assert labeler(checkin("u", 1, 9, cat_id=thai_id, cat_name="whatever")) == "Eatery"

    def test_root_level_unknown_falls_back(self, taxonomy):
        labeler = make_labeler(taxonomy, AbstractionLevel.ROOT)
        assert labeler(checkin("u", 1, 9, cat_name="Klingon Embassy")) == "Klingon Embassy"


class TestSessionize:
    def make_dataset(self):
        return CheckInDataset([
            checkin("u", 1, 9), checkin("u", 1, 12, cat_name="Supermarket"),
            checkin("u", 2, 9), checkin("u", 2, 9, minute=20),  # same bin dupe
            checkin("u", 3, 22),
            checkin("w", 1, 10),
        ])

    def test_one_session_per_day(self, taxonomy):
        labeler = make_labeler(taxonomy, AbstractionLevel.LEAF)
        sessions = sessionize_user(self.make_dataset(), "u", labeler)
        assert [s.day.day for s in sessions] == [1, 2, 3]

    def test_items_in_time_order(self, taxonomy):
        labeler = make_labeler(taxonomy, AbstractionLevel.LEAF)
        sessions = sessionize_user(self.make_dataset(), "u", labeler)
        assert sessions[0].items == (
            TimedItem(9, "Thai Restaurant"), TimedItem(12, "Supermarket"),
        )

    def test_consecutive_duplicates_collapsed(self, taxonomy):
        labeler = make_labeler(taxonomy, AbstractionLevel.LEAF)
        sessions = sessionize_user(self.make_dataset(), "u", labeler)
        assert sessions[1].items == (TimedItem(9, "Thai Restaurant"),)

    def test_dedupe_disabled(self, taxonomy):
        labeler = make_labeler(taxonomy, AbstractionLevel.LEAF)
        sessions = sessionize_user(self.make_dataset(), "u", labeler,
                                   dedupe_consecutive=False)
        assert len(sessions[1].items) == 2

    def test_min_items_drops_thin_days(self, taxonomy):
        labeler = make_labeler(taxonomy, AbstractionLevel.LEAF)
        sessions = sessionize_user(self.make_dataset(), "u", labeler, min_items=2)
        assert [s.day.day for s in sessions] == [1]

    def test_min_items_invalid(self, taxonomy):
        labeler = make_labeler(taxonomy, AbstractionLevel.LEAF)
        with pytest.raises(ValueError):
            sessionize_user(self.make_dataset(), "u", labeler, min_items=0)

    def test_local_days_respect_timezone(self, taxonomy):
        # 02:00 UTC with a -4 h offset is 22:00 on the *previous* local day.
        ds = CheckInDataset([
            checkin("u", 1, 23, tz=-240),
            CheckIn(user_id="u", venue_id="v1", category_id="",
                    category_name="Thai Restaurant", lat=40.7, lon=-74.0,
                    tz_offset_min=-240,
                    timestamp=datetime(2012, 4, 2, 2, 0, 0, tzinfo=UTC)),
        ])
        labeler = make_labeler(taxonomy, AbstractionLevel.LEAF)
        sessions = sessionize_user(ds, "u", labeler)
        assert len(sessions) == 1  # both land on the same local day

    def test_sessionize_dataset_covers_all_users(self, taxonomy):
        labeler = make_labeler(taxonomy, AbstractionLevel.LEAF)
        by_user = sessionize_dataset(self.make_dataset(), labeler)
        assert set(by_user) == {"u", "w"}

    def test_session_keeps_raw_checkins(self, taxonomy):
        labeler = make_labeler(taxonomy, AbstractionLevel.LEAF)
        sessions = sessionize_user(self.make_dataset(), "u", labeler)
        assert len(sessions[0].checkins) == 2
        assert len(sessions[0]) == 2


class TestDayKinds:
    def make_week(self, taxonomy):
        # 2012-04-02 is a Monday; 2012-04-07/08 the weekend.
        ds = CheckInDataset([
            checkin("u", d, 9) for d in range(2, 9)
        ])
        labeler = make_labeler(taxonomy, AbstractionLevel.LEAF)
        return ds, labeler

    def test_weekday_filter(self, taxonomy):
        ds, labeler = self.make_week(taxonomy)
        sessions = sessionize_user(ds, "u", labeler, day_kind="weekday")
        assert [s.day.day for s in sessions] == [2, 3, 4, 5, 6]

    def test_weekend_filter(self, taxonomy):
        ds, labeler = self.make_week(taxonomy)
        sessions = sessionize_user(ds, "u", labeler, day_kind="weekend")
        assert [s.day.day for s in sessions] == [7, 8]

    def test_all_is_union(self, taxonomy):
        ds, labeler = self.make_week(taxonomy)
        n_all = len(sessionize_user(ds, "u", labeler, day_kind="all"))
        n_wd = len(sessionize_user(ds, "u", labeler, day_kind="weekday"))
        n_we = len(sessionize_user(ds, "u", labeler, day_kind="weekend"))
        assert n_all == n_wd + n_we

    def test_unknown_kind_raises(self, taxonomy):
        ds, labeler = self.make_week(taxonomy)
        with pytest.raises(ValueError, match="unknown day kind"):
            sessionize_user(ds, "u", labeler, day_kind="holiday")
