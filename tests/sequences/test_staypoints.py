"""Tests for stay-point detection."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.geo import GeoPoint
from repro.sequences import Fix, detect_stay_points

UTC = timezone.utc
T0 = datetime(2012, 4, 1, 9, 0, 0, tzinfo=UTC)


def fix(minutes, lat, lon):
    return Fix(timestamp=T0 + timedelta(minutes=minutes), lat=lat, lon=lon)


class TestDetection:
    def test_single_dwell(self):
        # 30 minutes around one spot, then a jump away.
        trace = [fix(i * 5, 40.7000 + 0.0001 * (i % 2), -74.0000) for i in range(7)]
        trace.append(fix(40, 40.7500, -74.0000))
        stays = detect_stay_points(trace, distance_threshold_m=200, time_threshold_s=20 * 60)
        assert len(stays) == 1
        stay = stays[0]
        assert stay.n_fixes == 7
        assert stay.duration_s == pytest.approx(30 * 60)
        assert stay.location.distance_to(GeoPoint(40.7, -74.0)) < 50

    def test_moving_trace_has_no_stays(self):
        trace = [fix(i * 5, 40.70 + 0.01 * i, -74.0) for i in range(10)]
        assert detect_stay_points(trace) == []

    def test_two_separate_dwells(self):
        home = [fix(i * 10, 40.70, -74.00) for i in range(4)]
        work = [fix(60 + i * 10, 40.75, -73.95) for i in range(4)]
        stays = detect_stay_points(home + work, 200, 20 * 60)
        assert len(stays) == 2
        assert stays[0].departure <= stays[1].arrival

    def test_short_dwell_below_time_threshold(self):
        trace = [fix(0, 40.70, -74.00), fix(5, 40.70, -74.00), fix(10, 40.80, -74.0)]
        assert detect_stay_points(trace, 200, 20 * 60) == []

    def test_empty_trace(self):
        assert detect_stay_points([]) == []

    def test_unsorted_raises(self):
        with pytest.raises(ValueError, match="sorted"):
            detect_stay_points([fix(10, 40.7, -74.0), fix(0, 40.7, -74.0)])

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            detect_stay_points([], distance_threshold_m=0)
        with pytest.raises(ValueError):
            detect_stay_points([], time_threshold_s=-1)

    def test_distance_threshold_widens_cluster(self):
        # Points drifting ~150 m apart: tight threshold splits, loose keeps one.
        trace = [fix(i * 10, 40.70 + 0.0013 * i, -74.00) for i in range(6)]
        loose = detect_stay_points(trace, distance_threshold_m=800, time_threshold_s=20 * 60)
        tight = detect_stay_points(trace, distance_threshold_m=100, time_threshold_s=20 * 60)
        assert len(loose) >= 1
        assert len(tight) == 0
