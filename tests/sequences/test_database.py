"""Tests for the sequence database, including hypothesis properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequences import SequenceDatabase, build_all_databases, build_user_database, is_subsequence
from repro.taxonomy import AbstractionLevel

items = st.integers(min_value=0, max_value=5)
sequences = st.lists(items, min_size=0, max_size=8)


class TestIsSubsequence:
    def test_basic(self):
        assert is_subsequence("ac", "abc")
        assert is_subsequence("abc", "abc")
        assert not is_subsequence("ca", "abc")
        assert not is_subsequence("aa", "abc")

    def test_empty_pattern_always_matches(self):
        assert is_subsequence([], [1, 2, 3])
        assert is_subsequence([], [])

    @given(sequences, sequences)
    @settings(max_examples=80)
    def test_concatenation_contains_both(self, a, b):
        assert is_subsequence(a, a + b)
        assert is_subsequence(b, a + b)

    @given(sequences)
    @settings(max_examples=50)
    def test_reflexive(self, seq):
        assert is_subsequence(seq, seq)

    @given(sequences, st.data())
    @settings(max_examples=50)
    def test_random_subsequence_matches(self, seq, data):
        mask = data.draw(st.lists(st.booleans(), min_size=len(seq), max_size=len(seq)))
        sub = [x for x, keep in zip(seq, mask) if keep]
        assert is_subsequence(sub, seq)


class TestSequenceDatabase:
    @pytest.fixture
    def db(self):
        return SequenceDatabase([
            ["a", "b", "c"],
            ["a", "c"],
            ["b", "c"],
            ["a", "b", "c", "a"],
        ])

    def test_protocol(self, db):
        assert len(db) == 4
        assert db[0] == ("a", "b", "c")
        assert len(list(db)) == 4

    def test_support_counts(self, db):
        assert db.support_count(["a"]) == 3
        assert db.support_count(["a", "c"]) == 3
        assert db.support_count(["c", "a"]) == 1
        assert db.support(["b", "c"]) == pytest.approx(0.75)

    def test_empty_db_support(self):
        assert SequenceDatabase([]).support(["a"]) == 0.0

    def test_item_frequencies_count_once_per_sequence(self, db):
        freq = db.item_frequencies()
        assert freq["a"] == 3  # appears twice in seq 4 but counted once
        assert freq["c"] == 4

    def test_alphabet_sorted(self, db):
        assert db.alphabet() == ["a", "b", "c"]

    def test_lengths(self, db):
        assert db.total_items() == 11
        assert db.avg_sequence_length() == pytest.approx(2.75)
        assert SequenceDatabase([]).avg_sequence_length() == 0.0

    def test_min_count(self, db):
        assert db.min_count(0.5) == 2
        assert db.min_count(0.51) == 3
        assert db.min_count(1.0) == 4
        assert db.min_count(0.01) == 1

    def test_min_count_invalid(self, db):
        with pytest.raises(ValueError):
            db.min_count(0.0)
        with pytest.raises(ValueError):
            db.min_count(1.5)


class TestBuilders:
    def test_build_user_database(self, small_ds, taxonomy):
        uid = small_ds.user_ids()[0]
        db = build_user_database(small_ds, uid, taxonomy, AbstractionLevel.ROOT)
        # One sequence per active day.
        active_days = len({c.local_date for c in small_ds.for_user(uid)})
        assert len(db) == active_days

    def test_build_all_covers_users(self, small_ds, taxonomy, user_databases):
        assert set(user_databases) == set(small_ds.user_ids())

    def test_levels_change_alphabet(self, small_ds, taxonomy):
        uid = max(small_ds.user_ids(), key=lambda u: len(small_ds.for_user(u)))
        root_db = build_user_database(small_ds, uid, taxonomy, AbstractionLevel.ROOT)
        venue_db = build_user_database(small_ds, uid, taxonomy, AbstractionLevel.VENUE)
        root_labels = {item.label for seq in root_db for item in seq}
        venue_labels = {item.label for seq in venue_db for item in seq}
        assert len(venue_labels) >= len(root_labels)
        assert all(label.startswith("v") for label in venue_labels)
