"""Tests for the serving response cache (keys, LRU, validators, threads)."""

import gzip
import threading

import pytest

from repro.obs import observed
from repro.web import ResponseCache, dataset_fingerprint
from repro.web.cache import MIN_GZIP_BYTES

BIG_BODY = (b'{"cells": [' + b", ".join(b'{"n": 1}' for _ in range(200)) + b"]}")


@pytest.fixture()
def cache():
    return ResponseCache("fp0123456789abcd", max_entries=4)


class TestKeys:
    def test_keys_are_fingerprint_prefixed(self, cache):
        key = cache.key("GET", "/api/crowd/9", "")
        assert key[0] == cache.fingerprint
        assert key == (cache.fingerprint, "GET", "/api/crowd/9", "")

    def test_fingerprint_is_stable_and_sensitive(self, pipeline_result):
        first = dataset_fingerprint(pipeline_result)
        assert first == dataset_fingerprint(pipeline_result)
        assert len(first) == 16

    def test_different_fingerprints_never_alias(self, cache):
        other = ResponseCache("other_fingerprint")
        assert cache.key("GET", "/", "") != other.key("GET", "/", "")


class TestStoreAndLookup:
    def test_miss_then_hit(self, cache):
        key = cache.key("GET", "/x", "")
        assert cache.lookup(key) is None
        stored = cache.store(key, b"body", "application/json")
        found = cache.lookup(key)
        assert found is stored
        assert found.body == b"body"
        assert found.content_type == "application/json"

    def test_etag_is_strong_and_key_dependent(self, cache):
        a = cache.store(cache.key("GET", "/a", ""), b"same", "text/plain")
        b = cache.store(cache.key("GET", "/b", ""), b"same", "text/plain")
        assert a.etag.startswith('"') and a.etag.endswith('"')
        assert a.etag != b.etag

    def test_small_bodies_get_no_gzip_twin(self, cache):
        entry = cache.store(cache.key("GET", "/s", ""), b"tiny", "text/plain")
        assert len(b"tiny") < MIN_GZIP_BYTES
        assert entry.gzip_body is None

    def test_large_bodies_get_smaller_gzip_twin(self, cache):
        entry = cache.store(cache.key("GET", "/l", ""), BIG_BODY, "application/json")
        assert entry.gzip_body is not None
        assert len(entry.gzip_body) < len(entry.body)
        assert gzip.decompress(entry.gzip_body) == BIG_BODY

    def test_gzip_twin_is_deterministic(self, cache):
        a = cache.store(cache.key("GET", "/l", ""), BIG_BODY, "application/json")
        b = cache.store(cache.key("GET", "/l", ""), BIG_BODY, "application/json")
        assert a.gzip_body == b.gzip_body  # mtime pinned: no clock in the bytes


class TestLRU:
    def test_eviction_order_is_least_recently_used(self, cache):
        keys = [cache.key("GET", f"/{i}", "") for i in range(5)]
        for key in keys[:4]:
            cache.store(key, b"x", "text/plain")
        cache.lookup(keys[0])  # refresh 0 so 1 is now the LRU entry
        cache.store(keys[4], b"x", "text/plain")
        assert len(cache) == 4
        assert cache.lookup(keys[1]) is None
        assert cache.lookup(keys[0]) is not None

    def test_max_entries_validated(self):
        with pytest.raises(ValueError):
            ResponseCache("fp", max_entries=0)


class TestInvalidation:
    def test_invalidate_drops_everything_and_bumps_generation(self, cache):
        key = cache.key("GET", "/x", "")
        old = cache.store(key, b"body", "text/plain")
        assert cache.invalidate() == 1
        assert len(cache) == 0
        assert cache.generation == 1
        new = cache.store(key, b"body", "text/plain")
        assert new.etag != old.etag  # generation is hashed into the ETag

    def test_store_raced_by_invalidate_is_not_kept(self, cache, monkeypatch):
        key = cache.key("GET", "/x", "")
        real_build = cache._build_entry

        def racing_build(*args, **kwargs):
            entry = real_build(*args, **kwargs)
            cache.invalidate()  # the refresh lands while the entry is built
            return entry

        monkeypatch.setattr(cache, "_build_entry", racing_build)
        entry = cache.store(key, b"old", "text/plain")
        assert entry.body == b"old"  # the caller still gets a usable response
        assert cache.lookup(key) is None  # but the stale entry was discarded

    def test_info_payload(self, cache):
        cache.store(cache.key("GET", "/x", ""), b"body", "text/plain")
        info = cache.info()
        assert info["entries"] == 1
        assert info["payload_bytes"] >= 4
        assert info["generation"] == 0
        assert info["fingerprint"] == cache.fingerprint
        assert "GMT" in info["last_modified"]


class TestMetrics:
    def test_hit_miss_and_eviction_counters(self):
        cache = ResponseCache("fp", max_entries=1)
        with observed() as o:
            key_a = cache.key("GET", "/a", "")
            key_b = cache.key("GET", "/b", "")
            cache.lookup(key_a)
            cache.store(key_a, b"x", "text/plain")
            cache.lookup(key_a)
            cache.store(key_b, b"x", "text/plain")  # evicts /a
            cache.invalidate()
            registry = o.registry
            assert registry.counter("repro_web_cache_misses_total") == 1
            assert registry.counter("repro_web_cache_hits_total") == 1
            assert registry.counter("repro_web_cache_evictions_total") == 1
            assert registry.counter("repro_web_cache_invalidations_total") == 1
            assert registry.gauge("repro_web_cache_entries_size") == 0


class TestThreadSafety:
    def test_concurrent_stores_and_lookups_stay_bounded(self):
        cache = ResponseCache("fp", max_entries=8)
        errors = []

        def hammer(worker: int) -> None:
            try:
                for i in range(200):
                    key = cache.key("GET", f"/{(worker + i) % 16}", "")
                    if cache.lookup(key) is None:
                        cache.store(key, BIG_BODY, "application/json")
                    if i % 50 == 0 and worker == 0:
                        cache.invalidate()
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(repr(exc))

        threads = [threading.Thread(target=hammer, args=(w,)) for w in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads)
        assert errors == []
        assert len(cache) <= 8
        assert cache.generation >= 4
