"""Tests for routing and the live HTTP server."""

import json
import urllib.error
import urllib.request

import pytest

from repro.web import (
    RETRY_AFTER_S,
    CrowdWebAPI,
    CrowdWebServer,
    Pages,
    route_request,
)


@pytest.fixture(scope="module")
def handlers(pipeline_result):
    return CrowdWebAPI(pipeline_result), Pages(pipeline_result)


class TestRouting:
    @pytest.mark.parametrize("path,content_type", [
        ("/", "text/html; charset=utf-8"),
        ("/users", "text/html; charset=utf-8"),
        ("/city", "text/html; charset=utf-8"),
        ("/city?window=3", "text/html; charset=utf-8"),
        ("/animation", "text/html; charset=utf-8"),
        ("/occupancy", "text/html; charset=utf-8"),
        ("/communities", "text/html; charset=utf-8"),
        ("/analytics", "text/html; charset=utf-8"),
        ("/api/users", "application/json"),
        ("/api/crowd", "application/json"),
        ("/api/crowd/9", "application/json"),
        ("/api/flows/8", "application/json"),
        ("/api/animation", "application/json"),
        ("/api/stats", "application/json"),
        ("/api/occupancy", "application/json"),
        ("/api/communities", "application/json"),
        ("/api/communities?min_similarity=0.2", "application/json"),
        ("/api/tiles", "application/json"),
        ("/api/tiles/0/0/0", "application/json"),
        ("/api/tiles/1/1/0?window=9", "application/json"),
        ("/city?window=3&zoom=1", "text/html; charset=utf-8"),
    ])
    def test_routes_ok(self, handlers, path, content_type):
        status, ctype, body = route_request(*handlers, path)
        assert status == 200
        assert ctype == content_type
        assert body

    def test_user_page(self, handlers, pipeline_result):
        uid = sorted(pipeline_result.profiles)[0]
        status, _, body = route_request(*handlers, f"/user/{uid}")
        assert status == 200
        assert uid in body

    def test_unknown_user_404(self, handlers):
        status, _, body = route_request(*handlers, "/user/ghost")
        assert status == 404
        assert "ghost" in body

    def test_unknown_path_404(self, handlers):
        status, _, _ = route_request(*handlers, "/nope/deep")
        assert status == 404

    def test_bad_params_400(self, handlers):
        status, _, _ = route_request(*handlers, "/api/crowd/banana")
        assert status == 400
        status, _, _ = route_request(*handlers, "/api/crowd/999")
        assert status == 400

    def test_bad_tile_params_400(self, handlers):
        status, _, _ = route_request(*handlers, "/api/tiles/9/0/0")
        assert status == 400  # zoom beyond max_zoom
        status, _, _ = route_request(*handlers, "/api/tiles/1/5/0")
        assert status == 400  # x outside [0, 2^z)
        status, _, _ = route_request(*handlers, "/api/tiles/1/a/0")
        assert status == 400

    def test_city_window_clamped(self, handlers):
        status, _, _ = route_request(*handlers, "/city?window=999")
        assert status == 200

    def test_metrics_route(self, handlers, pipeline_result):
        uid = sorted(pipeline_result.profiles)[0]
        status, _, body = route_request(*handlers, f"/api/metrics/{uid}")
        assert status == 200
        assert json.loads(body)["user_id"] == uid
        status, _, _ = route_request(*handlers, "/api/metrics/ghost")
        assert status == 404

    def test_json_payloads_parse(self, handlers):
        _, _, body = route_request(*handlers, "/api/crowd/9")
        payload = json.loads(body)
        assert payload["window"] == "09:00-10:00"


class TestLiveServer:
    def test_round_trip(self, pipeline_result):
        server = CrowdWebServer(pipeline_result, port=0).start()
        try:
            with urllib.request.urlopen(server.url + "/api/stats", timeout=10) as resp:
                assert resp.status == 200
                payload = json.loads(resp.read())
                assert "check-ins" in payload
            with urllib.request.urlopen(server.url + "/", timeout=10) as resp:
                assert b"CrowdWeb" in resp.read()
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(server.url + "/user/ghost", timeout=10)
        finally:
            server.stop()


class TestConcurrency:
    def test_parallel_requests_all_succeed(self, pipeline_result):
        import concurrent.futures

        server = CrowdWebServer(pipeline_result, port=0).start()
        paths = ["/api/users", "/api/crowd", "/api/stats", "/", "/users",
                 "/api/crowd/9", "/city"] * 4
        try:
            def fetch(path):
                with urllib.request.urlopen(server.url + path, timeout=15) as resp:
                    return resp.status

            with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
                statuses = list(pool.map(fetch, paths))
            assert statuses == [200] * len(paths)
        finally:
            server.stop()

    def test_server_stop_is_idempotent_safe(self, pipeline_result):
        server = CrowdWebServer(pipeline_result, port=0).start()
        server.stop()
        # Stopping a stopped server must not hang or raise.
        server._thread = None


class TestReadiness:
    """The bind-before-build contract: 503 + Retry-After while preparing."""

    def test_503_while_precompute_in_flight(self, pipeline_result):
        import threading

        gate = threading.Event()

        def factory():
            gate.wait(10)
            return pipeline_result

        server = CrowdWebServer(port=0, result_factory=factory).start()
        try:
            request = urllib.request.Request(server.url + "/api/stats")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 503
            assert excinfo.value.headers["Retry-After"] == str(RETRY_AFTER_S)
            payload = json.loads(excinfo.value.read())
            assert "warming up" in payload["error"]

            gate.set()
            assert server.wait_ready(timeout=10)
            with urllib.request.urlopen(server.url + "/api/stats",
                                        timeout=10) as resp:
                assert resp.status == 200
        finally:
            gate.set()
            server.stop()

    def test_failed_build_serves_500(self):
        import threading

        failed = threading.Event()

        def factory():
            failed.set()
            raise RuntimeError("synthetic pipeline failure")

        server = CrowdWebServer(port=0, result_factory=factory).start()
        try:
            assert failed.wait(10)
            assert server.wait_ready(timeout=10) is False
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(server.url + "/", timeout=10)
            assert excinfo.value.code == 500
            assert "synthetic pipeline failure" in json.loads(excinfo.value.read())["error"]
        finally:
            server.stop()

    def test_result_and_factory_are_exclusive(self, pipeline_result):
        with pytest.raises(ValueError):
            CrowdWebServer(pipeline_result, result_factory=lambda: pipeline_result)
        with pytest.raises(ValueError):
            CrowdWebServer()

    def test_warm_precomputes_the_hot_key_space(self, pipeline_result):
        from repro.web import CrowdWebApp

        app = CrowdWebApp(pipeline_result)
        warmed = app.warm()
        assert warmed == len(app.warm_paths())
        assert len(app.cache) == warmed
        # A warmed route is a pure cache hit: no further render happens.
        from repro.obs import observed

        with observed() as o:
            status, _headers, _body = app.handle("GET", "/api/crowd/9", None)
            assert status == 200
            assert o.registry.counter("repro_web_renders_total") == 0
            assert o.registry.counter("repro_web_cache_hits_total") == 1


class TestCacheRoutes:
    def test_cache_info_route(self, pipeline_result):
        from repro.web import CrowdWebApp

        app = CrowdWebApp(pipeline_result)
        app.handle("GET", "/api/users", None)
        status, _headers, body = app.handle("GET", "/api/cache", None)
        assert status == 200
        info = json.loads(body)
        assert info["entries"] == 1
        assert info["generation"] == 0
        assert info["fingerprint"] == app.fingerprint

    def test_metrics_route_is_never_cached(self, pipeline_result):
        from repro.obs import observed
        from repro.web import CrowdWebApp

        app = CrowdWebApp(pipeline_result)
        with observed():
            app.handle("GET", "/api/users", None)
            status, headers, body = app.handle("GET", "/metrics", None)
            assert status == 200
            assert ("Cache-Control", "no-store") in headers
            first = json.loads(body)
            _status, _headers, body = app.handle("GET", "/metrics", None)
            second = json.loads(body)
        # The second snapshot saw more requests — not a replay of the first.
        total = lambda payload: sum(  # noqa: E731
            payload["counters"]["repro_web_requests_total"].values()
        )
        assert total(second) > total(first)


class TestSpikesRoute:
    def test_route(self, handlers):
        status, ctype, body = route_request(*handlers, "/api/spikes?z=3.5")
        assert status == 200
        payload = json.loads(body)
        assert payload["z_threshold"] == 3.5


class TestObservability:
    def test_metrics_endpoint_when_disabled(self, handlers):
        status, ctype, body = route_request(*handlers, "/metrics")
        assert status == 200
        assert ctype == "application/json"
        payload = json.loads(body)
        assert payload["enabled"] is False
        assert payload["counters"] == {}

    def test_traced_requests_feed_the_metrics_endpoint(self, handlers,
                                                       pipeline_result):
        from repro.obs import observed

        uid = sorted(pipeline_result.profiles)[0]
        with observed():
            route_request(*handlers, "/api/users")
            route_request(*handlers, f"/api/user/{uid}")
            route_request(*handlers, f"/api/user/{uid}")
            route_request(*handlers, "/api/crowd/banana")  # a 400
            status, _, body = route_request(*handlers, "/metrics")
        assert status == 200
        payload = json.loads(body)
        assert payload["enabled"] is True
        requests = payload["counters"]["repro_web_requests_total"]
        # Endpoint labels are normalized: ids collapse to :id.
        assert requests["/api/users"] == 1
        assert requests["/api/user/:id"] == 2
        assert payload["counters"]["repro_web_errors_total"]["/api/crowd/:id"] == 1
        latency = payload["histograms"]["repro_web_request_latency_s"]
        assert latency["/api/user/:id"]["count"] == 2
        assert len(latency["/api/user/:id"]["counts"]) == \
            len(latency["/api/user/:id"]["buckets"]) + 1

    def test_request_spans_record_endpoint_and_status(self, handlers):
        from repro.obs import observed

        with observed() as o:
            route_request(*handlers, "/user/ghost")
        (root,) = o.tracer.export()
        assert root["name"] == "web.request"
        assert root["attrs"]["endpoint"] == "/user/:id"
        assert root["attrs"]["status"] == 404


class TestServeFromProfiles:
    def test_prepare_from_profiles(self, pipeline_result, small_ds, tmp_path):
        from repro.experiments import small_pipeline_config
        from repro.persistence import save_profiles
        from repro.web.__main__ import prepare_from_profiles

        path = save_profiles(pipeline_result.profiles, tmp_path / "p.json")
        result = prepare_from_profiles(small_ds, small_pipeline_config(), path)
        assert result.n_users == pipeline_result.n_users
        # The rebuilt platform serves identically.
        api = CrowdWebAPI(result)
        payload = api.users()
        assert payload["n_users"] == pipeline_result.n_users
        server = CrowdWebServer(result, port=0).start()
        try:
            with urllib.request.urlopen(server.url + "/api/crowd", timeout=10) as resp:
                assert resp.status == 200
        finally:
            server.stop()
