"""Tests for the tile/LOD index: exact partitioning, coarsening, payloads."""

import pytest

from repro.web import DEFAULT_MAX_ZOOM, TileIndex


@pytest.fixture(scope="module")
def tiles(pipeline_result):
    return TileIndex(pipeline_result.grid, pipeline_result.timeline)


class TestGeometry:
    def test_factor_halves_per_zoom(self, tiles):
        assert tiles.max_zoom == DEFAULT_MAX_ZOOM
        factors = [tiles.factor(z) for z in range(tiles.max_zoom + 1)]
        assert factors[-1] == 1  # max zoom: a block is a microcell
        for coarse, fine in zip(factors, factors[1:]):
            assert coarse == 2 * fine

    def test_factor_rejects_out_of_range_zoom(self, tiles):
        with pytest.raises(ValueError):
            tiles.factor(-1)
        with pytest.raises(ValueError):
            tiles.factor(tiles.max_zoom + 1)

    def test_block_dims_cover_the_grid(self, tiles):
        for z in range(tiles.max_zoom + 1):
            b_rows, b_cols = tiles.block_dims(z)
            f = tiles.factor(z)
            assert b_rows * f >= tiles.grid.n_rows > (b_rows - 1) * f
            assert b_cols * f >= tiles.grid.n_cols > (b_cols - 1) * f

    def test_every_block_lands_in_exactly_one_tile(self, tiles):
        """The partition property the tile-boundary HTTP test relies on."""
        for z in range(tiles.max_zoom + 1):
            b_rows, b_cols = tiles.block_dims(z)
            n = 2 ** z
            seen = {}
            for row in range(b_rows):
                for col in range(b_cols):
                    x, y = tiles.tile_of_block(z, (row, col))
                    assert 0 <= x < n and 0 <= y < n
                    seen[(row, col)] = (x, y)
            assert len(seen) == b_rows * b_cols

    def test_block_bbox_nested_in_grid_bbox(self, tiles):
        grid_bbox = tiles.grid.bbox
        for z in (0, tiles.max_zoom):
            b_rows, b_cols = tiles.block_dims(z)
            min_lat, min_lon, max_lat, max_lon = tiles.block_bbox(
                z, (b_rows - 1, b_cols - 1)
            )
            assert min_lat < max_lat and min_lon < max_lon
            assert min_lat >= grid_bbox.min_lat - 1e-9
            assert max_lon <= grid_bbox.max_lon + 1e-9


class TestAggregates:
    def test_blocks_preserve_user_counts(self, tiles, pipeline_result):
        for window, snapshot in enumerate(pipeline_result.timeline):
            for z in range(tiles.max_zoom + 1):
                blocks = tiles.blocks(window, z)
                assert sum(count for count, _ in blocks.values()) == snapshot.n_users

    def test_max_zoom_blocks_are_microcells(self, tiles, pipeline_result):
        window = max(
            range(len(pipeline_result.timeline)),
            key=lambda i: pipeline_result.timeline[i].n_users,
        )
        blocks = tiles.blocks(window, tiles.max_zoom)
        cells = {p.cell for p in pipeline_result.timeline[window].placements}
        assert set(blocks) == cells

    def test_blocks_memoized_and_invalidated(self, tiles):
        first = tiles.blocks(0, 1)
        assert tiles.blocks(0, 1) is first
        tiles.invalidate()
        assert tiles.blocks(0, 1) is not first
        assert tiles.blocks(0, 1) == first

    def test_window_out_of_range(self, tiles, pipeline_result):
        with pytest.raises(ValueError):
            tiles.blocks(len(pipeline_result.timeline), 0)
        with pytest.raises(ValueError):
            tiles.blocks(-1, 0)


class TestTilePayloads:
    def _busiest_window(self, pipeline_result) -> int:
        return max(
            range(len(pipeline_result.timeline)),
            key=lambda i: pipeline_result.timeline[i].n_users,
        )

    def test_tiles_partition_the_crowd(self, tiles, pipeline_result):
        """Every user appears in exactly one tile at every zoom level."""
        window = self._busiest_window(pipeline_result)
        expected = pipeline_result.timeline[window].n_users
        for z in range(tiles.max_zoom + 1):
            n = 2 ** z
            total = 0
            cells_seen = set()
            for x in range(n):
                for y in range(n):
                    payload = tiles.tile(z, x, y, window)
                    total += payload["n_users"]
                    for cell in payload["cells"]:
                        key = (cell["row"], cell["col"])
                        assert key not in cells_seen, (
                            f"block {key} served by more than one tile at z={z}"
                        )
                        cells_seen.add(key)
            assert total == expected

    def test_payload_shape(self, tiles, pipeline_result):
        window = self._busiest_window(pipeline_result)
        payload = tiles.tile(0, 0, 0, window)
        assert payload["z"] == 0 and payload["x"] == 0 and payload["y"] == 0
        assert payload["window"] == window
        assert payload["window_label"] == (
            pipeline_result.timeline[window].window.label
        )
        assert payload["cell_factor"] == tiles.factor(0)
        for cell in payload["cells"]:
            assert set(cell) == {"row", "col", "count", "top_label", "bbox"}
            assert cell["count"] > 0
            assert len(cell["bbox"]) == 4

    def test_payload_deterministic(self, tiles, pipeline_result):
        window = self._busiest_window(pipeline_result)
        assert tiles.tile(1, 0, 0, window) == tiles.tile(1, 0, 0, window)

    def test_tile_out_of_range(self, tiles):
        with pytest.raises(ValueError):
            tiles.tile(1, 2, 0, 0)
        with pytest.raises(ValueError):
            tiles.tile(1, 0, -1, 0)

    def test_scheme_payload(self, tiles, pipeline_result):
        scheme = tiles.scheme()
        assert scheme["max_zoom"] == tiles.max_zoom
        assert scheme["n_windows"] == len(pipeline_result.timeline)
        assert len(scheme["zooms"]) == tiles.max_zoom + 1
        assert scheme["zooms"][-1]["cell_factor"] == 1
        assert len(scheme["bbox"]) == 4
