"""Concurrent smoke test: many threads hammering a live ThreadingHTTPServer.

N worker threads alternate between a page route and ``GET /metrics``
against a real server under scoped observability.  The assertions are the
runtime contract the static CW7xx pack enforces at lint time:

* no request errors or handler exceptions under concurrency;
* every worker's successive samples of the request counter are monotonic
  (counters only ever increase — torn or lost updates would show up as a
  decrease);
* after the dust settles, the counter equals exactly the number of page
  requests issued: no lost increments.
"""

from __future__ import annotations

import gzip
import json
import threading
import urllib.request
from http.client import HTTPConnection

from repro.obs import observed
from repro.web import CrowdWebServer

N_WORKERS = 8
N_ROUNDS = 6


def _fetch(url: str):
    with urllib.request.urlopen(url, timeout=15) as resp:
        return resp.status, resp.read()


def _span_names(tree) -> list:
    names = [tree["name"]]
    for child in tree.get("children", ()):
        names.extend(_span_names(child))
    return names


def test_concurrent_requests_keep_metrics_consistent(pipeline_result):
    server = CrowdWebServer(pipeline_result, port=0).start()
    errors = []
    samples = {i: [] for i in range(N_WORKERS)}

    def hammer(worker: int) -> None:
        try:
            for _ in range(N_ROUNDS):
                status, _body = _fetch(server.url + "/")
                assert status == 200
                status, body = _fetch(server.url + "/metrics")
                assert status == 200
                payload = json.loads(body)
                assert payload["enabled"] is True
                samples[worker].append(
                    payload["counters"]["repro_web_requests_total"].get("/", 0)
                )
        except Exception as exc:  # noqa: BLE001 - surfaced via the errors list
            errors.append((worker, repr(exc)))

    try:
        with observed():
            _fetch(server.url + "/")  # warm-up: the counter key exists
            workers = [
                threading.Thread(target=hammer, args=(i,)) for i in range(N_WORKERS)
            ]
            for thread in workers:
                thread.start()
            for thread in workers:
                thread.join(timeout=60)
            assert not any(thread.is_alive() for thread in workers)
            _status, body = _fetch(server.url + "/metrics")
            final = json.loads(body)["counters"]["repro_web_requests_total"]["/"]
    finally:
        server.stop()

    assert errors == []
    for worker, seen in samples.items():
        assert len(seen) == N_ROUNDS
        assert seen == sorted(seen), f"counter went backwards for worker {worker}"
        # Each sample was taken after this worker's own page request landed,
        # so it must count at least those (plus the warm-up).
        assert seen[-1] >= N_ROUNDS
    assert final == N_WORKERS * N_ROUNDS + 1  # every page hit counted once


class TestServingContract:
    """The cache/ETag/gzip/tile contract over a real keep-alive connection."""

    def test_etag_round_trip_serves_304_with_zero_renders(self, pipeline_result):
        server = CrowdWebServer(pipeline_result, port=0).start()
        host, port = server.address
        try:
            with observed() as o:
                conn = HTTPConnection(host, port, timeout=15)
                conn.request("GET", "/api/crowd/9")
                first = conn.getresponse()
                body = first.read()
                etag = first.getheader("ETag")
                last_modified = first.getheader("Last-Modified")
                assert first.status == 200 and body
                assert etag and etag.startswith('"')
                assert last_modified and "GMT" in last_modified
                assert first.getheader("Vary") == "Accept-Encoding"

                conn.request("GET", "/api/crowd/9",
                             headers={"If-None-Match": etag})
                second = conn.getresponse()
                assert second.status == 304
                assert second.read() == b""
                assert second.getheader("ETag") == etag

                conn.request("GET", "/api/crowd/9",
                             headers={"If-Modified-Since": last_modified})
                third = conn.getresponse()
                assert third.status == 304
                assert third.read() == b""
                conn.close()

                registry = o.registry
                assert registry.counter("repro_web_renders_total") == 1
                assert registry.counter("repro_web_not_modified_total") == 2
                # Only the first request opened a render span.
                render_spans = [
                    name
                    for tree in o.tracer.export()
                    for name in _span_names(tree)
                    if name == "web.render"
                ]
                assert render_spans == ["web.render"]
        finally:
            server.stop()

    def test_gzip_negotiation_serves_precompressed_bodies(self, pipeline_result):
        server = CrowdWebServer(pipeline_result, port=0).start()
        host, port = server.address
        try:
            conn = HTTPConnection(host, port, timeout=15)
            conn.request("GET", "/api/occupancy")
            identity = conn.getresponse()
            raw = identity.read()
            assert identity.status == 200
            assert identity.getheader("Content-Encoding") is None

            conn.request("GET", "/api/occupancy",
                         headers={"Accept-Encoding": "gzip"})
            compressed = conn.getresponse()
            packed = compressed.read()
            conn.close()
            assert compressed.status == 200
            assert compressed.getheader("Content-Encoding") == "gzip"
            assert compressed.getheader("Vary") == "Accept-Encoding"
            assert len(packed) < len(raw)
            assert gzip.decompress(packed) == raw
        finally:
            server.stop()

    def test_tile_boundaries_partition_users_over_http(self, pipeline_result):
        """Cells on tile edges appear in exactly one tile, for every tile."""
        server = CrowdWebServer(pipeline_result, port=0).start()
        window = max(
            range(len(pipeline_result.timeline)),
            key=lambda i: pipeline_result.timeline[i].n_users,
        )
        expected = pipeline_result.timeline[window].n_users
        try:
            _status, body = _fetch(server.url + "/api/tiles")
            scheme = json.loads(body)
            for z in range(scheme["max_zoom"] + 1):
                seen_cells = set()
                total = 0
                for x in range(2 ** z):
                    for y in range(2 ** z):
                        _status, body = _fetch(
                            server.url + f"/api/tiles/{z}/{x}/{y}?window={window}"
                        )
                        tile = json.loads(body)
                        total += tile["n_users"]
                        for cell in tile["cells"]:
                            key = (cell["row"], cell["col"])
                            assert key not in seen_cells, (
                                f"cell {key} appears in more than one tile at z={z}"
                            )
                            seen_cells.add(key)
                assert total == expected, f"users lost or duplicated at z={z}"
        finally:
            server.stop()

    def test_refresh_invalidates_cached_responses(self, pipeline_result):
        server = CrowdWebServer(pipeline_result, port=0).start()
        host, port = server.address
        try:
            conn = HTTPConnection(host, port, timeout=15)
            conn.request("GET", "/api/stats")
            first = conn.getresponse()
            first.read()
            etag = first.getheader("ETag")

            conn.request("POST", "/api/refresh")
            refresh = conn.getresponse()
            payload = json.loads(refresh.read())
            assert refresh.status == 200
            assert payload["invalidated"] >= 1
            assert payload["generation"] == 1

            # The old validator no longer matches: a full response comes back
            # with a new generation's ETag.
            conn.request("GET", "/api/stats", headers={"If-None-Match": etag})
            after = conn.getresponse()
            body = after.read()
            conn.close()
            assert after.status == 200 and body
            assert after.getheader("ETag") != etag
        finally:
            server.stop()