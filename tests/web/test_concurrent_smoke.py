"""Concurrent smoke test: many threads hammering a live ThreadingHTTPServer.

N worker threads alternate between a page route and ``GET /metrics``
against a real server under scoped observability.  The assertions are the
runtime contract the static CW7xx pack enforces at lint time:

* no request errors or handler exceptions under concurrency;
* every worker's successive samples of the request counter are monotonic
  (counters only ever increase — torn or lost updates would show up as a
  decrease);
* after the dust settles, the counter equals exactly the number of page
  requests issued: no lost increments.
"""

from __future__ import annotations

import json
import threading
import urllib.request

from repro.obs import observed
from repro.web import CrowdWebServer

N_WORKERS = 8
N_ROUNDS = 6


def _fetch(url: str):
    with urllib.request.urlopen(url, timeout=15) as resp:
        return resp.status, resp.read()


def test_concurrent_requests_keep_metrics_consistent(pipeline_result):
    server = CrowdWebServer(pipeline_result, port=0).start()
    errors = []
    samples = {i: [] for i in range(N_WORKERS)}

    def hammer(worker: int) -> None:
        try:
            for _ in range(N_ROUNDS):
                status, _body = _fetch(server.url + "/")
                assert status == 200
                status, body = _fetch(server.url + "/metrics")
                assert status == 200
                payload = json.loads(body)
                assert payload["enabled"] is True
                samples[worker].append(
                    payload["counters"]["repro_web_requests_total"].get("/", 0)
                )
        except Exception as exc:  # noqa: BLE001 - surfaced via the errors list
            errors.append((worker, repr(exc)))

    try:
        with observed():
            _fetch(server.url + "/")  # warm-up: the counter key exists
            workers = [
                threading.Thread(target=hammer, args=(i,)) for i in range(N_WORKERS)
            ]
            for thread in workers:
                thread.start()
            for thread in workers:
                thread.join(timeout=60)
            assert not any(thread.is_alive() for thread in workers)
            _status, body = _fetch(server.url + "/metrics")
            final = json.loads(body)["counters"]["repro_web_requests_total"]["/"]
    finally:
        server.stop()

    assert errors == []
    for worker, seen in samples.items():
        assert len(seen) == N_ROUNDS
        assert seen == sorted(seen), f"counter went backwards for worker {worker}"
        # Each sample was taken after this worker's own page request landed,
        # so it must count at least those (plus the warm-up).
        assert seen[-1] >= N_ROUNDS
    assert final == N_WORKERS * N_ROUNDS + 1  # every page hit counted once