"""Tests for the socket-free JSON API."""

import pytest

from repro.web import CrowdWebAPI


@pytest.fixture(scope="module")
def api(pipeline_result):
    return CrowdWebAPI(pipeline_result)


class TestUsers:
    def test_users_listing(self, api, pipeline_result):
        payload = api.users()
        assert payload["n_users"] == pipeline_result.n_users
        row = payload["users"][0]
        assert {"user_id", "n_patterns", "n_days", "top_labels"} <= set(row)

    def test_user_profile(self, api, pipeline_result):
        uid = sorted(pipeline_result.profiles)[0]
        payload = api.user(uid)
        assert payload["user_id"] == uid
        assert isinstance(payload["patterns"], list)

    def test_unknown_user_none(self, api):
        assert api.user("ghost") is None


class TestCrowd:
    def test_snapshot_payload(self, api):
        payload = api.crowd(9)
        assert payload["window"] == "09:00-10:00"
        assert "placements" in payload and "groups" in payload

    def test_out_of_range(self, api):
        with pytest.raises(IndexError):
            api.crowd(99)

    def test_summary_has_24_windows(self, api):
        payload = api.crowd_summary()
        assert len(payload["windows"]) == 24

    def test_flows_bounds(self, api):
        payload = api.flows(9)
        assert payload["from"] == "09:00-10:00"
        with pytest.raises(IndexError):
            api.flows(23)  # no next window

    def test_animation(self, api):
        payload = api.animation(steps_per_transition=2)
        assert payload["n_frames"] == len(payload["frames"])
        assert payload["n_frames"] > 0


class TestStats:
    def test_stats_payload(self, api):
        payload = api.stats()
        assert "check-ins" in payload
        assert "preprocess" in payload


class TestOccupancy:
    def test_matrix_shape(self, api):
        payload = api.occupancy()
        assert len(payload["windows"]) == 24
        for row in payload["cells"]:
            assert len(row["counts"]) == 24
            assert row["cell_id"].startswith("r")


class TestCommunities:
    def test_payload(self, api, pipeline_result):
        payload = api.communities(min_similarity=0.05)
        users = [u for c in payload["communities"] for u in c["users"]]
        assert sorted(users) == sorted(pipeline_result.profiles)


class TestUserMetrics:
    def test_known_user(self, api, pipeline_result):
        uid = sorted(pipeline_result.profiles)[0]
        payload = api.user_metrics(uid)
        assert payload["user_id"] == uid
        assert 0.0 < payload["predictability_bound"] <= 1.0
        assert payload["entropy_uncorrelated"] <= payload["entropy_random"] + 1e-9

    def test_unknown_user(self, api):
        assert api.user_metrics("ghost") is None


class TestSpikes:
    def test_payload_shape(self, api):
        payload = api.spikes(z_threshold=3.0)
        assert payload["z_threshold"] == 3.0
        for spike in payload["spikes"]:
            assert {"day", "cell", "cell_id", "count", "z_score"} <= set(spike)
