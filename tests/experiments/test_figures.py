"""Tests for the figure drivers (paper-claim shapes at small scale)."""

import xml.dom.minidom

import pytest

from repro.experiments import (
    crowd_shift,
    crowd_views,
    fig5_chart,
    fig6_chart,
    fig7_chart,
    fig8_chart,
    run_support_sweep,
)


@pytest.fixture(scope="module")
def sweep(pipeline_result, taxonomy):
    return run_support_sweep(pipeline_result.dataset, taxonomy,
                             supports=(0.25, 0.5, 0.75))


class TestSweep:
    def test_covers_all_users_and_supports(self, sweep, pipeline_result):
        assert sweep.supports == (0.25, 0.5, 0.75)
        for support in sweep.supports:
            assert set(sweep.per_user[support]) == set(pipeline_result.profiles)

    def test_fig5_monotone_decreasing(self, sweep):
        _, ys = sweep.mean_sequences_series()
        assert ys[0] >= ys[1] >= ys[2]
        assert ys[0] > ys[2]  # strictly fewer at the extremes

    def test_fig5_early_drop_steeper(self, sweep):
        """The paper: 0.25→0.5 drop exceeds the 0.5→0.75 drop."""
        _, ys = sweep.mean_sequences_series()
        assert (ys[0] - ys[1]) >= (ys[1] - ys[2])

    def test_fig7_monotone_decreasing(self, sweep):
        _, ys = sweep.mean_length_series()
        assert ys[0] >= ys[-1]

    def test_distributions_nonempty_at_half(self, sweep):
        assert len(sweep.sequence_counts_at(0.5)) > 0
        lengths = sweep.avg_lengths_at(0.5)
        assert all(l >= 1.0 for l in lengths)

    def test_rows_match_series(self, sweep):
        rows = sweep.to_rows()
        _, ys = sweep.mean_sequences_series()
        assert [row["mean_sequences_per_user"] for row in rows] == ys

    def test_empty_supports_raise(self, pipeline_result, taxonomy):
        with pytest.raises(ValueError):
            run_support_sweep(pipeline_result.dataset, taxonomy, supports=())


class TestCharts:
    @pytest.mark.parametrize("chart_fn", [fig5_chart, fig7_chart])
    def test_line_charts_valid(self, sweep, chart_fn):
        xml.dom.minidom.parseString(chart_fn(sweep))

    @pytest.mark.parametrize("chart_fn", [fig6_chart, fig8_chart])
    def test_histograms_valid(self, sweep, chart_fn):
        xml.dom.minidom.parseString(chart_fn(sweep))


class TestCrowdViews:
    def test_views_and_shift(self, pipeline_result):
        result = crowd_views(pipeline_result.timeline, hours=(9.5, 13.5))
        assert len(result.snapshots) == 2
        assert len(result.svgs) == 2
        for svg in result.svgs:
            xml.dom.minidom.parseString(svg)
        assert len(result.shift_scores) == 1
        assert 0.0 <= result.shift_scores[0] <= 1.0

    def test_crowd_moves_between_windows(self, pipeline_result):
        """Paper claim (Figs. 3-4): changing the window relocates the crowd."""
        morning = pipeline_result.timeline.at_hour(9.5)
        evening = pipeline_result.timeline.at_hour(21.5)
        if morning.n_users and evening.n_users:
            assert crowd_shift(morning, evening) > 0.0

    def test_shift_identity_zero(self, pipeline_result):
        snap = pipeline_result.timeline.at_hour(9.5)
        assert crowd_shift(snap, snap) == 0.0

    def test_empty_hours_raise(self, pipeline_result):
        with pytest.raises(ValueError):
            crowd_views(pipeline_result.timeline, hours=())

    def test_summary_rows(self, pipeline_result):
        result = crowd_views(pipeline_result.timeline, hours=(9.5,))
        label, users, cells = result.summary_rows()[0]
        assert label == "09:00-10:00"
        assert cells <= users or users == 0
