"""Tests for the measured-results markdown renderer."""

import json

import pytest

from repro.experiments.report_markdown import main, render_measured_markdown


@pytest.fixture
def measured():
    return {
        "table_dataset_stats": [["check-ins", "227,799"], ["users", "1,083"]],
        "fig5_sequences_vs_support": {
            "supports": [0.25, 0.5, 0.75],
            "mean_sequences_per_user": [67.9, 5.9, 0.2],
        },
        "fig3_fig4_crowd_views": {
            "windows": [["09:00-10:00", 29, 25]],
            "shift": [1.0],
        },
        "table_pattern_recovery": [
            {"min_support": 0.25, "mean_recall": 1.0, "mean_precision": 1.0},
        ],
        "ablation_abstraction": [
            {"knob": "abstraction", "setting": "root",
             "mean_sequences_per_user": 13.4, "mean_avg_length": 1.2},
        ],
    }


class TestRenderer:
    def test_all_sections_present(self, measured):
        text = render_measured_markdown(measured)
        assert "## Dataset statistics" in text
        assert "## Fig. 5" in text
        assert "## Figs. 3–4" in text
        assert "## Ground-truth pattern recovery" in text
        assert "## Ablation Abstraction" in text
        assert "| 227,799 |" in text

    def test_missing_sections_skipped(self):
        text = render_measured_markdown({})
        assert text.startswith("# Measured results")
        assert "## Fig. 5" not in text

    def test_table_shapes(self, measured):
        text = render_measured_markdown(measured)
        fig5_lines = [l for l in text.splitlines() if l.startswith("| mean seq/user")]
        assert len(fig5_lines) == 1
        assert fig5_lines[0].count("|") == 5  # 4 cells -> 5 pipe characters

    def test_main_writes_file(self, measured, tmp_path, capsys):
        src = tmp_path / "measured.json"
        src.write_text(json.dumps(measured))
        out = tmp_path / "out.md"
        assert main(["--measured", str(src), "--out", str(out)]) == 0
        assert out.read_text().startswith("# Measured results")

    def test_main_prints_to_stdout(self, measured, tmp_path, capsys):
        src = tmp_path / "measured.json"
        src.write_text(json.dumps(measured))
        assert main(["--measured", str(src)]) == 0
        assert "# Measured results" in capsys.readouterr().out
