"""Tests for ground-truth pattern validation."""

import pytest

from repro.experiments import validate_against_ground_truth
from repro.mining import ModifiedPrefixSpanConfig
from repro.patterns import detect_all_patterns
from repro.sequences import HOURLY


@pytest.fixture(scope="module")
def validation(small_gen, pipeline_result):
    return validate_against_ground_truth(
        small_gen, pipeline_result.profiles, pipeline_result.taxonomy, HOURLY
    )


class TestValidation:
    def test_covers_all_profiled_users(self, validation, pipeline_result):
        assert {v.user_id for v in validation.per_user} == set(pipeline_result.profiles)

    def test_precision_high(self, validation):
        """Mined patterns must correspond to real routine behaviour —
        the miner should not hallucinate."""
        assert validation.mean_precision >= 0.9

    def test_recall_positive(self, validation):
        """At least some of the strong routine stops must be recovered."""
        assert validation.mean_recall > 0.0

    def test_rates_bounded(self, validation):
        for v in validation.per_user:
            assert 0.0 <= v.recall <= 1.0
            assert 0.0 <= v.precision <= 1.0

    def test_lower_support_improves_recall(self, small_gen, pipeline_result):
        """Sparsity hides weak stops at high support; lowering the threshold
        must recover more of the truth (never less)."""
        results = {}
        for support in (0.25, 0.6):
            profiles = detect_all_patterns(
                pipeline_result.dataset,
                pipeline_result.taxonomy,
                config=ModifiedPrefixSpanConfig(min_support=support),
            )
            summary = validate_against_ground_truth(
                small_gen, profiles, pipeline_result.taxonomy, HOURLY
            )
            results[support] = summary.mean_recall
        assert results[0.25] >= results[0.6]

    def test_empty_profiles_user_scores_zero_recall(self, validation):
        empties = [v for v in validation.per_user if v.n_pattern_items == 0]
        for v in empties:
            assert v.recall == 0.0
            assert v.precision == 1.0  # vacuous

    def test_invalid_params(self, small_gen, pipeline_result):
        with pytest.raises(ValueError):
            validate_against_ground_truth(
                small_gen, pipeline_result.profiles, pipeline_result.taxonomy,
                HOURLY, min_stop_prob=1.5,
            )
        with pytest.raises(ValueError):
            validate_against_ground_truth(
                small_gen, pipeline_result.profiles, pipeline_result.taxonomy,
                HOURLY, bin_tolerance=-1,
            )

    def test_rows_shape(self, validation):
        rows = validation.as_rows()
        assert rows
        assert {"user_id", "truth_stops", "pattern_items", "recall",
                "precision"} <= set(rows[0])
