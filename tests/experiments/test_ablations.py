"""Tests for the ablation drivers."""

import pytest

from repro.experiments import (
    abstraction_ablation,
    activity_filter_ablation,
    binning_ablation,
    cell_size_ablation,
)
from repro.mining import ModifiedPrefixSpanConfig
from repro.sequences import HOURLY
from repro.taxonomy import AbstractionLevel


@pytest.fixture(scope="module")
def cfg():
    return ModifiedPrefixSpanConfig(min_support=0.4)


class TestAbstractionAblation:
    def test_root_beats_venue(self, pipeline_result, taxonomy, cfg):
        """The paper's core claim: abstraction reveals patterns raw venues hide."""
        rows = abstraction_ablation(pipeline_result.dataset, taxonomy, HOURLY, cfg)
        by_level = {row.setting: row.mean_sequences_per_user for row in rows}
        assert by_level["root"] >= by_level["leaf"] >= by_level["venue"]
        assert by_level["root"] > by_level["venue"]

    def test_rows_shape(self, pipeline_result, taxonomy, cfg):
        rows = abstraction_ablation(pipeline_result.dataset, taxonomy, HOURLY, cfg,
                                    levels=(AbstractionLevel.ROOT,))
        assert len(rows) == 1
        assert rows[0].as_dict()["knob"] == "abstraction"


class TestBinningAblation:
    def test_rows_per_width(self, pipeline_result, taxonomy, cfg):
        rows = binning_ablation(pipeline_result.dataset, taxonomy,
                                widths_hours=(1.0, 4.0), config=cfg)
        assert [row.setting for row in rows] == ["1h", "4h"]
        assert all(row.mean_sequences_per_user >= 0 for row in rows)


class TestCellSizeAblation:
    def test_coarser_cells_fewer_occupied(self, pipeline_result, taxonomy, cfg):
        rows = cell_size_ablation(pipeline_result.dataset, taxonomy, HOURLY,
                                  cell_sizes_m=(250.0, 4000.0), config=cfg)
        fine, coarse = rows
        assert fine.extra["occupied_cells"] >= coarse.extra["occupied_cells"]
        # Placement count is independent of the grid resolution.
        assert fine.extra["users_placed"] == coarse.extra["users_placed"]

    def test_coarser_cells_bigger_groups(self, pipeline_result, taxonomy, cfg):
        rows = cell_size_ablation(pipeline_result.dataset, taxonomy, HOURLY,
                                  cell_sizes_m=(250.0, 8000.0), config=cfg)
        assert rows[1].extra["largest_group"] >= rows[0].extra["largest_group"]


class TestActivityAblation:
    def test_stricter_threshold_fewer_users(self, small_ds, taxonomy, cfg):
        from repro.data import select_densest_window

        windowed = select_densest_window(small_ds, months=2)
        rows = activity_filter_ablation(windowed, taxonomy, HOURLY,
                                        thresholds=(10, 40), config=cfg)
        assert rows[0].extra["users_kept"] >= rows[1].extra["users_kept"]


class TestDayKindAblation:
    def test_three_rows(self, pipeline_result, taxonomy, cfg):
        from repro.experiments import day_kind_ablation

        rows = day_kind_ablation(pipeline_result.dataset, taxonomy, HOURLY, cfg)
        assert [row.setting for row in rows] == ["all", "weekday", "weekend"]
        # Weekday-conditioned mining should find at least as many patterns
        # as all-days mining for routine-heavy simulated workers.
        by_kind = {row.setting: row.mean_sequences_per_user for row in rows}
        assert by_kind["weekday"] >= by_kind["all"] * 0.5  # sane, non-degenerate
        assert all(row.mean_sequences_per_user >= 0 for row in rows)


class TestToleranceAblation:
    def test_wider_tolerance_never_fewer_patterns(self, pipeline_result, taxonomy):
        from repro.experiments import tolerance_ablation

        rows = tolerance_ablation(pipeline_result.dataset, taxonomy, HOURLY,
                                  tolerances=(0, 1, 2), min_support=0.5)
        counts = [row.mean_sequences_per_user for row in rows]
        assert counts[0] <= counts[1] <= counts[2]
        assert [row.setting for row in rows] == ["0", "1", "2"]
