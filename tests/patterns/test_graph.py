"""Tests for place graphs."""

from datetime import datetime, timezone

import pytest

from repro.data import CheckIn, CheckInDataset
from repro.mining import SequentialPattern
from repro.patterns import (
    UserPatternProfile,
    build_pattern_graph,
    build_place_graph,
    place_importance,
    top_transitions,
)
from repro.sequences import TimedItem, make_labeler
from repro.taxonomy import AbstractionLevel

UTC = timezone.utc


def checkin(user, day, hour, cat):
    return CheckIn(
        user_id=user, venue_id=f"v-{cat}", category_id="", category_name=cat,
        lat=40.7, lon=-74.0, tz_offset_min=0,
        timestamp=datetime(2012, 4, day, hour, 0, 0, tzinfo=UTC),
    )


@pytest.fixture
def crafted_graph(taxonomy):
    # Two days Home->Work->Eatery, one day Home->Eatery.
    ds = CheckInDataset([
        checkin("u", 1, 8, "Home (private)"), checkin("u", 1, 9, "Corporate Office"),
        checkin("u", 1, 12, "Thai Restaurant"),
        checkin("u", 2, 8, "Home (private)"), checkin("u", 2, 9, "Corporate Office"),
        checkin("u", 2, 12, "Thai Restaurant"),
        checkin("u", 3, 8, "Home (private)"), checkin("u", 3, 12, "Thai Restaurant"),
    ])
    labeler = make_labeler(taxonomy, AbstractionLevel.ROOT)
    return build_place_graph(ds, "u", labeler)


class TestPlaceGraph:
    def test_nodes_and_visits(self, crafted_graph):
        assert set(crafted_graph.nodes) == {"Residence", "Work", "Eatery"}
        assert crafted_graph.nodes["Residence"]["visits"] == 3
        assert crafted_graph.nodes["Work"]["visits"] == 2

    def test_edge_weights_and_days(self, crafted_graph):
        assert crafted_graph["Residence"]["Work"]["weight"] == 2
        assert crafted_graph["Residence"]["Work"]["days"] == 2
        assert crafted_graph["Residence"]["Eatery"]["weight"] == 1
        assert crafted_graph["Work"]["Eatery"]["weight"] == 2

    def test_self_loops_excluded(self, taxonomy):
        ds = CheckInDataset([
            checkin("u", 1, 8, "Thai Restaurant"),
            checkin("u", 1, 12, "Chinese Restaurant"),  # same ROOT label
        ])
        labeler = make_labeler(taxonomy, AbstractionLevel.ROOT)
        graph = build_place_graph(ds, "u", labeler)
        assert graph.number_of_edges() == 0

    def test_top_transitions(self, crafted_graph):
        transitions = top_transitions(crafted_graph, k=2)
        assert transitions[0][:2] in {("Residence", "Work"), ("Work", "Eatery")}
        assert transitions[0][2] == 2

    def test_place_importance_sums_to_one(self, crafted_graph):
        importance = place_importance(crafted_graph)
        assert sum(importance.values()) == pytest.approx(1.0)
        assert importance["Eatery"] > importance["Residence"]  # sink of all paths

    def test_importance_edgeless_graph(self, taxonomy):
        ds = CheckInDataset([checkin("u", 1, 8, "Thai Restaurant")])
        labeler = make_labeler(taxonomy, AbstractionLevel.ROOT)
        graph = build_place_graph(ds, "u", labeler)
        assert place_importance(graph) == {"Eatery": 1.0}

    def test_empty_user(self, taxonomy):
        ds = CheckInDataset([checkin("u", 1, 8, "Thai Restaurant")])
        labeler = make_labeler(taxonomy, AbstractionLevel.ROOT)
        graph = build_place_graph(ds, "ghost", labeler)
        assert graph.number_of_nodes() == 0
        assert place_importance(graph) == {}


class TestPatternGraph:
    def test_from_patterns(self):
        profile = UserPatternProfile(
            user_id="u",
            patterns=(
                SequentialPattern(items=(TimedItem(9, "Work"), TimedItem(12, "Eatery")),
                                  count=30, support=0.6),
                SequentialPattern(items=(TimedItem(12, "Eatery"),), count=40, support=0.8),
            ),
            n_days=50,
        )
        graph = build_pattern_graph(profile)
        assert set(graph.nodes) == {"Work", "Eatery"}
        assert graph.nodes["Eatery"]["support"] == pytest.approx(0.8)
        assert graph.nodes["Eatery"]["bins"] == [12]
        assert graph["Work"]["Eatery"]["weight"] == pytest.approx(0.6)

    def test_same_label_edges_skipped(self):
        profile = UserPatternProfile(
            user_id="u",
            patterns=(
                SequentialPattern(items=(TimedItem(9, "Eatery"), TimedItem(12, "Eatery")),
                                  count=5, support=0.5),
            ),
            n_days=10,
        )
        graph = build_pattern_graph(profile)
        assert graph.number_of_edges() == 0
        assert graph.nodes["Eatery"]["bins"] == [9, 12]
