"""Tests for user pattern profiles."""

import pytest

from repro.mining import ModifiedPrefixSpanConfig, SequentialPattern
from repro.patterns import UserPatternProfile, detect_all_patterns, detect_user_patterns
from repro.sequences import HOURLY, TimedItem
from repro.taxonomy import AbstractionLevel


def make_profile():
    patterns = (
        SequentialPattern(items=(TimedItem(12, "Eatery"),), count=40, support=0.8),
        SequentialPattern(items=(TimedItem(9, "Work"), TimedItem(12, "Eatery")),
                          count=30, support=0.6),
        SequentialPattern(items=(TimedItem(20, "Nightlife"),), count=10, support=0.2),
    )
    return UserPatternProfile(user_id="u1", patterns=patterns, n_days=50)


class TestProfile:
    def test_basic_accessors(self):
        profile = make_profile()
        assert profile.n_patterns == 3
        assert [p.count for p in profile.top(2)] == [40, 30]
        assert profile.labels() == ["Eatery", "Nightlife", "Work"]

    def test_items_at_bin_exact(self):
        profile = make_profile()
        hits = profile.items_at_bin(12)
        assert len(hits) == 2
        assert {item.label for item, _ in hits} == {"Eatery"}

    def test_items_at_bin_tolerance(self):
        profile = make_profile()
        assert profile.items_at_bin(10) == []
        hits = profile.items_at_bin(10, tolerance=1)
        assert {item.label for item, _ in hits} == {"Work"}

    def test_items_at_bin_circular(self):
        profile = make_profile()
        hits = profile.items_at_bin(23, tolerance=3)
        assert {item.label for item, _ in hits} == {"Nightlife"}

    def test_strongest_label(self):
        profile = make_profile()
        assert profile.strongest_label_at_bin(12) == "Eatery"
        assert profile.strongest_label_at_bin(3) is None

    def test_to_dict_shape(self):
        payload = make_profile().to_dict()
        assert payload["user_id"] == "u1"
        assert payload["patterns"][0]["items"][0]["time"] == "12:00-13:00"
        assert payload["patterns"][0]["support"] == 0.8


class TestDetection:
    def test_detect_user_patterns(self, small_ds, taxonomy):
        uid = max(small_ds.user_ids(), key=lambda u: len(small_ds.for_user(u)))
        profile = detect_user_patterns(small_ds, uid, taxonomy)
        assert profile.user_id == uid
        assert profile.n_days > 0
        assert profile.n_patterns > 0
        # Canonical order: strongest first.
        counts = [p.count for p in profile.patterns]
        assert counts == sorted(counts, reverse=True)

    def test_closed_only_reduces(self, small_ds, taxonomy):
        uid = max(small_ds.user_ids(), key=lambda u: len(small_ds.for_user(u)))
        config = ModifiedPrefixSpanConfig(min_support=0.3)
        closed = detect_user_patterns(small_ds, uid, taxonomy, config=config)
        full = detect_user_patterns(small_ds, uid, taxonomy, config=config,
                                    closed_only=False)
        assert closed.n_patterns <= full.n_patterns

    def test_unknown_user_empty_profile(self, small_ds, taxonomy):
        profile = detect_user_patterns(small_ds, "ghost", taxonomy)
        assert profile.n_patterns == 0
        assert profile.n_days == 0

    def test_detect_all_covers_users(self, pipeline_result):
        assert set(pipeline_result.profiles) == set(pipeline_result.dataset.user_ids())
