"""Tests for pattern/sequence similarity measures."""

import numpy as np
import pytest

from repro.mining import SequentialPattern
from repro.patterns import (
    UserPatternProfile,
    jaccard_similarity,
    pattern_set_similarity,
    profile_similarity_matrix,
    sequence_edit_similarity,
)
from repro.sequences import TimedItem


def profile(user_id, *item_tuples):
    patterns = tuple(
        SequentialPattern(items=tuple(TimedItem(b, l) for b, l in items),
                          count=5, support=0.5)
        for items in item_tuples
    )
    return UserPatternProfile(user_id=user_id, patterns=patterns, n_days=10)


class TestJaccard:
    def test_identical(self):
        assert jaccard_similarity({1, 2}, {1, 2}) == 1.0

    def test_disjoint(self):
        assert jaccard_similarity({1}, {2}) == 0.0

    def test_partial(self):
        assert jaccard_similarity({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)

    def test_both_empty(self):
        assert jaccard_similarity(set(), set()) == 1.0


class TestPatternSetSimilarity:
    def test_same_items_full_similarity(self):
        a = profile("a", [(12, "Eatery")])
        b = profile("b", [(12, "Eatery")])
        assert pattern_set_similarity(a, b) == 1.0

    def test_partial_overlap(self):
        a = profile("a", [(12, "Eatery"), (9, "Work")])
        b = profile("b", [(12, "Eatery")])
        assert 0.0 < pattern_set_similarity(a, b) < 1.0

    def test_different_bins_no_overlap(self):
        a = profile("a", [(12, "Eatery")])
        b = profile("b", [(13, "Eatery")])
        assert pattern_set_similarity(a, b) == 0.0


class TestEditSimilarity:
    def test_identical(self):
        seq = (TimedItem(1, "a"), TimedItem(2, "b"))
        assert sequence_edit_similarity(seq, seq) == 1.0

    def test_empty_pair(self):
        assert sequence_edit_similarity((), ()) == 1.0

    def test_completely_different(self):
        a = (TimedItem(1, "a"),)
        b = (TimedItem(2, "b"),)
        assert sequence_edit_similarity(a, b) == 0.0

    def test_one_substitution(self):
        a = (TimedItem(1, "a"), TimedItem(2, "b"), TimedItem(3, "c"))
        b = (TimedItem(1, "a"), TimedItem(2, "x"), TimedItem(3, "c"))
        assert sequence_edit_similarity(a, b) == pytest.approx(2 / 3)

    def test_symmetry(self):
        a = (TimedItem(1, "a"), TimedItem(2, "b"))
        b = (TimedItem(1, "a"),)
        assert sequence_edit_similarity(a, b) == sequence_edit_similarity(b, a)


class TestSimilarityMatrix:
    def test_shape_and_diagonal(self):
        profiles = {
            "a": profile("a", [(12, "Eatery")]),
            "b": profile("b", [(12, "Eatery")]),
            "c": profile("c", [(9, "Work")]),
        }
        ids, matrix = profile_similarity_matrix(profiles)
        assert ids == ["a", "b", "c"]
        assert matrix.shape == (3, 3)
        assert np.allclose(np.diag(matrix), 1.0)
        assert np.allclose(matrix, matrix.T)
        assert matrix[0, 1] == 1.0
        assert matrix[0, 2] == 0.0
