"""Tests for profile summarization."""

from repro.mining import SequentialPattern
from repro.patterns import UserPatternProfile, describe_pattern, summarize_profile
from repro.sequences import TimedItem


def make_profile(n_patterns=2):
    patterns = tuple(
        SequentialPattern(
            items=(TimedItem(9, "Work"), TimedItem(12, "Eatery"))[:i + 1],
            count=30 - i, support=(30 - i) / 50,
        )
        for i in range(n_patterns)
    )
    return UserPatternProfile(user_id="u1", patterns=patterns, n_days=50)


class TestDescribe:
    def test_single_item(self):
        profile = make_profile(1)
        text = describe_pattern(profile.patterns[0], profile)
        assert "Work around 09:00-10:00" in text
        assert "60%" in text
        assert "(30/50)" in text

    def test_multi_item_uses_then(self):
        profile = make_profile(2)
        text = describe_pattern(profile.patterns[1], profile)
        assert ", then Eatery around 12:00-13:00" in text


class TestSummarize:
    def test_contains_header_and_patterns(self):
        text = summarize_profile(make_profile(2))
        assert "User u1: 2 patterns over 50 recorded days" in text
        assert text.count("\n  - ") == 2

    def test_empty_profile(self):
        profile = UserPatternProfile(user_id="u2", patterns=(), n_days=5)
        text = summarize_profile(profile)
        assert "no routine detected" in text

    def test_truncation_note(self):
        profile = make_profile(2)
        text = summarize_profile(profile, k=1)
        assert "and 1 more" in text
