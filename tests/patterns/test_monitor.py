"""Tests for online routine conformance monitoring."""

import pytest

from repro.mining import SequentialPattern
from repro.patterns import PatternMonitor, PatternState, UserPatternProfile
from repro.sequences import TimedItem


def profile_with(*pattern_specs):
    """Each spec: (support, [(bin, label), ...])."""
    patterns = tuple(
        SequentialPattern(
            items=tuple(TimedItem(b, l) for b, l in items),
            count=int(support * 50), support=support,
        )
        for support, items in pattern_specs
    )
    return UserPatternProfile(user_id="u", patterns=patterns, n_days=50)


@pytest.fixture
def routine():
    return profile_with(
        (0.8, [(9, "Work"), (12, "Eatery"), (18, "Gym")]),
        (0.6, [(12, "Eatery")]),
    )


class TestObserve:
    def test_initial_state_pending(self, routine):
        monitor = PatternMonitor(routine)
        assert all(p.state is PatternState.PENDING for p in monitor.status())
        assert monitor.conformance() == 1.0

    def test_progression_to_completed(self, routine):
        monitor = PatternMonitor(routine)
        monitor.observe(TimedItem(9, "Work"))
        assert monitor.status()[0].state is PatternState.IN_PROGRESS
        assert monitor.status()[0].matched == 1
        monitor.observe(TimedItem(12, "Eatery"))
        monitor.observe(TimedItem(18, "Gym"))
        assert monitor.status()[0].state is PatternState.COMPLETED
        assert monitor.status()[1].state is PatternState.COMPLETED

    def test_tolerance_matches_adjacent_bin(self, routine):
        monitor = PatternMonitor(routine, tolerance_bins=1)
        monitor.observe(TimedItem(10, "Work"))  # one bin late
        assert monitor.status()[0].matched == 1

    def test_zero_tolerance_strict(self, routine):
        monitor = PatternMonitor(routine, tolerance_bins=0)
        monitor.observe(TimedItem(10, "Work"))
        assert monitor.status()[0].matched == 0

    def test_wrong_label_ignored(self, routine):
        monitor = PatternMonitor(routine)
        monitor.observe(TimedItem(9, "Shops"))
        assert monitor.status()[0].matched == 0

    def test_chronology_enforced(self, routine):
        monitor = PatternMonitor(routine)
        monitor.observe(TimedItem(12, "Eatery"))
        with pytest.raises(ValueError, match="chronological"):
            monitor.observe(TimedItem(9, "Work"))

    def test_invalid_tolerance(self, routine):
        with pytest.raises(ValueError):
            PatternMonitor(routine, tolerance_bins=-1)


class TestMissedDetection:
    def test_passing_a_bin_misses_the_pattern(self, routine):
        monitor = PatternMonitor(routine, tolerance_bins=1)
        monitor.advance_to(14)  # 9 am work never happened; 12 lunch neither
        states = [p.state for p in monitor.status()]
        assert states[0] is PatternState.MISSED
        assert states[1] is PatternState.MISSED

    def test_in_progress_can_still_miss_later_items(self, routine):
        monitor = PatternMonitor(routine, tolerance_bins=1)
        monitor.observe(TimedItem(9, "Work"))
        monitor.observe(TimedItem(12, "Eatery"))
        monitor.advance_to(22)  # gym never happened
        assert monitor.status()[0].state is PatternState.MISSED
        assert monitor.status()[1].state is PatternState.COMPLETED

    def test_clock_cannot_rewind(self, routine):
        monitor = PatternMonitor(routine)
        monitor.advance_to(12)
        with pytest.raises(ValueError):
            monitor.advance_to(9)

    def test_conformance_drops_with_misses(self, routine):
        monitor = PatternMonitor(routine, tolerance_bins=0)
        assert monitor.conformance() == 1.0
        monitor.advance_to(23)
        # Both patterns missed -> zero conformance.
        assert monitor.conformance() == 0.0

    def test_conformance_weighted_by_support(self):
        profile = profile_with(
            (0.9, [(9, "Work")]),
            (0.1, [(20, "Nightlife")]),
        )
        monitor = PatternMonitor(profile, tolerance_bins=0)
        monitor.observe(TimedItem(9, "Work"))
        monitor.advance_to(23)  # nightlife missed
        assert monitor.conformance() == pytest.approx(0.9)


class TestExpectedNext:
    def test_soonest_first(self, routine):
        monitor = PatternMonitor(routine)
        upcoming = monitor.expected_next()
        assert upcoming[0][0] == TimedItem(9, "Work")
        assert upcoming[1][0] == TimedItem(12, "Eatery")

    def test_updates_as_day_progresses(self, routine):
        monitor = PatternMonitor(routine)
        monitor.observe(TimedItem(9, "Work"))
        upcoming = monitor.expected_next()
        assert upcoming[0][0] == TimedItem(12, "Eatery")

    def test_empty_when_all_resolved(self, routine):
        monitor = PatternMonitor(routine, tolerance_bins=0)
        monitor.advance_to(23)
        assert monitor.expected_next() == []

    def test_empty_profile(self):
        monitor = PatternMonitor(UserPatternProfile("u", (), 10))
        assert monitor.expected_next() == []
        assert monitor.conformance() == 1.0


class TestIntegrationWithMinedProfiles:
    def test_replaying_a_real_day(self, pipeline_result, taxonomy):
        """Replaying one of the user's own recorded days should complete or
        keep in progress at least one pattern (their routine came from
        these very days)."""
        from repro.sequences import make_labeler, sessionize_user

        uid = max(pipeline_result.profiles,
                  key=lambda u: pipeline_result.profiles[u].n_patterns)
        profile = pipeline_result.profiles[uid]
        labeler = make_labeler(taxonomy, profile.level)
        sessions = sessionize_user(pipeline_result.dataset, uid, labeler,
                                   profile.binning)
        # Find a day that touches the strongest pattern's first label.
        target = profile.patterns[0].items[0]
        day = next(s for s in sessions
                   if any(i.label == target.label for i in s.items))
        monitor = PatternMonitor(profile, tolerance_bins=1)
        monitor.observe_all(day.items)
        states = {p.state for p in monitor.status()}
        assert PatternState.COMPLETED in states or PatternState.IN_PROGRESS in states
