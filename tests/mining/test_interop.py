"""Tests for SPMF-format interop."""

import pytest

from repro.mining import (
    ItemCodec,
    prefixspan,
    read_spmf_database,
    read_spmf_patterns,
    write_spmf_database,
    write_spmf_patterns,
)
from repro.sequences import SequenceDatabase, TimedItem


@pytest.fixture
def db():
    return SequenceDatabase([
        [TimedItem(9, "Work"), TimedItem(12, "Eatery")],
        [TimedItem(9, "Work")],
        [TimedItem(12, "Eatery"), TimedItem(18, "Gym")],
    ])


class TestCodec:
    def test_stable_ids_from_one(self, db):
        codec = ItemCodec.for_database(db)
        assert len(codec) == 3
        ids = [codec.encode(item) for seq in db for item in seq]
        assert min(ids) == 1
        assert max(ids) == 3

    def test_roundtrip(self, db):
        codec = ItemCodec.for_database(db)
        item = TimedItem(9, "Work")
        assert codec.decode(codec.encode(item)) == item

    def test_unknown_raises(self, db):
        codec = ItemCodec.for_database(db)
        with pytest.raises(KeyError):
            codec.encode(TimedItem(3, "Nope"))
        with pytest.raises(KeyError):
            codec.decode(99)

    def test_deterministic(self, db):
        a = ItemCodec.for_database(db)
        b = ItemCodec.for_database(db)
        assert a.mapping_lines() == b.mapping_lines()


class TestDatabaseRoundtrip:
    def test_write_then_read(self, db, tmp_path):
        path = tmp_path / "db.spmf"
        codec = write_spmf_database(db, path)
        assert (tmp_path / "db.spmf.dict").exists()
        loaded = read_spmf_database(path)
        assert len(loaded) == len(db)
        # Decode back to the original items.
        for original, encoded in zip(db, loaded):
            assert tuple(codec.decode(i) for i in encoded) == original

    def test_spmf_format_shape(self, db, tmp_path):
        path = tmp_path / "db.spmf"
        write_spmf_database(db, path)
        first = path.read_text().splitlines()[0]
        assert first.endswith("-2")
        assert "-1" in first

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "db.spmf"
        path.write_text("# comment\n1 -1 2 -1 -2\n@META x\n3 -1 -2\n")
        loaded = read_spmf_database(path)
        assert loaded.sequences == ((1, 2), (3,))

    def test_bad_token_raises(self, tmp_path):
        path = tmp_path / "db.spmf"
        path.write_text("1 -1 banana -2\n")
        with pytest.raises(ValueError, match="bad token"):
            read_spmf_database(path)

    def test_invalid_id_raises(self, tmp_path):
        path = tmp_path / "db.spmf"
        path.write_text("0 -1 -2\n")
        with pytest.raises(ValueError, match="invalid item id"):
            read_spmf_database(path)


class TestPatternRoundtrip:
    def test_mined_patterns_roundtrip(self, db, tmp_path):
        codec = ItemCodec.for_database(db)
        patterns = prefixspan(db, 0.34)
        path = tmp_path / "patterns.txt"
        write_spmf_patterns(patterns, codec, path)
        loaded = read_spmf_patterns(path, codec, n_sequences=len(db))
        assert {(p.items, p.count) for p in loaded} == {
            (p.items, p.count) for p in patterns
        }
        for p in loaded:
            assert p.support == pytest.approx(p.count / len(db))

    def test_spmf_pattern_line_format(self, db, tmp_path):
        codec = ItemCodec.for_database(db)
        patterns = prefixspan(db, 0.34)
        path = tmp_path / "patterns.txt"
        write_spmf_patterns(patterns, codec, path)
        for line in path.read_text().splitlines():
            assert "#SUP:" in line

    def test_missing_sup_raises(self, db, tmp_path):
        codec = ItemCodec.for_database(db)
        path = tmp_path / "patterns.txt"
        path.write_text("1 -1 2 -1\n")
        with pytest.raises(ValueError, match="missing #SUP"):
            read_spmf_patterns(path, codec, n_sequences=3)

    def test_invalid_n_sequences(self, db, tmp_path):
        codec = ItemCodec.for_database(db)
        path = tmp_path / "patterns.txt"
        path.write_text("1 -1 #SUP: 2\n")
        with pytest.raises(ValueError):
            read_spmf_patterns(path, codec, n_sequences=0)

    def test_cross_check_via_integer_database(self, db, tmp_path):
        """Mining the SPMF-encoded integer database yields the same pattern
        structure as mining the original — the interop is faithful."""
        path = tmp_path / "db.spmf"
        codec = write_spmf_database(db, path)
        int_db = read_spmf_database(path)
        original = {
            tuple(codec.encode(i) for i in p.items): p.count
            for p in prefixspan(db, 0.34)
        }
        integer = {p.items: p.count for p in prefixspan(int_db, 0.34)}
        assert original == integer
