"""Tests for incremental pattern maintenance."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining import (
    IncrementalPatternStore,
    MiningLimits,
    ModifiedPrefixSpanConfig,
    modified_prefixspan,
)
from repro.sequences import SequenceDatabase, TimedItem


def day(*pairs):
    return tuple(TimedItem(b, l) for b, l in pairs)


WORKDAY = day((9, "Work"), (12, "Eatery"))
GYM_DAY = day((9, "Work"), (18, "Gym"))

CONFIG = ModifiedPrefixSpanConfig(min_support=0.5, time_tolerance_bins=0,
                                  canonicalize_bins=False)


class TestBasics:
    def test_initial_mine(self):
        store = IncrementalPatternStore([WORKDAY] * 4, CONFIG)
        labels = {tuple(i.label for i in p.items) for p in store.patterns()}
        assert ("Work", "Eatery") in labels
        assert not store.needs_remine

    def test_counts_stay_exact_as_days_arrive(self):
        store = IncrementalPatternStore([WORKDAY] * 4, CONFIG)
        store.add_day(WORKDAY)
        support = store.support_of(day((9, "Work"), (12, "Eatery")))
        assert support == pytest.approx(1.0)
        store.add_day(day((3, "Nightlife"),))
        support = store.support_of(day((9, "Work"), (12, "Eatery")))
        assert support == pytest.approx(5 / 6)

    def test_pattern_drops_below_threshold(self):
        store = IncrementalPatternStore([WORKDAY] * 2, CONFIG)
        for _ in range(3):
            store.add_day(day((3, "Nightlife"),))
        labels = {tuple(i.label for i in p.items) for p in store.patterns()}
        assert ("Work", "Eatery") not in labels  # support 2/5 < 0.5
        # But the count is still tracked exactly.
        assert store.support_of(day((9, "Work"), (12, "Eatery"))) == pytest.approx(2 / 5)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            IncrementalPatternStore([WORKDAY], CONFIG, remine_interval=0)


class TestStaleness:
    def test_new_behaviour_flags_remine(self):
        store = IncrementalPatternStore([WORKDAY] * 4, CONFIG, remine_interval=100)
        assert not store.needs_remine
        # A brand-new frequent habit appears.
        for _ in range(6):
            store.add_day(GYM_DAY)
        assert store.needs_remine

    def test_remine_restores_completeness(self):
        store = IncrementalPatternStore([WORKDAY] * 4, CONFIG, remine_interval=100)
        for _ in range(6):
            store.add_day(GYM_DAY)
        store.remine()
        assert not store.needs_remine
        labels = {tuple(i.label for i in p.items) for p in store.patterns()}
        assert ("Work", "Gym") in labels

    def test_interval_backstop(self):
        store = IncrementalPatternStore([WORKDAY] * 4, CONFIG, remine_interval=3)
        for _ in range(3):
            store.add_day(WORKDAY)
        assert store.needs_remine  # day-count backstop, no new behaviour needed

    def test_repeating_known_behaviour_is_not_stale(self):
        store = IncrementalPatternStore([WORKDAY] * 4, CONFIG, remine_interval=100)
        store.add_day(WORKDAY)
        store.add_day(WORKDAY)
        assert not store.needs_remine


class TestEquivalenceAfterRemine:
    items_strategy = st.lists(
        st.builds(TimedItem, bin=st.integers(0, 5), label=st.sampled_from("AB")),
        min_size=0, max_size=3,
    ).map(lambda seq: tuple(sorted(seq, key=lambda i: i.bin)))

    @given(initial=st.lists(items_strategy, min_size=1, max_size=4),
           added=st.lists(items_strategy, min_size=0, max_size=3))
    @settings(max_examples=30, deadline=None)
    def test_tracked_counts_match_full_mine(self, initial, added):
        """After any add_day sequence, every tracked pattern's count equals
        what a from-scratch mine of the full data reports."""
        config = ModifiedPrefixSpanConfig(
            min_support=0.4, time_tolerance_bins=1,
            limits=MiningLimits(max_length=2), canonicalize_bins=False,
        )
        store = IncrementalPatternStore(initial, config, n_bins=6)
        for new_day in added:
            store.add_day(new_day)
        full = {
            p.items: p.count
            for p in modified_prefixspan(
                SequenceDatabase(list(initial) + list(added)), config, n_bins=6
            )
        }
        for pattern in store.patterns():
            assert full.get(pattern.items) == pattern.count
