"""Tests for the modified PrefixSpan (the paper's core algorithm)."""

import pytest

from repro.mining import (
    FlexibleMatcher,
    MiningLimits,
    ModifiedPrefixSpanConfig,
    modified_prefixspan,
    prefixspan,
)
from repro.sequences import SequenceDatabase, TimedItem


def db_of(*sequences):
    return SequenceDatabase([
        [TimedItem(bin, label) for bin, label in seq] for seq in sequences
    ])


def as_set(patterns):
    return {(p.items, p.count) for p in patterns}


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"min_support": 0.0},
        {"min_support": 1.5},
        {"time_tolerance_bins": -1},
        {"max_gap_bins": -1},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ModifiedPrefixSpanConfig(**kwargs)


class TestDegenerateEquivalence:
    def test_tol_zero_equals_classic(self, active_db, taxonomy):
        config = ModifiedPrefixSpanConfig(
            min_support=0.5, time_tolerance_bins=0, canonicalize_bins=False
        )
        assert as_set(modified_prefixspan(active_db, config)) == as_set(
            prefixspan(active_db, 0.5)
        )


class TestTimeTolerance:
    def test_jittered_visits_merge(self):
        # Lunch at 11 on half the days, 12 on the other half: invisible to
        # exact matching at support 0.75, visible with tolerance 1.
        db = db_of(
            *[[(11, "Eatery")]] * 3,
            *[[(12, "Eatery")]] * 3,
        )
        exact = modified_prefixspan(db, ModifiedPrefixSpanConfig(
            min_support=0.75, time_tolerance_bins=0))
        assert exact == []
        flexible = modified_prefixspan(db, ModifiedPrefixSpanConfig(
            min_support=0.75, time_tolerance_bins=1))
        assert any(p.count == 6 and p.items[0].label == "Eatery" for p in flexible)

    def test_tolerance_is_circular(self):
        db = db_of(*[[(23, "Nightlife")]] * 2, *[[(0, "Nightlife")]] * 2)
        patterns = modified_prefixspan(db, ModifiedPrefixSpanConfig(
            min_support=0.9, time_tolerance_bins=1))
        assert any(p.count == 4 for p in patterns)

    def test_wider_tolerance_never_loses_support(self):
        db = db_of(
            [(8, "Work"), (12, "Eatery")],
            [(9, "Work"), (13, "Eatery")],
            [(10, "Work")],
        )
        for pattern_narrow in modified_prefixspan(
            db, ModifiedPrefixSpanConfig(min_support=0.34, time_tolerance_bins=0)
        ):
            wide = modified_prefixspan(
                db, ModifiedPrefixSpanConfig(min_support=0.34, time_tolerance_bins=2,
                                             canonicalize_bins=False)
            )
            matches = [p for p in wide if p.items == pattern_narrow.items]
            assert matches and matches[0].count >= pattern_narrow.count


class TestAncestorLabels:
    def test_flexible_label_pattern_found(self, taxonomy):
        # Thai / Chinese / Japanese lunches: no single leaf is frequent, but
        # the "Eatery" (or "Asian Restaurant") abstraction is.
        db = db_of(
            [(12, "Thai Restaurant")],
            [(12, "Chinese Restaurant")],
            [(12, "Japanese Restaurant")],
            [(12, "Thai Restaurant")],
        )
        config = ModifiedPrefixSpanConfig(min_support=0.9, time_tolerance_bins=0,
                                          include_ancestor_labels=True)
        patterns = modified_prefixspan(db, config, taxonomy=taxonomy)
        labels = {p.items[0].label for p in patterns}
        assert "Asian Restaurant" in labels
        assert "Eatery" in labels
        # No single leaf reaches 90% support.
        assert "Thai Restaurant" not in labels

    def test_without_taxonomy_no_ancestors(self):
        db = db_of([(12, "Thai Restaurant")], [(12, "Chinese Restaurant")])
        config = ModifiedPrefixSpanConfig(min_support=0.9, include_ancestor_labels=True)
        assert modified_prefixspan(db, config, taxonomy=None) == []

    def test_ancestor_support_at_least_leaf_support(self, taxonomy):
        db = db_of(
            [(12, "Thai Restaurant")],
            [(12, "Thai Restaurant")],
            [(12, "Chinese Restaurant")],
        )
        config = ModifiedPrefixSpanConfig(min_support=0.3, time_tolerance_bins=0,
                                          include_ancestor_labels=True)
        patterns = {p.items[0].label: p.count
                    for p in modified_prefixspan(db, config, taxonomy=taxonomy)
                    if len(p.items) == 1}
        assert patterns["Eatery"] == 3
        assert patterns["Thai Restaurant"] == 2


class TestGapConstraint:
    def test_gap_blocks_distant_pairs(self):
        db = db_of(*[[(8, "Work"), (20, "Nightlife")]] * 4)
        unconstrained = modified_prefixspan(db, ModifiedPrefixSpanConfig(
            min_support=0.9, time_tolerance_bins=0))
        assert any(len(p.items) == 2 for p in unconstrained)
        constrained = modified_prefixspan(db, ModifiedPrefixSpanConfig(
            min_support=0.9, time_tolerance_bins=0, max_gap_bins=4))
        assert all(len(p.items) == 1 for p in constrained)

    def test_gap_allows_close_pairs(self):
        db = db_of(*[[(12, "Eatery"), (14, "Work")]] * 4)
        patterns = modified_prefixspan(db, ModifiedPrefixSpanConfig(
            min_support=0.9, time_tolerance_bins=0, max_gap_bins=4))
        assert any(len(p.items) == 2 for p in patterns)

    def test_gap_uses_best_occurrence_not_greedy(self):
        # Pattern (A then B) only satisfiable through the *later* A.
        db = db_of(*[[(1, "A"), (8, "A"), (9, "B")]] * 3)
        patterns = modified_prefixspan(db, ModifiedPrefixSpanConfig(
            min_support=0.9, time_tolerance_bins=0, max_gap_bins=2))
        two_item = [p for p in patterns
                    if [i.label for i in p.items] == ["A", "B"]]
        assert two_item and two_item[0].count == 3


class TestCanonicalization:
    def test_duplicate_evidence_merged(self):
        # Bins 11 and 12 with tolerance 1 support each other identically.
        db = db_of(*[[(11, "Eatery"), (12, "Eatery")]] * 4)
        merged = modified_prefixspan(db, ModifiedPrefixSpanConfig(
            min_support=0.9, time_tolerance_bins=1, limits=MiningLimits(max_length=1)))
        unmerged = modified_prefixspan(db, ModifiedPrefixSpanConfig(
            min_support=0.9, time_tolerance_bins=1, canonicalize_bins=False,
            limits=MiningLimits(max_length=1)))
        assert len(merged) < len(unmerged)


class TestGeneralBehaviour:
    def test_empty_db(self):
        config = ModifiedPrefixSpanConfig()
        assert modified_prefixspan(SequenceDatabase([]), config) == []

    def test_supports_monotone_in_threshold(self, active_db, taxonomy):
        limits = MiningLimits(max_length=2)
        low = as_set(modified_prefixspan(active_db, ModifiedPrefixSpanConfig(
            min_support=0.3, limits=limits, canonicalize_bins=False), taxonomy))
        high = as_set(modified_prefixspan(active_db, ModifiedPrefixSpanConfig(
            min_support=0.6, limits=limits, canonicalize_bins=False), taxonomy))
        assert high <= low

    def test_counts_correct_against_manual_check(self):
        db = db_of(
            [(8, "Work"), (12, "Eatery")],
            [(8, "Work")],
            [(12, "Eatery")],
            [(9, "Work"), (12, "Eatery")],
        )
        patterns = modified_prefixspan(db, ModifiedPrefixSpanConfig(
            min_support=0.5, time_tolerance_bins=1))
        by_labels = {tuple(i.label for i in p.items): p.count for p in patterns}
        assert by_labels[("Work",)] == 3  # bins 8, 8, 9 all match with tol 1
        assert by_labels[("Eatery",)] == 3
        assert by_labels[("Work", "Eatery")] == 2


class TestFlexibleMatcher:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FlexibleMatcher(n_bins=0)
        with pytest.raises(ValueError):
            FlexibleMatcher(n_bins=24, time_tolerance_bins=-1)

    def test_matches_semantics(self, taxonomy):
        matcher = FlexibleMatcher(24, time_tolerance_bins=1, taxonomy=taxonomy,
                                  include_ancestor_labels=True)
        thai = TimedItem(12, "Thai Restaurant")
        assert matcher.matches(TimedItem(12, "Eatery"), thai)
        assert matcher.matches(TimedItem(13, "Thai Restaurant"), thai)
        assert not matcher.matches(TimedItem(14, "Thai Restaurant"), thai)
        assert not matcher.matches(TimedItem(12, "Shops"), thai)

    def test_candidates_include_ancestors(self, taxonomy):
        matcher = FlexibleMatcher(24, taxonomy=taxonomy, include_ancestor_labels=True)
        cands = {c.label for c in matcher.candidates_for(TimedItem(12, "Thai Restaurant"))}
        assert cands == {"Thai Restaurant", "Asian Restaurant", "Eatery"}
