"""The indexed miner is bit-for-bit identical to the reference core.

The indexed :func:`~repro.mining.modified.modified_prefixspan` exists only
for speed — its contract is *exact* output equality with
:func:`~repro.mining.modified.modified_prefixspan_reference` (the original
pool-rescan implementation, kept as the oracle).  These tests sweep that
equality over three independently-seeded synthetic worlds and the full
matcher-configuration surface: time tolerance, gap constraint, ancestor
labels, and canonicalization.
"""

from __future__ import annotations

from datetime import date

import pytest

from repro.data import SMALL_CONFIG, SynthConfig, generate
from repro.mining import (
    MiningLimits,
    ModifiedPrefixSpanConfig,
    build_match_index,
    modified_prefixspan,
    modified_prefixspan_reference,
)
from repro.mining.modified import FlexibleMatcher
from repro.sequences import build_all_databases
from repro.taxonomy import AbstractionLevel, build_default_taxonomy

#: Three pinned, independently-seeded worlds — different seeds shuffle the
#: venues, routines, and noise, so structural edge cases differ per world.
DATASET_CONFIGS = [
    SMALL_CONFIG,
    SynthConfig(
        seed=11,
        n_users=10,
        n_venues=180,
        n_neighborhoods=5,
        start_date=date(2012, 4, 1),
        end_date=date(2012, 6, 1),
    ),
    SynthConfig(
        seed=4099,
        n_users=8,
        n_venues=120,
        n_neighborhoods=4,
        start_date=date(2012, 7, 1),
        end_date=date(2012, 8, 20),
    ),
]

#: The matcher-configuration surface: tolerance × gap × ancestors ×
#: canonicalization, plus a depth-limited run (limits interact with the
#: emission order).
CONFIGS = [
    ModifiedPrefixSpanConfig(),
    ModifiedPrefixSpanConfig(min_support=0.25, time_tolerance_bins=2),
    ModifiedPrefixSpanConfig(min_support=0.4, time_tolerance_bins=0),
    ModifiedPrefixSpanConfig(min_support=0.3, time_tolerance_bins=1, max_gap_bins=4),
    ModifiedPrefixSpanConfig(min_support=0.3, max_gap_bins=2),
    ModifiedPrefixSpanConfig(
        min_support=0.3, time_tolerance_bins=1, include_ancestor_labels=True
    ),
    ModifiedPrefixSpanConfig(min_support=0.5, canonicalize_bins=False),
    ModifiedPrefixSpanConfig(
        min_support=0.25, limits=MiningLimits(min_length=2, max_length=3)
    ),
]


@pytest.fixture(scope="module")
def taxonomy():
    return build_default_taxonomy()


@pytest.fixture(scope="module", params=range(len(DATASET_CONFIGS)))
def world_databases(request, taxonomy):
    dataset = generate(DATASET_CONFIGS[request.param]).dataset
    return build_all_databases(dataset, taxonomy, AbstractionLevel.ROOT)


def _busiest(databases, k):
    uids = sorted(databases, key=lambda uid: len(databases[uid]), reverse=True)
    return [(uid, databases[uid]) for uid in uids[:k]]


@pytest.mark.parametrize("config", CONFIGS)
def test_indexed_equals_reference(world_databases, taxonomy, config):
    for uid, db in _busiest(world_databases, 4):
        indexed = modified_prefixspan(db, config, taxonomy)
        reference = modified_prefixspan_reference(db, config, taxonomy)
        assert indexed == reference, f"user {uid}: indexed output diverged"


def test_leaf_level_with_ancestors_equal(world_databases, taxonomy):
    """LEAF items exercise the full ancestor chain of the taxonomy."""
    config = ModifiedPrefixSpanConfig(
        min_support=0.4,
        include_ancestor_labels=True,
        limits=MiningLimits(max_length=3),
    )
    for uid, db in _busiest(world_databases, 2):
        indexed = modified_prefixspan(db, config, taxonomy)
        reference = modified_prefixspan_reference(db, config, taxonomy)
        assert indexed == reference


class TestMatchIndex:
    """Unit-level invariants of the inverted index itself."""

    @pytest.fixture(scope="class")
    def index_and_matcher(self, world_databases, taxonomy):
        db = _busiest(world_databases, 1)[0][1]
        matcher = FlexibleMatcher(
            n_bins=24, time_tolerance_bins=1, taxonomy=taxonomy
        )
        sequences = tuple(tuple(seq) for seq in db)
        return build_match_index(sequences, matcher), matcher, sequences

    def test_positions_strictly_increasing(self, index_and_matcher):
        index, _, _ = index_and_matcher
        for per_seq in index.positions:
            for plist in per_seq.values():
                assert list(plist) == sorted(set(plist))

    def test_positions_are_exactly_the_matches(self, index_and_matcher):
        """Every indexed position matches; every match is indexed."""
        index, matcher, sequences = index_and_matcher
        for cid, candidate in enumerate(index.candidate_items):
            per_seq = index.positions[cid]
            for seq_index, seq in enumerate(sequences):
                expected = [
                    k for k, item in enumerate(seq) if matcher.matches(candidate, item)
                ]
                assert list(per_seq.get(seq_index, [])) == expected

    def test_candidate_ids_sorted_like_candidate_sort_key(self, index_and_matcher):
        """Ascending id order must reproduce the canonical expansion order."""
        from repro.mining.base import candidate_sort_key

        index, _, _ = index_and_matcher
        items = list(index.candidate_items)
        assert items == sorted(items, key=candidate_sort_key)

    def test_seq_candidates_mirror_positions(self, index_and_matcher):
        index, _, sequences = index_and_matcher
        for seq_index in range(len(sequences)):
            from_lists = set(index.seq_candidates[seq_index])
            from_positions = {
                cid
                for cid, per_seq in enumerate(index.positions)
                if seq_index in per_seq
            }
            assert from_lists == from_positions

    def test_resume_masks_match_reference_semantics(self, index_and_matcher):
        """Bitmask resume positions decode to the oracle's frozensets."""
        index, matcher, sequences = index_and_matcher
        for cid, candidate in enumerate(index.candidate_items):
            for seq_index, seq in list(enumerate(sequences))[:8]:
                for start in (0, 1, len(seq) // 2):
                    mask = index.resume_positions(cid, seq_index, 1 << start, None)
                    expected = {
                        k + 1
                        for k in range(start, len(seq))
                        if matcher.matches(candidate, seq[k])
                    }
                    decoded = set()
                    while mask:
                        low = mask & -mask
                        mask ^= low
                        decoded.add(low.bit_length() - 1)
                    assert decoded == expected
