"""Tests for closed/maximal filtering and pattern statistics."""

import pytest

from repro.mining import (
    SequentialPattern,
    aggregate_stats,
    closed_patterns,
    maximal_patterns,
    sort_patterns,
    top_k_patterns,
    user_mining_stats,
)


def pattern(items, count, n=10):
    return SequentialPattern(items=tuple(items), count=count, support=count / n)


class TestSequentialPattern:
    def test_validation(self):
        with pytest.raises(ValueError):
            SequentialPattern(items=(), count=1, support=0.1)
        with pytest.raises(ValueError):
            SequentialPattern(items=("a",), count=-1, support=0.1)
        with pytest.raises(ValueError):
            SequentialPattern(items=("a",), count=1, support=1.5)

    def test_subpattern(self):
        assert pattern("ac", 1).is_subpattern_of(pattern("abc", 1))
        assert not pattern("ca", 1).is_subpattern_of(pattern("abc", 1))

    def test_format(self):
        text = pattern(("a", "b"), 5).format()
        assert "a → b" in text and "n=5" in text

    def test_len(self):
        assert len(pattern("abc", 1)) == 3


class TestClosed:
    def test_prefix_with_same_count_absorbed(self):
        patterns = [pattern("a", 5), pattern("ab", 5), pattern("b", 7)]
        closed = closed_patterns(patterns)
        assert {p.items for p in closed} == {("a", "b"), ("b",)}

    def test_prefix_with_higher_count_kept(self):
        patterns = [pattern("a", 8), pattern("ab", 5)]
        closed = closed_patterns(patterns)
        assert {p.items for p in closed} == {("a",), ("a", "b")}

    def test_empty(self):
        assert closed_patterns([]) == []


class TestMaximal:
    def test_all_subpatterns_dropped(self):
        patterns = [pattern("a", 8), pattern("b", 6), pattern("ab", 5)]
        maximal = maximal_patterns(patterns)
        assert {p.items for p in maximal} == {("a", "b")}

    def test_incomparable_patterns_kept(self):
        patterns = [pattern("ab", 5), pattern("ba", 4)]
        assert len(maximal_patterns(patterns)) == 2

    def test_maximal_subset_of_closed(self):
        patterns = [pattern("a", 8), pattern("ab", 5), pattern("abc", 5), pattern("c", 9)]
        closed = {p.items for p in closed_patterns(patterns)}
        maximal = {p.items for p in maximal_patterns(patterns)}
        assert maximal <= closed


class TestTopKAndSort:
    def test_sort_by_count_then_length(self):
        patterns = [pattern("a", 3), pattern("bc", 5), pattern("d", 5)]
        ordered = sort_patterns(patterns)
        assert ordered[0].items == ("b", "c")
        assert ordered[1].items == ("d",)

    def test_top_k(self):
        patterns = [pattern("a", i) for i in range(1, 6)]
        top = top_k_patterns(patterns, 2)
        assert [p.count for p in top] == [5, 4]

    def test_top_k_invalid(self):
        with pytest.raises(ValueError):
            top_k_patterns([], -1)


class TestStats:
    def test_user_stats_empty(self):
        stats = user_mining_stats("u", [], n_days=30)
        assert stats.n_sequences == 0
        assert stats.avg_length == 0.0

    def test_user_stats_values(self):
        stats = user_mining_stats("u", [pattern("a", 5), pattern("abc", 3)], n_days=30)
        assert stats.n_sequences == 2
        assert stats.avg_length == pytest.approx(2.0)
        assert stats.max_length == 3

    def test_aggregate(self):
        per_user = {
            "u1": user_mining_stats("u1", [pattern("a", 5)], 30),
            "u2": user_mining_stats("u2", [pattern("ab", 4), pattern("b", 4)], 30),
            "u3": user_mining_stats("u3", [], 30),
        }
        agg = aggregate_stats(0.5, per_user)
        assert agg.n_users == 3
        assert agg.mean_sequences_per_user == pytest.approx(1.0)
        # Length mean excludes the pattern-less user.
        assert agg.mean_avg_length == pytest.approx((1.0 + 1.5) / 2)

    def test_aggregate_empty_raises(self):
        with pytest.raises(ValueError):
            aggregate_stats(0.5, {})

    def test_aggregate_all_empty_users(self):
        per_user = {"u": user_mining_stats("u", [], 10)}
        agg = aggregate_stats(0.5, per_user)
        assert agg.mean_avg_length == 0.0
