"""Randomized sweep: the interned miner decodes bit-for-bit to the oracle.

The interned :func:`~repro.mining.modified.modified_prefixspan` runs its
whole recursion on dense int ids and bitmasks; item objects reappear only
at the emission boundary.  Its contract is unchanged: *exact* equality —
same patterns, same order, same supports — with
:func:`~repro.mining.modified.modified_prefixspan_reference`, the original
object-at-a-time implementation kept verbatim as the oracle.

Where ``test_index_parity`` sweeps the matcher-configuration surface on
three worlds, this sweep goes wide on *data*: five independently-seeded
synthetic worlds crossed with the paper's support sweep, time tolerance,
and both abstraction extremes (ROOT's tiny alphabet vs LEAF's wide one,
which stresses the vocabulary and the candidate id space differently).
"""

from __future__ import annotations

from datetime import date

import pytest

from repro.data import SynthConfig, generate
from repro.mining import (
    ModifiedPrefixSpanConfig,
    modified_prefixspan,
    modified_prefixspan_reference,
)
from repro.sequences import build_all_databases
from repro.taxonomy import AbstractionLevel, build_default_taxonomy

#: Five pinned, independently-seeded worlds with different shapes — user
#: counts, venue density, and span all vary, so sequence-length and
#: alphabet-size edge cases differ per world.
WORLD_CONFIGS = [
    SynthConfig(seed=3, n_users=8, n_venues=90, n_neighborhoods=3,
                start_date=date(2012, 4, 1), end_date=date(2012, 5, 15)),
    SynthConfig(seed=17, n_users=6, n_venues=200, n_neighborhoods=6,
                start_date=date(2012, 5, 1), end_date=date(2012, 6, 10)),
    SynthConfig(seed=101, n_users=10, n_venues=60, n_neighborhoods=2,
                start_date=date(2012, 6, 1), end_date=date(2012, 7, 20)),
    SynthConfig(seed=271, n_users=7, n_venues=150, n_neighborhoods=5,
                start_date=date(2012, 7, 1), end_date=date(2012, 8, 1)),
    SynthConfig(seed=9001, n_users=9, n_venues=110, n_neighborhoods=4,
                start_date=date(2012, 8, 1), end_date=date(2012, 9, 10)),
]

#: The paper's support sweep × tolerance × abstraction extremes.
SUPPORTS = [0.25, 0.5, 0.75]
TOLERANCES = [0, 2]
LEVELS = [AbstractionLevel.ROOT, AbstractionLevel.LEAF]


@pytest.fixture(scope="module")
def taxonomy():
    return build_default_taxonomy()


@pytest.fixture(scope="module", params=range(len(WORLD_CONFIGS)))
def world(request, taxonomy):
    dataset = generate(WORLD_CONFIGS[request.param]).dataset
    return {
        level: build_all_databases(dataset, taxonomy, level) for level in LEVELS
    }


def _busiest(databases, k):
    uids = sorted(databases, key=lambda uid: len(databases[uid]), reverse=True)
    return [(uid, databases[uid]) for uid in uids[:k]]


@pytest.mark.parametrize("level", LEVELS, ids=lambda l: l.value)
@pytest.mark.parametrize("tolerance", TOLERANCES)
@pytest.mark.parametrize("min_support", SUPPORTS)
def test_interned_decodes_equal_to_reference(
    world, taxonomy, min_support, tolerance, level
):
    config = ModifiedPrefixSpanConfig(
        min_support=min_support, time_tolerance_bins=tolerance
    )
    for uid, db in _busiest(world[level], 2):
        interned = modified_prefixspan(db, config, taxonomy)
        reference = modified_prefixspan_reference(db, config, taxonomy)
        assert interned == reference, (
            f"user {uid} @ {level.value}: interned output diverged "
            f"(support={min_support}, tolerance={tolerance})"
        )


def test_emitted_items_are_real_timed_items(world, taxonomy):
    """Decode-at-the-boundary must hand back genuine item objects."""
    from repro.sequences import TimedItem

    _, db = _busiest(world[AbstractionLevel.ROOT], 1)[0]
    for pattern in modified_prefixspan(
        db, ModifiedPrefixSpanConfig(min_support=0.25), taxonomy
    ):
        assert all(isinstance(item, TimedItem) for item in pattern.items)
