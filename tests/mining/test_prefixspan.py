"""Tests for classic PrefixSpan, including oracle cross-checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining import MiningLimits, bruteforce_mine, prefixspan
from repro.sequences import SequenceDatabase

small_dbs = st.lists(
    st.lists(st.sampled_from("abcd"), min_size=0, max_size=6),
    min_size=1,
    max_size=8,
)


def as_set(patterns):
    return {(p.items, p.count) for p in patterns}


class TestHandcrafted:
    @pytest.fixture
    def db(self):
        return SequenceDatabase([
            ["a", "b", "c"],
            ["a", "b"],
            ["a", "c"],
            ["b", "c"],
        ])

    def test_exact_patterns_at_half_support(self, db):
        patterns = {p.items: p.count for p in prefixspan(db, 0.5)}
        assert patterns == {
            ("a",): 3, ("b",): 3, ("c",): 3,
            ("a", "b"): 2, ("a", "c"): 2, ("b", "c"): 2,
        }

    def test_full_support_only_universal(self, db):
        assert prefixspan(db, 1.0) == []

    def test_support_one_quarter_includes_triple(self, db):
        patterns = as_set(prefixspan(db, 0.25))
        assert (("a", "b", "c"), 1) in patterns

    def test_supports_are_fractions(self, db):
        for p in prefixspan(db, 0.5):
            assert p.support == pytest.approx(p.count / len(db))

    def test_max_length_limit(self, db):
        patterns = prefixspan(db, 0.25, MiningLimits(max_length=1))
        assert all(len(p) == 1 for p in patterns)

    def test_min_length_limit(self, db):
        patterns = prefixspan(db, 0.25, MiningLimits(min_length=2))
        assert all(len(p) >= 2 for p in patterns)
        # But longer patterns still found via shorter (unemitted) prefixes.
        assert any(len(p) == 3 for p in patterns)

    def test_empty_db(self):
        assert prefixspan(SequenceDatabase([]), 0.5) == []

    def test_repeated_items_within_sequence(self):
        db = SequenceDatabase([["a", "a", "b"], ["a", "b", "a"]])
        patterns = {p.items: p.count for p in prefixspan(db, 1.0)}
        assert patterns[("a", "a")] == 2
        assert patterns[("a", "b")] == 2
        assert ("a", "a", "b") not in patterns  # only in the first sequence

    def test_canonical_ordering(self, db):
        patterns = prefixspan(db, 0.25)
        counts = [p.count for p in patterns]
        assert counts == sorted(counts, reverse=True)


class TestAprioriProperty:
    def test_prefix_support_monotone(self, active_db):
        patterns = prefixspan(active_db, 0.25, MiningLimits(max_length=3))
        by_items = {p.items: p.count for p in patterns}
        for items, count in by_items.items():
            if len(items) >= 2:
                prefix = items[:-1]
                assert prefix in by_items
                assert by_items[prefix] >= count

    def test_lower_support_superset(self, active_db):
        high = as_set(prefixspan(active_db, 0.6, MiningLimits(max_length=3)))
        low = as_set(prefixspan(active_db, 0.3, MiningLimits(max_length=3)))
        assert high <= low


class TestAgainstOracle:
    @given(small_dbs, st.sampled_from([0.25, 0.5, 0.75, 1.0]))
    @settings(max_examples=60, deadline=None)
    def test_matches_bruteforce(self, raw, min_support):
        db = SequenceDatabase(raw)
        limits = MiningLimits(max_length=4)
        assert as_set(prefixspan(db, min_support, limits)) == as_set(
            bruteforce_mine(db, min_support, limits)
        )

    def test_bruteforce_requires_limit(self):
        with pytest.raises(ValueError):
            bruteforce_mine(SequenceDatabase([["a"]]), 0.5, MiningLimits())


class TestMiningLimits:
    def test_invalid(self):
        with pytest.raises(ValueError):
            MiningLimits(min_length=0)
        with pytest.raises(ValueError):
            MiningLimits(min_length=3, max_length=2)

    def test_admits(self):
        assert MiningLimits().admits_longer_than(100)
        assert MiningLimits(max_length=3).admits_longer_than(2)
        assert not MiningLimits(max_length=3).admits_longer_than(3)
