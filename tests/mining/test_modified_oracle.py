"""Property test: modified PrefixSpan against a brute-force flexible oracle.

The oracle enumerates every candidate pattern (items drawn from the
matcher's candidate generator) up to a length cap and counts support by a
direct flexible-subsequence check — an independent implementation of the
matching semantics.  The miner must produce exactly the same
(pattern, count) set.
"""

from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining import (
    FlexibleMatcher,
    MiningLimits,
    ModifiedPrefixSpanConfig,
    modified_prefixspan,
)
from repro.sequences import SequenceDatabase, TimedItem

N_BINS = 6
LABELS = ("A", "B")

items = st.builds(
    TimedItem,
    bin=st.integers(min_value=0, max_value=N_BINS - 1),
    label=st.sampled_from(LABELS),
)
databases = st.lists(
    st.lists(items, min_size=0, max_size=4).map(
        lambda seq: sorted(seq, key=lambda i: i.bin)  # bins ascend within a day
    ),
    min_size=1,
    max_size=6,
)


def flexible_contains(pattern, sequence, matcher, max_gap):
    """Direct recursive check: does ``sequence`` contain ``pattern`` under
    the flexible semantics (order preserved, per-item match predicate,
    optional bin-gap constraint between consecutive matched items)?"""

    def helper(p_idx, s_start, prev_bin):
        if p_idx == len(pattern):
            return True
        for k in range(s_start, len(sequence)):
            item = sequence[k]
            if prev_bin is not None and max_gap is not None:
                if item.bin - prev_bin > max_gap:
                    continue
            if matcher.matches(pattern[p_idx], item):
                if helper(p_idx + 1, k + 1, item.bin):
                    return True
        return False

    return helper(0, 0, None)


def oracle(db, min_support, matcher, max_length, max_gap):
    """All frequent flexible patterns up to ``max_length`` by enumeration."""
    candidate_items = sorted(
        {cand for seq in db for item in seq for cand in matcher.candidates_for(item)}
    )
    n = len(db)
    min_count = db.min_count(min_support)
    found = {}
    for length in range(1, max_length + 1):
        for combo in product(candidate_items, repeat=length):
            count = sum(
                1 for seq in db if flexible_contains(combo, seq, matcher, max_gap)
            )
            if count >= min_count:
                found[combo] = count
    return found


@given(databases, st.sampled_from([0.34, 0.5, 1.0]),
       st.sampled_from([0, 1]), st.sampled_from([None, 2]))
@settings(max_examples=50, deadline=None)
def test_modified_matches_flexible_oracle(raw, min_support, tolerance, max_gap):
    db = SequenceDatabase(raw)
    matcher = FlexibleMatcher(n_bins=N_BINS, time_tolerance_bins=tolerance)
    config = ModifiedPrefixSpanConfig(
        min_support=min_support,
        limits=MiningLimits(max_length=2),
        time_tolerance_bins=tolerance,
        max_gap_bins=max_gap,
        canonicalize_bins=False,
    )
    mined = {p.items: p.count for p in modified_prefixspan(db, config, n_bins=N_BINS)}
    expected = oracle(db, min_support, matcher, max_length=2, max_gap=max_gap)
    assert mined == expected


def test_oracle_sanity_handcrafted():
    """The oracle itself, pinned on a case small enough to check by hand."""
    db = SequenceDatabase([
        (TimedItem(1, "A"), TimedItem(3, "B")),
        (TimedItem(2, "A"),),
    ])
    matcher = FlexibleMatcher(n_bins=N_BINS, time_tolerance_bins=1)
    found = oracle(db, 0.9, matcher, max_length=2, max_gap=None)
    # (1,A) matches seq1 item (1,A) and seq2 item (2,A); (2,A) matches both too.
    assert found[(TimedItem(1, "A"),)] == 2
    assert found[(TimedItem(2, "A"),)] == 2
    # Two-item patterns only exist in seq1 -> below 90% support.
    assert all(len(p) == 1 for p in found)
