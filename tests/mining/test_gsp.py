"""Tests for the GSP baseline — must agree exactly with PrefixSpan."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining import MiningLimits, gsp, prefixspan
from repro.sequences import SequenceDatabase

small_dbs = st.lists(
    st.lists(st.sampled_from("abc"), min_size=0, max_size=6),
    min_size=1,
    max_size=7,
)


def as_set(patterns):
    return {(p.items, p.count) for p in patterns}


class TestEquivalence:
    @given(small_dbs, st.sampled_from([0.25, 0.5, 1.0]))
    @settings(max_examples=60, deadline=None)
    def test_gsp_equals_prefixspan(self, raw, min_support):
        db = SequenceDatabase(raw)
        assert as_set(gsp(db, min_support)) == as_set(prefixspan(db, min_support))

    def test_equivalence_on_synthetic_user(self, active_db):
        assert as_set(gsp(active_db, 0.4)) == as_set(prefixspan(active_db, 0.4))


class TestBehaviour:
    def test_empty_db(self):
        assert gsp(SequenceDatabase([]), 0.5) == []

    def test_respects_limits(self):
        db = SequenceDatabase([["a", "b", "c"]] * 4)
        patterns = gsp(db, 0.5, MiningLimits(max_length=2))
        assert max(len(p) for p in patterns) == 2
        patterns = gsp(db, 0.5, MiningLimits(min_length=2))
        assert min(len(p) for p in patterns) == 2

    def test_candidate_join_produces_longer_patterns(self):
        db = SequenceDatabase([["a", "b", "c", "d"]] * 3)
        patterns = {p.items for p in gsp(db, 1.0)}
        assert ("a", "b", "c", "d") in patterns
