"""Tests for profile persistence."""

import json

import pytest

from repro.crowd import CrowdAggregator
from repro.persistence import SCHEMA_VERSION, load_profiles, save_profiles


class TestRoundtrip:
    def test_profiles_survive(self, pipeline_result, tmp_path):
        path = save_profiles(pipeline_result.profiles, tmp_path / "profiles.json")
        loaded = load_profiles(path)
        assert set(loaded) == set(pipeline_result.profiles)
        for uid, original in pipeline_result.profiles.items():
            restored = loaded[uid]
            assert restored.patterns == original.patterns
            assert restored.n_days == original.n_days
            assert restored.level == original.level
            assert restored.binning.width_hours == original.binning.width_hours

    def test_crowd_layer_rebuilds_identically(self, pipeline_result, tmp_path):
        path = save_profiles(pipeline_result.profiles, tmp_path / "p.json")
        loaded = load_profiles(path)
        aggregator = CrowdAggregator(
            loaded,
            pipeline_result.dataset,
            pipeline_result.grid,
            pipeline_result.taxonomy,
            binning=pipeline_result.config.binning,
        )
        rebuilt = aggregator.timeline()
        for a, b in zip(rebuilt, pipeline_result.timeline):
            assert a.placements == b.placements

    def test_nested_output_dir_created(self, pipeline_result, tmp_path):
        path = save_profiles(pipeline_result.profiles,
                             tmp_path / "deep" / "dir" / "p.json")
        assert path.exists()


class TestErrors:
    def test_empty_collection_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            save_profiles({}, tmp_path / "p.json")

    def test_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="not valid"):
            load_profiles(path)

    def test_wrong_schema(self, pipeline_result, tmp_path):
        path = save_profiles(pipeline_result.profiles, tmp_path / "p.json")
        doc = json.loads(path.read_text())
        doc["schema"] = SCHEMA_VERSION + 99
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="unsupported profile schema"):
            load_profiles(path)

    def test_corrupted_patterns(self, pipeline_result, tmp_path):
        path = save_profiles(pipeline_result.profiles, tmp_path / "p.json")
        doc = json.loads(path.read_text())
        first = next(iter(doc["profiles"].values()))
        if first["patterns"]:
            first["patterns"][0]["count"] = "many"
            path.write_text(json.dumps(doc))
            with pytest.raises(ValueError, match="malformed"):
                load_profiles(path)

    def test_mixed_binnings_rejected(self, pipeline_result, tmp_path):
        from repro.patterns import UserPatternProfile
        from repro.sequences import TWO_HOURLY

        mixed = dict(pipeline_result.profiles)
        mixed["odd"] = UserPatternProfile("odd", (), 5, binning=TWO_HOURLY)
        with pytest.raises(ValueError, match="share one binning"):
            save_profiles(mixed, tmp_path / "p.json")


class TestAtomicity:
    """A crashed save can never truncate or corrupt an existing file."""

    def test_failed_save_keeps_old_document(self, pipeline_result, tmp_path,
                                            monkeypatch):
        path = save_profiles(pipeline_result.profiles, tmp_path / "p.json")
        before = path.read_text()

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr("repro.persistence.json.dump", explode)
        with pytest.raises(OSError, match="disk full"):
            save_profiles(pipeline_result.profiles, path)
        assert path.read_text() == before
        assert load_profiles(path)  # still a complete, valid document

    def test_failed_save_leaves_no_temp_files(self, pipeline_result, tmp_path,
                                              monkeypatch):
        target = tmp_path / "p.json"

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr("repro.persistence.json.dump", explode)
        with pytest.raises(OSError):
            save_profiles(pipeline_result.profiles, target)
        assert list(tmp_path.iterdir()) == []

    def test_successful_save_leaves_no_temp_files(self, pipeline_result, tmp_path):
        path = save_profiles(pipeline_result.profiles, tmp_path / "p.json")
        assert [p.name for p in tmp_path.iterdir()] == [path.name]
