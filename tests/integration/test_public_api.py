"""Import-surface tests: every exported name resolves, in every package."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.crowd",
    "repro.data",
    "repro.data.synth",
    "repro.experiments",
    "repro.geo",
    "repro.mining",
    "repro.patterns",
    "repro.persistence",
    "repro.pipeline",
    "repro.prediction",
    "repro.sequences",
    "repro.taxonomy",
    "repro.viz",
    "repro.web",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} must declare __all__"
    for export in module.__all__:
        assert hasattr(module, export), f"{name}.__all__ lists missing {export!r}"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_is_sorted_unique(name):
    module = importlib.import_module(name)
    exports = list(module.__all__)
    assert len(exports) == len(set(exports)), f"{name}.__all__ has duplicates"


def test_top_level_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_cli_entry_point_importable():
    from repro.cli.main import build_parser

    parser = build_parser()
    commands = {a.dest for a in parser._subparsers._group_actions[0]._choices_actions}  # noqa: SLF001
    # Guard the documented command set.
    expected = {"generate", "stats", "mine", "crowd", "figures", "serve",
                "predict", "analyze", "audit", "communities", "monitor",
                "export-spmf"}
    names = set(parser._subparsers._group_actions[0].choices)  # noqa: SLF001
    assert expected <= names
