"""The paper's qualitative claims, asserted against the reproduction.

Each test names the claim it checks.  These run at small scale; the
benchmark harness re-measures them at paper scale.
"""

import pytest

from repro.data import dataset_stats
from repro.experiments import crowd_shift, run_support_sweep
from repro.mining import ModifiedPrefixSpanConfig, modified_prefixspan, prefixspan
from repro.sequences import build_user_database
from repro.taxonomy import AbstractionLevel


class TestSparsityNarrative:
    def test_gtsm_data_is_sparse(self, small_ds):
        """§I.1: voluntary check-ins yield <1 record per user-day."""
        assert dataset_stats(small_ds).is_sparse

    def test_median_below_mean(self, small_ds):
        """§I.1: activity is right-skewed (median 153 < mean 210 in the paper)."""
        stats = dataset_stats(small_ds)
        assert stats.median_records_per_user <= stats.mean_records_per_user


class TestFlexiblePatternsClaim:
    def test_abstraction_reveals_hidden_routine(self, small_ds, taxonomy):
        """Intro: 'Thai Express / Seasoning Thai / Thai Pothong' — the venue-
        level pattern is invisible, the category-level one is strong."""
        uid = max(small_ds.user_ids(), key=lambda u: len(small_ds.for_user(u)))
        venue_db = build_user_database(small_ds, uid, taxonomy, AbstractionLevel.VENUE)
        root_db = build_user_database(small_ds, uid, taxonomy, AbstractionLevel.ROOT)
        config = ModifiedPrefixSpanConfig(min_support=0.5)
        venue_patterns = modified_prefixspan(venue_db, config, taxonomy)
        root_patterns = modified_prefixspan(root_db, config, taxonomy)
        assert len(root_patterns) > len(venue_patterns)

    def test_modified_finds_at_least_classic(self, active_db, taxonomy):
        """The time-tolerant matcher can only add support, never remove it."""
        classic = prefixspan(active_db, 0.5)
        flexible = modified_prefixspan(
            active_db,
            ModifiedPrefixSpanConfig(min_support=0.5, canonicalize_bins=False),
            taxonomy,
        )
        classic_items = {p.items for p in classic}
        flexible_by_items = {p.items: p.count for p in flexible}
        for p in classic:
            assert flexible_by_items.get(p.items, 0) >= p.count


class TestSectionThreeShapes:
    @pytest.fixture(scope="class")
    def sweep(self, pipeline_result, taxonomy):
        return run_support_sweep(pipeline_result.dataset, taxonomy,
                                 supports=(0.25, 0.5, 0.75))

    def test_fig5_shape(self, sweep):
        """Fig. 5: sequences/user decreases; 0.25→0.5 drop is the big one."""
        _, ys = sweep.mean_sequences_series()
        assert ys[0] > ys[1] > ys[2] or (ys[0] > ys[2] and ys[1] >= ys[2])
        assert (ys[0] - ys[1]) >= (ys[1] - ys[2])

    def test_fig7_shape(self, sweep):
        """Fig. 7: average pattern length decreases with support."""
        _, ys = sweep.mean_length_series()
        assert ys[0] >= ys[2]

    def test_short_patterns_more_frequent_than_long(self, active_db, taxonomy):
        """§III: 'Eatery' certifies more often than 'Eatery, Shops'."""
        patterns = modified_prefixspan(
            active_db, ModifiedPrefixSpanConfig(min_support=0.25), taxonomy
        )
        singles = [p.count for p in patterns if len(p.items) == 1]
        doubles = [p.count for p in patterns if len(p.items) == 2]
        if singles and doubles:
            assert max(singles) >= max(doubles)


class TestCrowdClaims:
    def test_crowd_relocates_over_the_day(self, pipeline_result):
        """Figs. 3-4: 'if we change the time, the crowd locations may change'."""
        snaps = [s for s in pipeline_result.timeline if s.n_users > 0]
        assert len(snaps) >= 2
        shifts = [crowd_shift(a, b) for a, b in zip(snaps, snaps[1:])]
        assert max(shifts) > 0.0

    def test_users_grouped_by_place_and_time(self, pipeline_result):
        """§I.3: co-located same-label users form groups."""
        best = pipeline_result.aggregator.busiest_window()
        groups = best.groups()
        assert groups
        assert sum(g.size for g in groups) == best.n_users
