"""End-to-end pipeline integration tests."""

import json

import pytest

from repro.data import ActiveUserFilter, small_dataset
from repro.experiments import run_all
from repro.pipeline import PipelineConfig, run_pipeline


class TestPipeline:
    def test_phases_chain(self, pipeline_result, small_ds):
        assert pipeline_result.report is not None
        assert pipeline_result.report.input_checkins == len(small_ds)
        assert pipeline_result.n_users == pipeline_result.dataset.n_users
        assert len(pipeline_result.timeline) == 24

    def test_grid_covers_dataset(self, pipeline_result):
        bbox = pipeline_result.grid.bbox
        for record in pipeline_result.dataset:
            assert bbox.contains_lat_lon(record.lat, record.lon)

    def test_profile_lookup(self, pipeline_result):
        uid = sorted(pipeline_result.profiles)[0]
        assert pipeline_result.profile(uid).user_id == uid
        with pytest.raises(KeyError, match="activity filter"):
            pipeline_result.profile("ghost")

    def test_skip_preprocess(self, pipeline_result):
        inner = pipeline_result.dataset
        config = PipelineConfig(skip_preprocess=True)
        again = run_pipeline(inner, config)
        assert again.report is None
        assert again.dataset.n_users == inner.n_users

    def test_over_strict_filter_raises(self, small_ds):
        config = PipelineConfig(
            window_months=2,
            activity=ActiveUserFilter(min_qualifying_days=10_000),
        )
        with pytest.raises(ValueError, match="removed every record"):
            run_pipeline(small_ds, config)

    def test_deterministic_end_to_end(self, small_ds):
        config = PipelineConfig(window_months=2,
                                activity=ActiveUserFilter(min_qualifying_days=25))
        a = run_pipeline(small_ds, config)
        b = run_pipeline(small_ds, config)
        assert sorted(a.profiles) == sorted(b.profiles)
        for uid in a.profiles:
            assert a.profiles[uid].patterns == b.profiles[uid].patterns
        for snap_a, snap_b in zip(a.timeline, b.timeline):
            assert snap_a.placements == snap_b.placements


class TestRunAll:
    def test_full_reproduction_artifacts(self, tmp_path):
        out = run_all(tmp_path / "out", scale="small", include_prediction=False)
        results = json.loads((out.output_dir / "results.json").read_text())
        # Every experiment family is present.
        assert results["dataset_stats"]
        assert results["preprocess"]
        assert len(results["sweep_rows"]) == 5
        assert results["crowd_views"]
        assert (out.output_dir / "report.html").stat().st_size > 10_000

    def test_results_deterministic(self, tmp_path):
        a = run_all(tmp_path / "a", scale="small", include_prediction=False)
        b = run_all(tmp_path / "b", scale="small", include_prediction=False)
        ra = json.loads((a.output_dir / "results.json").read_text())
        rb = json.loads((b.output_dir / "results.json").read_text())
        assert ra == rb

    def test_unknown_scale_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown scale"):
            run_all(tmp_path / "x", scale="galactic")


class TestRunAllWithPrediction:
    def test_prediction_reports_present(self, tmp_path):
        out = run_all(tmp_path / "pred", scale="small", include_prediction=True)
        reports = out.prediction.get("reports", {})
        assert {"frequency", "markov-1", "markov-2", "rnn", "pattern-based"} <= set(reports)
        for row in reports.values():
            assert 0.0 <= row["acc@1"] <= row["acc@3"] <= 1.0


class TestPipelineVariants:
    def test_weekday_conditioned_pipeline(self, small_ds):
        from repro.data import ActiveUserFilter

        config = PipelineConfig(window_months=2,
                                activity=ActiveUserFilter(min_qualifying_days=25),
                                day_kind="weekday")
        result = run_pipeline(small_ds, config)
        assert result.n_users > 0
        # Weekday profiles cover at most as many days as unconditioned ones.
        all_config = PipelineConfig(window_months=2,
                                    activity=ActiveUserFilter(min_qualifying_days=25))
        all_result = run_pipeline(small_ds, all_config)
        for uid, profile in result.profiles.items():
            assert profile.n_days <= all_result.profiles[uid].n_days

    def test_two_hourly_pipeline(self, small_ds):
        from repro.data import ActiveUserFilter
        from repro.sequences import TWO_HOURLY

        config = PipelineConfig(window_months=2,
                                activity=ActiveUserFilter(min_qualifying_days=25),
                                binning=TWO_HOURLY)
        result = run_pipeline(small_ds, config)
        assert len(result.timeline) == 12
        for snap in result.timeline:
            for p in snap.placements:
                assert 0 <= p.bin < 12
