"""Tests for geographic points and great-circle geometry."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import (
    EARTH_RADIUS_M,
    GeoPoint,
    centroid,
    destination_point,
    equirectangular_m,
    haversine_m,
    initial_bearing_deg,
    midpoint,
    normalize_lon,
    validate_lat_lon,
)
from repro.geo.point import path_length_m

lat_strategy = st.floats(min_value=-89.0, max_value=89.0)
lon_strategy = st.floats(min_value=-179.0, max_value=179.0)


class TestValidation:
    def test_valid_extremes(self):
        validate_lat_lon(90.0, 180.0)
        validate_lat_lon(-90.0, -180.0)

    @pytest.mark.parametrize("lat,lon", [(91, 0), (-91, 0), (0, 181), (0, -181)])
    def test_out_of_range_raises(self, lat, lon):
        with pytest.raises(ValueError):
            validate_lat_lon(lat, lon)

    def test_geopoint_validates_on_construction(self):
        with pytest.raises(ValueError):
            GeoPoint(100.0, 0.0)

    def test_geopoint_is_hashable_and_ordered(self):
        a = GeoPoint(1.0, 2.0)
        b = GeoPoint(1.0, 3.0)
        assert a < b
        assert len({a, b, GeoPoint(1.0, 2.0)}) == 2


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_m(40.0, -74.0, 40.0, -74.0) == 0.0

    def test_known_distance_nyc_la(self):
        # JFK to LAX is about 3,974 km great-circle.
        d = haversine_m(40.6413, -73.7781, 33.9416, -118.4085)
        assert d == pytest.approx(3_974_000, rel=0.01)

    def test_one_degree_latitude(self):
        d = haversine_m(0.0, 0.0, 1.0, 0.0)
        assert d == pytest.approx(111_195, rel=0.001)

    def test_antipodal_is_half_circumference(self):
        d = haversine_m(0.0, 0.0, 0.0, 180.0)
        assert d == pytest.approx(math.pi * EARTH_RADIUS_M, rel=1e-6)

    @given(lat_strategy, lon_strategy, lat_strategy, lon_strategy)
    @settings(max_examples=60)
    def test_symmetry(self, lat1, lon1, lat2, lon2):
        assert haversine_m(lat1, lon1, lat2, lon2) == pytest.approx(
            haversine_m(lat2, lon2, lat1, lon1), abs=1e-6
        )

    @given(lat_strategy, lon_strategy, lat_strategy, lon_strategy)
    @settings(max_examples=60)
    def test_non_negative_and_bounded(self, lat1, lon1, lat2, lon2):
        d = haversine_m(lat1, lon1, lat2, lon2)
        assert 0.0 <= d <= math.pi * EARTH_RADIUS_M + 1.0

    def test_equirectangular_close_at_city_scale(self):
        # Within NYC the fast approximation should agree to <0.1%.
        exact = haversine_m(40.70, -74.00, 40.80, -73.90)
        approx = equirectangular_m(40.70, -74.00, 40.80, -73.90)
        assert approx == pytest.approx(exact, rel=1e-3)


class TestBearingAndDestination:
    def test_bearing_due_north(self):
        assert initial_bearing_deg(0.0, 0.0, 1.0, 0.0) == pytest.approx(0.0, abs=1e-9)

    def test_bearing_due_east(self):
        assert initial_bearing_deg(0.0, 0.0, 0.0, 1.0) == pytest.approx(90.0, abs=1e-9)

    @given(lat_strategy, lon_strategy,
           st.floats(min_value=0.0, max_value=359.9),
           st.floats(min_value=1.0, max_value=100_000.0))
    @settings(max_examples=60)
    def test_destination_distance_roundtrip(self, lat, lon, bearing, distance):
        dest_lat, dest_lon = destination_point(lat, lon, bearing, distance)
        back = haversine_m(lat, lon, dest_lat, dest_lon)
        assert back == pytest.approx(distance, rel=1e-6, abs=1e-3)

    def test_offset_method(self):
        p = GeoPoint(40.0, -74.0)
        q = p.offset(0.0, 1000.0)
        assert q.lat > p.lat
        assert p.distance_to(q) == pytest.approx(1000.0, rel=1e-6)


class TestMidpointCentroid:
    def test_midpoint_on_equator(self):
        m = midpoint(GeoPoint(0.0, 0.0), GeoPoint(0.0, 10.0))
        assert m.lat == pytest.approx(0.0, abs=1e-9)
        assert m.lon == pytest.approx(5.0, abs=1e-9)

    def test_midpoint_equidistant(self):
        a, b = GeoPoint(40.7, -74.0), GeoPoint(41.2, -73.5)
        m = midpoint(a, b)
        assert a.distance_to(m) == pytest.approx(b.distance_to(m), rel=1e-9)

    def test_centroid_of_single_point(self):
        p = GeoPoint(40.0, -74.0)
        c = centroid([p])
        assert c.lat == pytest.approx(40.0, abs=1e-9)
        assert c.lon == pytest.approx(-74.0, abs=1e-9)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_centroid_symmetric_square(self):
        pts = [GeoPoint(40.0, -74.0), GeoPoint(40.2, -74.0),
               GeoPoint(40.0, -73.8), GeoPoint(40.2, -73.8)]
        c = centroid(pts)
        assert c.lat == pytest.approx(40.1, abs=1e-3)
        assert c.lon == pytest.approx(-73.9, abs=1e-3)


class TestNormalizeLon:
    @pytest.mark.parametrize("raw,expected", [
        (0.0, 0.0), (180.0, -180.0), (-180.0, -180.0),
        (190.0, -170.0), (-190.0, 170.0), (360.0, 0.0), (540.0, -180.0),
    ])
    def test_wrapping(self, raw, expected):
        assert normalize_lon(raw) == pytest.approx(expected, abs=1e-9)

    @given(st.floats(min_value=-1000.0, max_value=1000.0))
    @settings(max_examples=50)
    def test_always_in_range(self, lon):
        wrapped = normalize_lon(lon)
        assert -180.0 <= wrapped < 180.0


class TestPathLength:
    def test_empty_and_single(self):
        assert path_length_m([]) == 0.0
        assert path_length_m([GeoPoint(0, 0)]) == 0.0

    def test_two_legs_sum(self):
        a, b, c = GeoPoint(0, 0), GeoPoint(0, 1), GeoPoint(1, 1)
        assert path_length_m([a, b, c]) == pytest.approx(
            a.distance_to(b) + b.distance_to(c)
        )
