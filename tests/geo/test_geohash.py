"""Tests for geohash encode/decode/neighbors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import (
    geohash_decode,
    geohash_decode_bbox,
    geohash_encode,
    geohash_neighbors,
    precision_for_cell_size_m,
)
from repro.geo.geohash import expand


class TestKnownValues:
    def test_wikipedia_example(self):
        # The canonical geohash example: (42.605, -5.603) -> "ezs42".
        assert geohash_encode(42.605, -5.603, 5) == "ezs42"

    def test_decode_center_close(self):
        lat, lon = geohash_decode("ezs42")
        assert lat == pytest.approx(42.605, abs=0.03)
        assert lon == pytest.approx(-5.603, abs=0.03)

    def test_times_square(self):
        h = geohash_encode(40.7580, -73.9855, 7)
        assert h.startswith("dr5ru")


class TestRoundtrip:
    @given(st.floats(min_value=-89.9, max_value=89.9),
           st.floats(min_value=-179.9, max_value=179.9),
           st.integers(min_value=1, max_value=9))
    @settings(max_examples=80)
    def test_decode_bbox_contains_point(self, lat, lon, precision):
        h = geohash_encode(lat, lon, precision)
        min_lat, min_lon, max_lat, max_lon = geohash_decode_bbox(h)
        assert min_lat <= lat <= max_lat
        assert min_lon <= lon <= max_lon

    @given(st.floats(min_value=-89.9, max_value=89.9),
           st.floats(min_value=-179.9, max_value=179.9))
    @settings(max_examples=50)
    def test_center_reencodes_to_same_hash(self, lat, lon):
        h = geohash_encode(lat, lon, 7)
        lat_c, lon_c = geohash_decode(h)
        assert geohash_encode(lat_c, lon_c, 7) == h

    def test_prefix_nesting(self):
        h = geohash_encode(40.7580, -73.9855, 8)
        outer = geohash_decode_bbox(h[:5])
        inner = geohash_decode_bbox(h)
        assert outer[0] <= inner[0] and outer[1] <= inner[1]
        assert outer[2] >= inner[2] and outer[3] >= inner[3]


class TestErrors:
    def test_bad_precision(self):
        with pytest.raises(ValueError):
            geohash_encode(0, 0, 0)
        with pytest.raises(ValueError):
            geohash_encode(0, 0, 13)

    def test_bad_coords(self):
        with pytest.raises(ValueError):
            geohash_encode(91, 0)

    def test_bad_character(self):
        with pytest.raises(ValueError):
            geohash_decode_bbox("dr5a")  # 'a' is not base-32 geohash

    def test_empty_hash(self):
        with pytest.raises(ValueError):
            geohash_decode_bbox("")


class TestNeighbors:
    def test_interior_has_8(self):
        assert len(geohash_neighbors("dr5ru7h")) == 8

    def test_neighbors_are_adjacent(self):
        h = "dr5ru"
        lat0, lon0 = geohash_decode(h)
        min_lat, min_lon, max_lat, max_lon = geohash_decode_bbox(h)
        dlat, dlon = max_lat - min_lat, max_lon - min_lon
        for n in geohash_neighbors(h):
            lat, lon = geohash_decode(n)
            assert abs(lat - lat0) <= dlat * 1.5
            assert abs(lon - lon0) <= dlon * 1.5

    def test_expand_includes_self(self):
        assert "dr5ru"in expand("dr5ru")

    def test_pole_has_fewer(self):
        near_pole = geohash_encode(89.99, 0.0, 4)
        assert len(geohash_neighbors(near_pole)) < 8


class TestPrecisionSelection:
    def test_monotonic(self):
        assert precision_for_cell_size_m(1_000_000) <= precision_for_cell_size_m(100)

    @pytest.mark.parametrize("size,expected", [(5_000_000, 1), (150_000, 4), (1000, 7), (0.01, 12)])
    def test_known_sizes(self, size, expected):
        assert precision_for_cell_size_m(size) == expected

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            precision_for_cell_size_m(0)
