"""Tests for bounding boxes."""

import pytest

from repro.geo import NYC_BBOX, BoundingBox, GeoPoint


@pytest.fixture
def box():
    return BoundingBox(40.0, -74.5, 41.0, -73.5)


class TestConstruction:
    def test_inverted_lat_raises(self):
        with pytest.raises(ValueError):
            BoundingBox(41.0, -74.0, 40.0, -73.0)

    def test_inverted_lon_raises(self):
        with pytest.raises(ValueError):
            BoundingBox(40.0, -73.0, 41.0, -74.0)

    def test_invalid_coords_raise(self):
        with pytest.raises(ValueError):
            BoundingBox(40.0, -74.0, 95.0, -73.0)

    def test_from_points(self):
        pts = [GeoPoint(40.5, -74.2), GeoPoint(40.9, -73.6), GeoPoint(40.7, -74.0)]
        box = BoundingBox.from_points(pts)
        assert box.min_lat == 40.5
        assert box.max_lat == 40.9
        assert box.min_lon == -74.2
        assert box.max_lon == -73.6

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.from_points([])

    def test_around_contains_circle(self):
        center = GeoPoint(40.7, -74.0)
        box = BoundingBox.around(center, 5000.0)
        for bearing in (0, 45, 90, 135, 180, 225, 270, 315):
            assert box.contains(center.offset(bearing, 4999.0))

    def test_around_negative_radius_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.around(GeoPoint(0, 0), -1.0)


class TestQueries:
    def test_contains(self, box):
        assert box.contains(GeoPoint(40.5, -74.0))
        assert box.contains(GeoPoint(40.0, -74.5))  # corner inclusive
        assert not box.contains(GeoPoint(39.9, -74.0))

    def test_center(self, box):
        assert box.center == GeoPoint(40.5, -74.0)

    def test_dimensions_positive(self, box):
        assert box.width_m() > 0
        assert box.height_m() > 0
        # NYC-latitude box: 1 deg lat ~111 km.
        assert box.height_m() == pytest.approx(111_000, rel=0.01)

    def test_intersects_and_intersection(self, box):
        other = BoundingBox(40.5, -74.0, 41.5, -73.0)
        assert box.intersects(other)
        inter = box.intersection(other)
        assert inter == BoundingBox(40.5, -74.0, 41.0, -73.5)

    def test_disjoint_intersection_none(self, box):
        other = BoundingBox(42.0, -74.0, 43.0, -73.0)
        assert not box.intersects(other)
        assert box.intersection(other) is None

    def test_union_covers_both(self, box):
        other = BoundingBox(41.5, -75.0, 42.0, -74.8)
        union = box.union(other)
        for corner in list(box.corners()) + list(other.corners()):
            assert union.contains(corner)

    def test_expand_and_clamp(self, box):
        bigger = box.expand(0.5)
        assert bigger.min_lat == 39.5
        near_pole = BoundingBox(89.5, 0.0, 90.0, 1.0)
        assert near_pole.expand(1.0).max_lat == 90.0

    def test_quadrants_tile_exactly(self, box):
        quadrants = box.quadrants()
        assert len(quadrants) == 4
        assert sum(q.lat_span * q.lon_span for q in quadrants) == pytest.approx(
            box.lat_span * box.lon_span
        )
        assert quadrants[0].min_lat == box.min_lat
        assert quadrants[3].max_lat == box.max_lat

    def test_nyc_constant_sane(self):
        assert NYC_BBOX.contains(GeoPoint(40.7580, -73.9855))  # Times Square
