"""Tests for projections and vectorized distances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import (
    BoundingBox,
    EquirectangularProjection,
    GeoPoint,
    ScreenProjection,
    haversine_m,
    haversine_matrix_m,
    pairwise_haversine_m,
)


class TestEquirectangular:
    def setup_method(self):
        self.proj = EquirectangularProjection(GeoPoint(40.7, -74.0))

    def test_origin_maps_to_zero(self):
        assert self.proj.forward(40.7, -74.0) == (0.0, 0.0)

    def test_north_is_positive_y(self):
        _, y = self.proj.forward(40.8, -74.0)
        assert y > 0

    def test_east_is_positive_x(self):
        x, _ = self.proj.forward(40.7, -73.9)
        assert x > 0

    @given(st.floats(min_value=40.5, max_value=40.9),
           st.floats(min_value=-74.2, max_value=-73.8))
    @settings(max_examples=50)
    def test_roundtrip(self, lat, lon):
        x, y = self.proj.forward(lat, lon)
        lat2, lon2 = self.proj.inverse(x, y)
        assert lat2 == pytest.approx(lat, abs=1e-9)
        assert lon2 == pytest.approx(lon, abs=1e-9)

    def test_distance_preserved_locally(self):
        x, y = self.proj.forward(40.71, -74.01)
        planar = (x**2 + y**2) ** 0.5
        true = haversine_m(40.7, -74.0, 40.71, -74.01)
        assert planar == pytest.approx(true, rel=1e-3)

    def test_forward_arrays_matches_scalar(self):
        lats = np.array([40.71, 40.75])
        lons = np.array([-74.01, -73.95])
        xs, ys = self.proj.forward_arrays(lats, lons)
        for i in range(2):
            x, y = self.proj.forward(lats[i], lons[i])
            assert xs[i] == pytest.approx(x)
            assert ys[i] == pytest.approx(y)


class TestScreenProjection:
    def setup_method(self):
        self.bbox = BoundingBox(40.0, -75.0, 41.0, -74.0)
        self.proj = ScreenProjection(self.bbox, 800, 600, padding_px=10)

    def test_corners(self):
        # North-west corner is top-left (inside padding).
        x, y = self.proj.to_screen(41.0, -75.0)
        assert (x, y) == (10.0, 10.0)
        x, y = self.proj.to_screen(40.0, -74.0)
        assert (x, y) == (790.0, 590.0)

    def test_roundtrip(self):
        lat, lon = self.proj.to_geo(*self.proj.to_screen(40.42, -74.37))
        assert lat == pytest.approx(40.42, abs=1e-9)
        assert lon == pytest.approx(-74.37, abs=1e-9)

    def test_invalid_dimensions_raise(self):
        with pytest.raises(ValueError):
            ScreenProjection(self.bbox, 0, 100)
        with pytest.raises(ValueError):
            ScreenProjection(self.bbox, 100, 100, padding_px=60)


class TestVectorizedHaversine:
    def test_matches_scalar(self):
        lats1 = np.array([40.7, 40.8])
        lons1 = np.array([-74.0, -73.9])
        lats2 = np.array([40.75, 40.85, 40.9])
        lons2 = np.array([-74.05, -73.85, -73.8])
        matrix = haversine_matrix_m(lats1, lons1, lats2, lons2)
        assert matrix.shape == (2, 3)
        for i in range(2):
            for j in range(3):
                assert matrix[i, j] == pytest.approx(
                    haversine_m(lats1[i], lons1[i], lats2[j], lons2[j]), rel=1e-9
                )

    def test_pairwise_symmetric_zero_diagonal(self):
        lats = np.array([40.7, 40.8, 40.9])
        lons = np.array([-74.0, -73.9, -73.8])
        matrix = pairwise_haversine_m(lats, lons)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)
