"""Tests for the microcell grid."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import BoundingBox, GeoPoint, MicrocellGrid


@pytest.fixture
def grid():
    return MicrocellGrid(BoundingBox(40.0, -75.0, 41.0, -74.0), cell_size_m=5000.0)


class TestConstruction:
    def test_dimensions(self, grid):
        # ~111 km tall / ~84 km wide at 5 km cells.
        assert grid.n_rows == 22
        assert 15 <= grid.n_cols <= 18
        assert len(grid) == grid.n_rows * grid.n_cols

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            MicrocellGrid(BoundingBox(40, -75, 41, -74), cell_size_m=0)

    def test_cell_sizes_near_target(self, grid):
        assert grid.cell_width_m() == pytest.approx(5000, rel=0.15)
        assert grid.cell_height_m() == pytest.approx(5000, rel=0.15)

    def test_tiny_bbox_single_cell(self):
        grid = MicrocellGrid(BoundingBox(40.0, -74.0, 40.001, -73.999), 5000.0)
        assert grid.n_rows == 1 and grid.n_cols == 1


class TestIndexing:
    def test_corners(self, grid):
        assert grid.cell_index(40.0, -75.0) == (0, 0)
        assert grid.cell_index(41.0, -74.0) == (grid.n_rows - 1, grid.n_cols - 1)

    def test_outside_raises(self, grid):
        with pytest.raises(ValueError):
            grid.cell_index(39.9, -74.5)

    def test_clamped_never_raises(self, grid):
        assert grid.cell_index_clamped(39.0, -80.0) == (0, 0)
        assert grid.cell_index_clamped(50.0, 0.0) == (grid.n_rows - 1, grid.n_cols - 1)

    @given(st.floats(min_value=40.0, max_value=41.0),
           st.floats(min_value=-75.0, max_value=-74.0))
    @settings(max_examples=80)
    def test_point_inside_its_cell(self, lat, lon):
        grid = MicrocellGrid(BoundingBox(40.0, -75.0, 41.0, -74.0), cell_size_m=5000.0)
        cell = grid.cell(grid.cell_index(lat, lon))
        assert cell.bbox.contains_lat_lon(lat, lon)

    def test_cell_out_of_range_raises(self, grid):
        with pytest.raises(IndexError):
            grid.cell((grid.n_rows, 0))

    def test_cell_id_roundtrip(self, grid):
        cell = grid.cell((3, 7))
        assert cell.cell_id == "r003c007"
        assert grid.cell_by_id(cell.cell_id).index == (3, 7)

    def test_malformed_cell_id_raises(self, grid):
        with pytest.raises(ValueError):
            grid.cell_by_id("banana")


class TestQueries:
    def test_neighbors_interior_8(self, grid):
        assert len(grid.neighbors((5, 5))) == 8
        assert len(grid.neighbors((5, 5), diagonal=False)) == 4

    def test_neighbors_corner_3(self, grid):
        assert len(grid.neighbors((0, 0))) == 3

    def test_bin_points(self, grid):
        pts = [GeoPoint(40.05, -74.95)] * 3 + [GeoPoint(40.95, -74.05)]
        counts = grid.bin_points(pts)
        assert sum(counts.values()) == 4
        assert max(counts.values()) == 3

    def test_cells_within_radius(self, grid):
        center = grid.cell((10, 8)).center
        cells = grid.cells_within(center, 6000.0)
        assert grid.cell_index(center.lat, center.lon) in {c.index for c in cells}
        for cell in cells:
            assert center.distance_to(cell.center) <= 6000.0

    def test_cells_within_negative_raises(self, grid):
        with pytest.raises(ValueError):
            grid.cells_within(GeoPoint(40.5, -74.5), -5.0)

    def test_iteration_covers_all(self, grid):
        assert len(list(grid)) == len(grid)
        ids = {c.cell_id for c in grid}
        assert len(ids) == len(grid)
