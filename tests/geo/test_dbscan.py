"""Tests for the from-scratch geographic DBSCAN."""

import numpy as np
import pytest

from repro.geo import NOISE, GeoPoint, dbscan


def blob(center: GeoPoint, n: int, sigma_m: float, seed: int):
    rng = np.random.default_rng(seed)
    pts = []
    for _ in range(n):
        dlat = rng.normal(0, sigma_m) / 111_320.0
        dlon = rng.normal(0, sigma_m) / 85_000.0
        pts.append(GeoPoint(center.lat + dlat, center.lon + dlon))
    return pts


class TestBasics:
    def test_empty(self):
        result = dbscan([], eps_m=100, min_samples=3)
        assert result.labels == ()
        assert result.n_clusters == 0

    def test_invalid_params(self):
        p = [GeoPoint(40, -74)]
        with pytest.raises(ValueError):
            dbscan(p, eps_m=0, min_samples=3)
        with pytest.raises(ValueError):
            dbscan(p, eps_m=10, min_samples=0)

    def test_single_point_is_noise(self):
        result = dbscan([GeoPoint(40, -74)], eps_m=100, min_samples=2)
        assert result.labels == (NOISE,)
        assert result.n_noise == 1


class TestClustering:
    def test_two_well_separated_blobs(self):
        a = blob(GeoPoint(40.70, -74.00), 30, 50.0, seed=1)
        b = blob(GeoPoint(40.80, -73.90), 30, 50.0, seed=2)
        result = dbscan(a + b, eps_m=300, min_samples=4)
        assert result.n_clusters == 2
        labels_a = {result.labels[i] for i in range(30)}
        labels_b = {result.labels[i] for i in range(30, 60)}
        assert labels_a.isdisjoint(labels_b)
        # Every point in a dense blob should be clustered, not noise.
        assert result.n_noise == 0

    def test_isolated_outlier_is_noise(self):
        pts = blob(GeoPoint(40.70, -74.00), 20, 40.0, seed=3)
        pts.append(GeoPoint(40.90, -73.70))
        result = dbscan(pts, eps_m=300, min_samples=4)
        assert result.labels[-1] == NOISE

    def test_eps_merges_clusters(self):
        a = blob(GeoPoint(40.700, -74.000), 20, 30.0, seed=4)
        b = blob(GeoPoint(40.703, -74.000), 20, 30.0, seed=5)  # ~330 m apart
        tight = dbscan(a + b, eps_m=120, min_samples=4)
        loose = dbscan(a + b, eps_m=1500, min_samples=4)
        assert loose.n_clusters == 1
        assert tight.n_clusters >= loose.n_clusters

    def test_min_samples_increase_makes_more_noise(self):
        pts = blob(GeoPoint(40.70, -74.00), 15, 80.0, seed=6)
        lenient = dbscan(pts, eps_m=150, min_samples=2)
        strict = dbscan(pts, eps_m=150, min_samples=14)
        assert strict.n_noise >= lenient.n_noise

    def test_labels_are_contiguous_from_zero(self):
        a = blob(GeoPoint(40.70, -74.00), 25, 40.0, seed=7)
        b = blob(GeoPoint(40.80, -73.90), 25, 40.0, seed=8)
        result = dbscan(a + b, eps_m=300, min_samples=3)
        found = {label for label in result.labels if label != NOISE}
        assert found == set(range(result.n_clusters))

    def test_cluster_members_partition(self):
        pts = blob(GeoPoint(40.70, -74.00), 40, 60.0, seed=9)
        result = dbscan(pts, eps_m=250, min_samples=3)
        members = result.cluster_members()
        total = sum(len(v) for v in members.values())
        assert total + result.n_noise == len(pts)

    def test_deterministic(self):
        pts = blob(GeoPoint(40.70, -74.00), 50, 100.0, seed=10)
        r1 = dbscan(pts, eps_m=200, min_samples=4)
        r2 = dbscan(pts, eps_m=200, min_samples=4)
        assert r1.labels == r2.labels
