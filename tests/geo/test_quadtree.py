"""Tests for the point quadtree, cross-checked against brute force."""

import numpy as np
import pytest

from repro.geo import BoundingBox, GeoPoint, QuadTree


@pytest.fixture
def bbox():
    return BoundingBox(40.0, -75.0, 41.0, -74.0)


def random_points(bbox, n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        GeoPoint(float(rng.uniform(bbox.min_lat, bbox.max_lat)),
                 float(rng.uniform(bbox.min_lon, bbox.max_lon)))
        for _ in range(n)
    ]


class TestInsert:
    def test_size_tracks_inserts(self, bbox):
        tree = QuadTree(bbox, capacity=4)
        for i, p in enumerate(random_points(bbox, 50)):
            tree.insert(p, i)
        assert len(tree) == 50
        assert len(list(tree)) == 50

    def test_outside_raises(self, bbox):
        tree = QuadTree(bbox)
        with pytest.raises(ValueError):
            tree.insert(GeoPoint(39.0, -74.5), "x")

    def test_duplicate_points_bounded_depth(self, bbox):
        tree = QuadTree(bbox, capacity=2, max_depth=4)
        p = GeoPoint(40.5, -74.5)
        for i in range(100):
            tree.insert(p, i)
        assert len(tree) == 100

    def test_invalid_params(self, bbox):
        with pytest.raises(ValueError):
            QuadTree(bbox, capacity=0)
        with pytest.raises(ValueError):
            QuadTree(bbox, max_depth=0)


class TestQueries:
    def test_bbox_query_matches_bruteforce(self, bbox):
        points = random_points(bbox, 300, seed=1)
        tree = QuadTree(bbox, capacity=8)
        for i, p in enumerate(points):
            tree.insert(p, i)
        window = BoundingBox(40.3, -74.7, 40.7, -74.3)
        got = {e.payload for e in tree.query_bbox(window)}
        expected = {i for i, p in enumerate(points) if window.contains(p)}
        assert got == expected

    def test_radius_query_matches_bruteforce(self, bbox):
        points = random_points(bbox, 300, seed=2)
        tree = QuadTree(bbox, capacity=8)
        for i, p in enumerate(points):
            tree.insert(p, i)
        center = GeoPoint(40.5, -74.5)
        radius = 15_000.0
        got = {e.payload for e in tree.query_radius(center, radius)}
        expected = {i for i, p in enumerate(points) if center.distance_to(p) <= radius}
        assert got == expected

    def test_radius_negative_raises(self, bbox):
        with pytest.raises(ValueError):
            QuadTree(bbox).query_radius(GeoPoint(40.5, -74.5), -1.0)

    def test_nearest_matches_bruteforce(self, bbox):
        points = random_points(bbox, 200, seed=3)
        tree = QuadTree(bbox, capacity=8)
        for i, p in enumerate(points):
            tree.insert(p, i)
        center = GeoPoint(40.42, -74.61)
        got = [e.payload for _, e in tree.nearest(center, k=5)]
        expected = sorted(range(len(points)), key=lambda i: center.distance_to(points[i]))[:5]
        assert got == expected

    def test_nearest_k_invalid(self, bbox):
        with pytest.raises(ValueError):
            QuadTree(bbox).nearest(GeoPoint(40.5, -74.5), k=0)

    def test_empty_tree_queries(self, bbox):
        tree = QuadTree(bbox)
        assert tree.query_radius(GeoPoint(40.5, -74.5), 1000.0) == []
        assert tree.nearest(GeoPoint(40.5, -74.5), k=3) == []
