"""Tests for Douglas–Peucker simplification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import GeoPoint, perpendicular_distance_m, simplify_polyline


def line_points(n, lat0=40.7, lon0=-74.0, dlat=0.001):
    return [GeoPoint(lat0 + i * dlat, lon0) for i in range(n)]


class TestPerpendicularDistance:
    def test_point_on_segment_zero(self):
        a, b = GeoPoint(40.70, -74.00), GeoPoint(40.72, -74.00)
        mid = GeoPoint(40.71, -74.00)
        assert perpendicular_distance_m(mid, a, b) < 1.0

    def test_offset_point(self):
        a, b = GeoPoint(40.70, -74.00), GeoPoint(40.72, -74.00)
        off = GeoPoint(40.71, -73.99)  # ~845 m east of the segment
        d = perpendicular_distance_m(off, a, b)
        assert d == pytest.approx(845, rel=0.05)

    def test_degenerate_segment(self):
        a = GeoPoint(40.70, -74.00)
        p = GeoPoint(40.71, -74.00)
        d = perpendicular_distance_m(p, a, a)
        assert d == pytest.approx(p.distance_to(a), rel=1e-6)

    def test_beyond_endpoint_clamped(self):
        a, b = GeoPoint(40.70, -74.00), GeoPoint(40.71, -74.00)
        far = GeoPoint(40.75, -74.00)  # past b along the line
        d = perpendicular_distance_m(far, a, b)
        assert d == pytest.approx(far.distance_to(b), rel=0.01)


class TestSimplify:
    def test_straight_line_collapses_to_endpoints(self):
        points = line_points(50)
        simplified = simplify_polyline(points, tolerance_m=10.0)
        assert simplified == [points[0], points[-1]]

    def test_corner_kept(self):
        leg1 = line_points(20)
        corner_lat = leg1[-1].lat
        leg2 = [GeoPoint(corner_lat, -74.0 + i * 0.001) for i in range(1, 20)]
        points = leg1 + leg2
        simplified = simplify_polyline(points, tolerance_m=10.0)
        assert leg1[-1] in simplified
        assert len(simplified) == 3

    def test_short_input_unchanged(self):
        points = line_points(2)
        assert simplify_polyline(points, 10.0) == points
        assert simplify_polyline(points[:1], 10.0) == points[:1]
        assert simplify_polyline([], 10.0) == []

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            simplify_polyline(line_points(5), 0.0)

    def test_error_bound_holds(self):
        """Every dropped point stays within tolerance of the simplification."""
        rng = np.random.default_rng(4)
        points = [
            GeoPoint(40.7 + float(rng.normal(0, 0.002)),
                     -74.0 + i * 0.0005 + float(rng.normal(0, 0.0005)))
            for i in range(60)
        ]
        tolerance = 100.0
        simplified = simplify_polyline(points, tolerance)
        kept = set((p.lat, p.lon) for p in simplified)
        for p in points:
            if (p.lat, p.lon) in kept:
                continue
            best = min(
                perpendicular_distance_m(p, a, b)
                for a, b in zip(simplified, simplified[1:])
            )
            assert best <= tolerance * 1.01

    @given(st.integers(min_value=3, max_value=40), st.floats(min_value=5, max_value=500))
    @settings(max_examples=40, deadline=None)
    def test_endpoints_always_kept(self, n, tolerance):
        rng = np.random.default_rng(n)
        points = [
            GeoPoint(40.7 + float(rng.normal(0, 0.003)),
                     -74.0 + float(rng.normal(0, 0.003)))
            for _ in range(n)
        ]
        simplified = simplify_polyline(points, tolerance)
        assert simplified[0] == points[0]
        assert simplified[-1] == points[-1]
        assert len(simplified) <= len(points)
