"""The tracer: nesting, bounds, error status, runtime switch, dumps."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    NULL_OBSERVER,
    Observer,
    Tracer,
    disable,
    enable,
    get_observer,
    load_dump,
    observed,
    render_metrics,
    render_trace_tree,
    save_dump,
    set_observer,
)


class TestNesting:
    def test_children_attach_to_the_enclosing_span(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner_a"):
                pass
            with tracer.span("inner_b") as b:
                b.set("k", 1)
        roots = tracer.roots()
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in outer.children] == ["inner_a", "inner_b"]
        assert outer.children[1].attrs == {"k": 1}

    def test_export_is_plain_dicts(self):
        tracer = Tracer()
        with tracer.span("outer", tag="x"):
            with tracer.span("inner"):
                pass
        (root,) = tracer.export()
        assert root["name"] == "outer"
        assert root["status"] == "ok"
        assert root["attrs"] == {"tag": "x"}
        assert [c["name"] for c in root["children"]] == ["inner"]
        assert root["wall_s"] >= 0 and root["cpu_s"] >= 0

    def test_error_status_and_exception_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (root,) = tracer.roots()
        assert root.status == "error:ValueError"

    def test_threads_trace_independently(self):
        tracer = Tracer()

        def worker(name):
            with tracer.span(name):
                pass

        threads = [threading.Thread(target=worker, args=(f"t{i}",)) for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Each thread's span completed on its own stack → three roots,
        # none nested inside another.
        assert sorted(r.name for r in tracer.roots()) == ["t0", "t1", "t2"]
        assert all(not r.children for r in tracer.roots())


class TestBounds:
    def test_root_ring_buffer_drops_oldest(self):
        tracer = Tracer(max_roots=2)
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        assert [r.name for r in tracer.roots()] == ["b", "c"]
        assert tracer.last_root().name == "c"

    def test_children_cap_counts_overflow(self):
        tracer = Tracer(max_children=1)
        with tracer.span("parent") as parent:
            with tracer.span("kept"):
                pass
            with tracer.span("dropped"):
                pass
        assert [c.name for c in parent.children] == ["kept"]
        assert parent.n_dropped_children == 1
        assert tracer.export()[0]["n_dropped_children"] == 1

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            Tracer(max_roots=0)

    def test_reset_drops_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.roots() == [] and tracer.last_root() is None


class TestRuntimeSwitch:
    def test_disabled_by_default_and_spans_are_noops(self):
        observer = get_observer()
        assert observer is NULL_OBSERVER and not observer.enabled
        with observer.span("ignored") as span:
            span.set("k", 1)  # must not raise, must not record
        assert observer.tracer.roots() == []

    def test_enable_disable_roundtrip(self):
        try:
            live = enable()
            assert get_observer() is live and live.enabled
            assert enable() is live  # idempotent: keeps the live observer
        finally:
            disable()
        assert get_observer() is NULL_OBSERVER

    def test_observed_restores_previous_observer(self):
        assert not get_observer().enabled
        with observed() as o:
            assert get_observer() is o
            with o.span("inside"):
                pass
        assert not get_observer().enabled
        assert [r.name for r in o.tracer.roots()] == ["inside"]

    def test_observed_restores_even_on_error(self):
        with pytest.raises(RuntimeError):
            with observed():
                raise RuntimeError("boom")
        assert not get_observer().enabled

    def test_set_observer_returns_previous(self):
        mine = Observer()
        previous = set_observer(mine)
        try:
            assert get_observer() is mine
        finally:
            set_observer(previous)


class TestRendering:
    def test_tree_rendering_mentions_every_span(self):
        tracer = Tracer()
        with tracer.span("pipeline.run", n_users=4):
            with tracer.span("pipeline.detect"):
                pass
        text = render_trace_tree(tracer.export())
        assert "pipeline.run" in text and "pipeline.detect" in text
        assert "n_users=4" in text
        assert render_trace_tree([]) == "(no spans recorded)"

    def test_metrics_rendering(self):
        with observed() as o:
            o.inc("repro_test_events_total", 3, label="x")
            o.set_gauge("repro_test_level_ratio", 0.5)
            o.observe("repro_test_latency_s", 0.01)
        text = render_metrics(o.registry.snapshot())
        assert "repro_test_events_total{x}" in text
        assert "repro_test_level_ratio" in text
        assert "n=1" in text
        assert render_metrics({}) == "(no metrics recorded)"


class TestDump:
    def test_dump_round_trip(self, tmp_path):
        with observed() as o:
            with o.span("run", n=1):
                o.inc("repro_test_events_total")
        path = save_dump(o, tmp_path / "obs.json")
        payload = load_dump(path)
        assert payload["enabled"] is True
        assert payload["trace"][0]["name"] == "run"
        assert payload["metrics"]["counters"]["repro_test_events_total"][""] == 1

    def test_env_var_overrides_dump_path(self, tmp_path, monkeypatch):
        from repro.obs import DUMP_PATH_ENV, default_dump_path

        target = tmp_path / "custom.json"
        monkeypatch.setenv(DUMP_PATH_ENV, str(target))
        assert default_dump_path() == target
        with observed() as o:
            pass
        assert save_dump(o) == target
        assert load_dump()["enabled"] is True


class TestSelftest:
    def test_module_selftest_passes(self, capsys):
        from repro.obs.__main__ import main

        assert main(["--selftest"]) == 0
        assert "selftest ok" in capsys.readouterr().out
