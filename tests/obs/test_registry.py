"""The metrics registry: counters, gauges, fixed-bucket histograms."""

from __future__ import annotations

import threading

from repro.obs import DEFAULT_LATENCY_BUCKETS_S, MetricsRegistry, NullRegistry


class TestCounters:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("repro_test_events_total")
        reg.inc("repro_test_events_total", 4)
        assert reg.counter("repro_test_events_total") == 5

    def test_labels_are_independent_series(self):
        reg = MetricsRegistry()
        reg.inc("repro_test_events_total", label="a")
        reg.inc("repro_test_events_total", 2, label="b")
        assert reg.counter("repro_test_events_total", label="a") == 1
        assert reg.counter("repro_test_events_total", label="b") == 2
        snap = reg.snapshot()
        assert sorted(snap["counters"]["repro_test_events_total"]) == ["a", "b"]

    def test_unknown_series_reads_zero(self):
        reg = MetricsRegistry()
        assert reg.counter("repro_test_missing_total") == 0


class TestGauges:
    def test_set_overwrites(self):
        reg = MetricsRegistry()
        reg.set_gauge("repro_test_level_ratio", 0.5)
        reg.set_gauge("repro_test_level_ratio", 0.75)
        assert reg.gauge("repro_test_level_ratio") == 0.75


class TestHistograms:
    def test_bucket_placement_is_noncumulative_with_overflow(self):
        reg = MetricsRegistry()
        for v in (0.5, 1.5, 5.0):
            reg.observe("repro_test_latency_s", v, buckets=(1.0, 2.0))
        data = reg.histogram("repro_test_latency_s")
        assert data["buckets"] == [1.0, 2.0]
        assert data["counts"] == [1, 1, 1]  # one per bin + one overflow
        assert data["count"] == 3
        assert data["sum"] == 7.0
        assert data["min"] == 0.5 and data["max"] == 5.0

    def test_boundary_value_lands_in_its_bound_bin(self):
        reg = MetricsRegistry()
        reg.observe("repro_test_latency_s", 1.0, buckets=(1.0, 2.0))
        assert reg.histogram("repro_test_latency_s")["counts"] == [1, 0, 0]

    def test_histogram_labels_sorted(self):
        reg = MetricsRegistry()
        reg.observe("repro_test_latency_s", 0.1, label="b")
        reg.observe("repro_test_latency_s", 0.1, label="a")
        assert reg.labels_of("repro_test_latency_s") == ["a", "b"]

    def test_default_latency_buckets_are_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS_S) == sorted(DEFAULT_LATENCY_BUCKETS_S)


class TestSnapshot:
    def test_shape_and_reset(self):
        reg = MetricsRegistry()
        reg.inc("repro_test_events_total", label="x")
        reg.set_gauge("repro_test_level_ratio", 1.0)
        reg.observe("repro_test_latency_s", 0.01)
        snap = reg.snapshot()
        assert snap["counters"]["repro_test_events_total"]["x"] == 1
        assert snap["gauges"]["repro_test_level_ratio"][""] == 1.0
        assert snap["histograms"]["repro_test_latency_s"][""]["count"] == 1
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_concurrent_incs_do_not_lose_counts(self):
        reg = MetricsRegistry()

        def worker():
            for _ in range(200):
                reg.inc("repro_test_events_total")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("repro_test_events_total") == 800


class TestNullRegistry:
    def test_mutators_record_nothing(self):
        reg = NullRegistry()
        reg.inc("repro_test_events_total")
        reg.set_gauge("repro_test_level_ratio", 1.0)
        reg.observe("repro_test_latency_s", 0.5)
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
