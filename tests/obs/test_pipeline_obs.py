"""Pipeline instrumentation: zero-cost when off, deterministic when on."""

from __future__ import annotations

import pytest

from repro.data import generate, SMALL_CONFIG
from repro.exec import ExecConfig
from repro.experiments import small_pipeline_config
from repro.obs import MetricsRegistry, Observer, get_observer, observed, set_observer
from repro.pipeline import run_pipeline


def _output_fingerprint(result):
    """Everything observable about a run, JSON-shaped for deep equality."""
    return {
        "profiles": {uid: p.to_dict() for uid, p in sorted(result.profiles.items())},
        "timeline": [s.to_dict() for s in result.timeline.snapshots],
    }


def _phase_names(root):
    return [c["name"] for c in root.get("children", ())]


class _SentinelRegistry(MetricsRegistry):
    """Fails the test if any metric is recorded while obs is off."""

    def inc(self, name, value=1, label=""):
        raise AssertionError(f"inc({name!r}) reached the registry while disabled")

    def set_gauge(self, name, value, label=""):
        raise AssertionError(f"set_gauge({name!r}) reached the registry while disabled")

    def observe(self, name, value, label="", buckets=None):
        raise AssertionError(f"observe({name!r}) reached the registry while disabled")


class TestDisabled:
    def test_disabled_run_records_nothing(self, small_ds, pipeline_result):
        """With obs off, no metric call may even reach the registry."""
        sentinel = Observer(enabled=False, registry=_SentinelRegistry())
        previous = set_observer(sentinel)
        try:
            result = run_pipeline(small_ds, small_pipeline_config())
        finally:
            set_observer(previous)
        assert sentinel.tracer.roots() == []
        assert _output_fingerprint(result) == _output_fingerprint(pipeline_result)

    def test_enabled_output_identical_to_disabled(self, small_ds, pipeline_result):
        with observed():
            result = run_pipeline(small_ds, small_pipeline_config())
        assert _output_fingerprint(result) == _output_fingerprint(pipeline_result)


class TestEnabled:
    def test_span_tree_has_one_child_per_phase(self, small_ds):
        with observed() as o:
            run_pipeline(small_ds, small_pipeline_config())
        (root,) = o.tracer.export()
        assert root["name"] == "pipeline.run"
        assert _phase_names(root) == [
            "pipeline.preprocess",
            "pipeline.detect",
            "pipeline.aggregate",
        ]
        detect = root["children"][1]
        assert detect["attrs"]["n_users"] >= 1
        assert detect["attrs"]["n_patterns"] >= 1
        assert root["children"][2]["attrs"]["n_windows"] >= 1
        assert o.registry.counter("repro_pipeline_runs_total") == 1

    def test_obs_config_flag_enables_globally(self, small_ds):
        from dataclasses import replace

        from repro.obs import disable

        assert not get_observer().enabled
        config = replace(small_pipeline_config(), obs=True)
        try:
            run_pipeline(small_ds, config)
            observer = get_observer()
            assert observer.enabled
            assert observer.tracer.last_root().name == "pipeline.run"
        finally:
            disable()

    def test_failed_run_marks_the_span(self, taxonomy):
        from repro.data import CheckInDataset

        empty = CheckInDataset(())
        with observed() as o:
            with pytest.raises(ValueError):
                run_pipeline(empty, small_pipeline_config(), taxonomy)
        (root,) = o.tracer.export()
        assert root["status"] == "error:ValueError"
        assert root["children"][0]["status"] == "error:ValueError"


class TestProcessBackendDeterminism:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate(SMALL_CONFIG).dataset

    def _traced_run(self, dataset):
        from dataclasses import replace

        config = replace(
            small_pipeline_config(),
            exec=ExecConfig(backend="process", n_workers=2),
        )
        with observed() as o:
            run_pipeline(dataset, config)
        snapshot = o.registry.snapshot()
        # Latency *distributions* vary run to run; which series exist and
        # how many observations each holds must not.
        histogram_counts = {
            name: {label: series[label]["count"] for label in series}
            for name, series in snapshot["histograms"].items()
        }
        return o.tracer.export(), snapshot["counters"], histogram_counts

    def _name_structure(self, span):
        return (span["name"], tuple(self._name_structure(c) for c in span.get("children", ())))

    def test_two_runs_trace_identically(self, dataset):
        trace_a, counters_a, hist_a = self._traced_run(dataset)
        trace_b, counters_b, hist_b = self._traced_run(dataset)
        assert [self._name_structure(r) for r in trace_a] == [
            self._name_structure(r) for r in trace_b
        ]
        assert counters_a == counters_b
        assert hist_a == hist_b
        # Worker processes carry disabled observers, so the per-task exec
        # metrics recorded in the parent are still present and stable.
        assert counters_a["repro_pipeline_runs_total"][""] == 1
