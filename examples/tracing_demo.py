"""Observability: trace a pipeline run and read the span tree.

Run:
    python examples/tracing_demo.py

The same instrumentation is reachable from the command line —

    crowdweb crowd city.csv --trace        # prints this tree after the run
    python -m repro.obs                    # re-renders the saved dump
    python -m repro.web --trace            # + GET /metrics on the server

— this script shows what the pieces mean.
"""

from dataclasses import replace

from repro import run_pipeline, small_dataset, small_pipeline_config
from repro.obs import disable, get_observer, render_metrics, render_trace_tree, save_dump

# 1. Opt in.  Observability is off by default and zero-cost when off;
#    obs=True flips the process-global switch for this run.
dataset = small_dataset()
config = replace(small_pipeline_config(), obs=True)
result = run_pipeline(dataset, config)
print(f"pipeline kept {result.n_users} active users\n")

# 2. The trace tree: one root span for the run, one child per phase.
#    Indentation is call nesting; every span shows wall clock, CPU time,
#    and the counts that make the duration judgeable (n_users, n_patterns,
#    worker utilization...).  Wall ≫ CPU means waiting, not computing.
observer = get_observer()
print(render_trace_tree(observer.tracer.export()))

# 3. The metrics snapshot: counters, gauges and latency histograms under
#    the repro_<layer>_<name>_<unit> naming convention.  This is exactly
#    what the web platform serves at GET /metrics.
print()
print(render_metrics(observer.registry.snapshot()))

# 4. Persist the run for later: `python -m repro.obs` pretty-prints it.
path = save_dump(observer)
print(f"\nwrote {path} — render it again with `python -m repro.obs`")

# 5. Clean up the process-global switch (pipeline enables are sticky).
disable()
