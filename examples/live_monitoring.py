"""Live routine monitoring — the crowd-management application.

Mines a user's routine from their history, then replays a *held-out* day
through :class:`~repro.patterns.PatternMonitor` as if visits were arriving
in real time: what the user is expected to do next, which routines complete,
and how conformance evolves.

Run:
    python examples/live_monitoring.py
"""

from datetime import timedelta, timezone, datetime

from repro import small_dataset
from repro.data import CheckInDataset
from repro.mining import ModifiedPrefixSpanConfig
from repro.patterns import PatternMonitor, PatternState, detect_user_patterns, summarize_profile
from repro.sequences import make_labeler, sessionize_user
from repro.taxonomy import AbstractionLevel, build_default_taxonomy

dataset = small_dataset()
taxonomy = build_default_taxonomy()

# Busiest user; hold out their final recorded week.
user_id = max(dataset.user_ids(), key=lambda u: len(dataset.for_user(u)))
records = dataset.for_user(user_id)
cutoff = records[-1].timestamp - timedelta(days=7)
history = CheckInDataset([c for c in records if c.timestamp < cutoff],
                         dataset.venues, name="history")
future = CheckInDataset([c for c in records if c.timestamp >= cutoff],
                        dataset.venues, name="held-out")
print(f"user {user_id}: {len(history)} historical check-ins, "
      f"{len(future)} held out\n")

profile = detect_user_patterns(
    history, user_id, taxonomy,
    config=ModifiedPrefixSpanConfig(min_support=0.4),
)
print(summarize_profile(profile, k=5))

# Replay the busiest held-out day visit by visit.
labeler = make_labeler(taxonomy, AbstractionLevel.ROOT)
sessions = sessionize_user(future, user_id, labeler)
day = max(sessions, key=lambda s: len(s.items))
print(f"\nreplaying {day.day} ({len(day.items)} visits):")

monitor = PatternMonitor(profile, tolerance_bins=1)
for item in day.items:
    expected = monitor.expected_next()
    expectation = (f"expected {expected[0][0].label} around bin "
                   f"{expected[0][0].bin}" if expected else "nothing expected")
    monitor.observe(item)
    print(f"  {profile.binning.label(item.bin)}: visited {item.label:<12} "
          f"({expectation}; conformance {monitor.conformance():.0%})")

monitor.advance_to(23)
print("\nend of day:")
for progress in monitor.status():
    labels = " → ".join(i.label for i in progress.pattern.items)
    print(f"  [{progress.state.value:<11}] {labels} "
          f"({progress.matched}/{len(progress.pattern.items)} matched, "
          f"support {progress.pattern.support:.0%})")
completed = sum(p.state is PatternState.COMPLETED for p in monitor.status())
print(f"\n{completed}/{len(monitor.status())} routines completed; "
      f"final conformance {monitor.conformance():.0%}")
