"""Bring your own check-in data.

Shows the two ingestion paths:

1. **File formats** — the exact Foursquare TSMC2014 TSV layout the paper
   uses (drop ``dataset_TSMC2014_NYC.txt`` next to this script and it will
   be picked up), plus CSV/JSONL round-trips.
2. **Programmatic** — building ``CheckIn`` records directly, e.g. from a
   booth visitor's exported check-in history (the demo's audience feature).

Run:
    python examples/custom_dataset.py
"""

from datetime import datetime, timedelta, timezone
from pathlib import Path

from repro import (
    CheckIn,
    CheckInDataset,
    dataset_stats,
    load_dataset,
    run_pipeline,
    save_dataset,
    small_dataset,
)
from repro.data import ActiveUserFilter
from repro.pipeline import PipelineConfig
from repro.patterns import detect_user_patterns, summarize_profile
from repro.taxonomy import build_default_taxonomy

REAL_DUMP = Path("dataset_TSMC2014_NYC.txt")

# --- Path 1: files -----------------------------------------------------------
if REAL_DUMP.exists():
    print(f"loading the real Foursquare dump {REAL_DUMP} ...")
    dataset = load_dataset(REAL_DUMP)
else:
    print("real dump not found; exporting the synthetic dataset to CSV and "
          "reloading it (same code path)")
    save_dataset(small_dataset(), "my_checkins.csv")
    dataset = load_dataset("my_checkins.csv")

print(f"loaded {dataset}")
for key, value in dataset_stats(dataset).as_rows()[:6]:
    print(f"  {key:>20}: {value}")

# --- Path 2: programmatic records -------------------------------------------
# A booth visitor shares one week of their own check-ins: coffee, office,
# Thai lunch — a different Thai place every day (the paper's exact example).
visitor = []
base = datetime(2023, 5, 1, tzinfo=timezone.utc)
thai_places = ["Thai Express", "Seasoning Thai", "Thai Pothong",
               "Thai Express", "Seasoning Thai"]
for day, thai in enumerate(thai_places):
    day0 = base + timedelta(days=day)
    visitor += [
        CheckIn(user_id="visitor", venue_id="my-cafe", category_name="Coffee Shop",
                category_id="", lat=40.742, lon=-73.992, tz_offset_min=-240,
                timestamp=day0 + timedelta(hours=12, minutes=35)),
        CheckIn(user_id="visitor", venue_id="my-office", category_name="Corporate Office",
                category_id="", lat=40.741, lon=-73.989, tz_offset_min=-240,
                timestamp=day0 + timedelta(hours=13, minutes=10)),
        CheckIn(user_id="visitor", venue_id=f"thai-{thai}", category_name="Thai Restaurant",
                category_id="", lat=40.744, lon=-73.990, tz_offset_min=-240,
                timestamp=day0 + timedelta(hours=16, minutes=30)),
    ]
visitor_ds = CheckInDataset(visitor, name="visitor-upload")

taxonomy = build_default_taxonomy()
profile = detect_user_patterns(visitor_ds, "visitor", taxonomy)
print("\nvisitor's detected routine (note: three different Thai venues, one pattern):")
print(summarize_profile(profile))

# The same pipeline runs on any dataset; only the activity thresholds need
# to match the data's density.
config = PipelineConfig(
    window_months=1,
    activity=ActiveUserFilter(min_qualifying_days=2),
)
result = run_pipeline(visitor_ds, config)
print(f"\npipeline on the upload: {result.n_users} user(s), "
      f"busiest window {result.aggregator.busiest_window().window.label}")
