"""The DBSCAN+RNN baseline (paper ref [10]) on raw GPS traces.

Check-ins are the paper's data; its cited prediction baselines consume raw
GPS.  This example simulates a month of continuous GPS for one agent,
extracts stay points, clusters them into significant places with DBSCAN,
trains the numpy RNN on the place sequences, and evaluates next-place
accuracy on held-out days — then contrasts that with the same user's
flexible *patterns*, which is the paper's whole argument.

Run:
    python examples/gps_traces.py
"""

from datetime import date, timedelta

from repro.data import generate, SMALL_CONFIG
from repro.data.synth import simulate_traces
from repro.mining import ModifiedPrefixSpanConfig
from repro.patterns import detect_user_patterns, summarize_profile
from repro.prediction import DBSCANRNNConfig, DBSCANRNNPipeline
from repro.taxonomy import build_default_taxonomy

generation = generate(SMALL_CONFIG)
agent = max(generation.agents, key=lambda a: a.checkin_prob)
print(f"agent {agent.user_id} ({agent.persona})")

# --- The GPS side (ref [10]) -------------------------------------------------
days = [date(2012, 4, 1) + timedelta(days=i) for i in range(45)]
traces = simulate_traces([agent], generation.city, days, generation.config,
                         seed=5)[agent.user_id]
n_fixes = sum(len(f) for f in traces.values())
print(f"simulated {n_fixes:,} GPS fixes over {len(traces)} days")

train = {d: traces[d] for d in sorted(traces)[:34]}
test = {d: traces[d] for d in sorted(traces)[34:]}
pipeline = DBSCANRNNPipeline(DBSCANRNNConfig(rnn_epochs=20, seed=7)).fit(train)
print(f"DBSCAN found {pipeline.n_places} significant places")

reports = pipeline.evaluate(test)
for name, report in reports.items():
    print(f"  {name:<14} acc@1 {report.accuracy_at_1:.1%}  "
          f"acc@3 {report.accuracy_at_3:.1%}  ({report.n_examples} examples)")

# Live prediction: where next, given this morning's fixes?
some_day = sorted(test)[0]
morning = [f for f in test[some_day] if f.timestamp.hour < 12]
predictions = pipeline.predict_next(morning, k=3)
print(f"\nafter the morning of {some_day}, most likely next places:")
for i, p in enumerate(predictions, 1):
    print(f"  {i}. ({p.lat:.4f}, {p.lon:.4f})")

# Render the day: raw path (simplified), stay points, significant places.
from repro.sequences import detect_stay_points
from repro.viz import render_trace

busiest_day = max(traces, key=lambda d: len(traces[d]))
stays = detect_stay_points(traces[busiest_day], 150.0, 15 * 60.0)
svg = render_trace(traces[busiest_day], stays, pipeline.cluster_centers,
                   title=f"{agent.user_id} on {busiest_day}")
with open("gps_trace.svg", "w", encoding="utf-8") as fh:
    fh.write(svg)
print(f"\nwrote gps_trace.svg ({len(stays)} stay points, "
      f"{pipeline.n_places} significant places)")

# --- The paper's counterpoint ------------------------------------------------
# Exact-place prediction is modest; the *flexible pattern* view of the very
# same routine is crisp and human-readable:
taxonomy = build_default_taxonomy()
profile = detect_user_patterns(
    generation.dataset, agent.user_id, taxonomy,
    config=ModifiedPrefixSpanConfig(min_support=0.5),
)
print("\nthe same routine, as CrowdWeb's flexible patterns:")
print(summarize_profile(profile, k=5))
