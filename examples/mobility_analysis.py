"""Mobility analytics: the regularity/predictability science behind the paper.

Computes the classic metrics (Gonzalez et al. 2008; Song et al. 2010) for
the simulated population — radius of gyration, visitation Zipf profile,
entropies, and the Fano predictability bound — and shows the paper's
central tension: users are *highly* predictable in the information-theoretic
sense, yet exact next-venue prediction stays hard.

Run:
    python examples/mobility_analysis.py
"""

import numpy as np

from repro import small_dataset
from repro.analysis import (
    regularity_by_hour,
    user_mobility_metrics,
    visitation_frequencies,
)
from repro.viz import BarChart, Histogram, HtmlReport, LineChart

dataset = small_dataset()
user_ids = [uid for uid in dataset.user_ids() if len(dataset.for_user(uid)) >= 30]
print(f"analyzing {len(user_ids)} users with >=30 check-ins\n")

metrics = [user_mobility_metrics(dataset, uid) for uid in user_ids]

gyrations = [m.radius_of_gyration_m / 1000 for m in metrics]
bounds = [m.predictability_bound for m in metrics]
top_shares = [m.top_location_share for m in metrics]

print(f"radius of gyration: median {np.median(gyrations):.1f} km "
      f"(range {min(gyrations):.1f}-{max(gyrations):.1f})")
print(f"top-location share: median {np.median(top_shares):.0%}")
print(f"predictability bound Pi_max: median {np.median(bounds):.0%} "
      f"(Song et al. report ~93% on call records)")

# The most regular user, hour by hour.
star = max(metrics, key=lambda m: m.predictability_bound)
print(f"\nmost predictable user: {star.user_id} "
      f"(Pi_max {star.predictability_bound:.0%}, "
      f"S_est {star.s_estimated:.2f} bits over {star.n_distinct_venues} venues)")
regularity = regularity_by_hour(dataset, star.user_id)
peak_hour = max(regularity, key=regularity.get)
print(f"their regularity peaks at hour {peak_hour:02d}:00 "
      f"(R = {regularity[peak_hour]:.0%})")

zipf = visitation_frequencies([c.venue_id for c in dataset.for_user(star.user_id)])
print("their top venues:", [(v, f"{s:.0%}") for v, s in zipf[:4]])

# Report with the three standard plots.
report = HtmlReport("Mobility analytics", subtitle=f"{len(user_ids)} simulated users")
report.add_svg(
    Histogram("Radius of gyration", x_label="km", bins=12).add_values(gyrations).render(),
    caption="Most users live within a few km of their center of mass.",
)
report.add_svg(
    Histogram("Predictability bound (Fano)", x_label="Pi_max", bins=12)
    .add_values(bounds).render(),
    caption="Routine makes users information-theoretically predictable.",
)
chart = LineChart("Regularity R(t) of the most predictable user",
                  x_label="hour of day", y_label="P(at top venue)")
hours = sorted(regularity)
chart.add_series(star.user_id, hours, [regularity[h] for h in hours])
report.add_svg(chart.render())
out = report.save("mobility_analysis.html")
print(f"\nwrote {out}")
