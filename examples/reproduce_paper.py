"""Regenerate every table and figure of the paper in one command.

Run:
    python examples/reproduce_paper.py                 # fast, small scale
    python examples/reproduce_paper.py --scale paper   # full 1,083 users (~1 min)

Artifacts land in ``./paper_artifacts``: one SVG per figure, results.json
with every measured number, and a self-contained report.html.
"""

import argparse
import sys

from repro import run_all


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["small", "paper"], default="small")
    parser.add_argument("--out", default="paper_artifacts")
    args = parser.parse_args(argv)

    print(f"reproducing all experiments at {args.scale} scale ...")
    outputs = run_all(args.out, scale=args.scale)

    print(f"\ndone in {outputs.elapsed_s:.1f}s — artifacts in {outputs.output_dir}/")
    print("\ndataset statistics (paper §I.1):")
    for key, value in outputs.stats_rows:
        print(f"  {key:>24}: {value}")
    print("\nsupport sweep (Figs. 5 & 7):")
    for row in outputs.sweep.to_rows():
        print(f"  min_support={row['min_support']:<6g} "
              f"seq/user={row['mean_sequences_per_user']:<8.2f} "
              f"avg len={row['mean_avg_length']:.2f}")
    print("\ncrowd views (Figs. 3-4):")
    for label, users, cells in outputs.views.summary_rows():
        print(f"  {label}: {users} users / {cells} cells")
    return 0


if __name__ == "__main__":
    sys.exit(main())
