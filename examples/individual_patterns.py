"""Individual mobility patterns — the iMAP side of the platform.

Demonstrates the paper's core motivation: a user who eats Thai food every
lunchtime at *different* Thai venues has no venue-level pattern, but a
strong category-level one.  Mines one simulated user at all three
abstraction levels, prints the comparison, and renders their place graph.

Run:
    python examples/individual_patterns.py
"""

from repro import small_dataset
from repro.data import generate, SMALL_CONFIG
from repro.mining import ModifiedPrefixSpanConfig
from repro.patterns import build_place_graph, detect_user_patterns, summarize_profile
from repro.sequences import make_labeler
from repro.taxonomy import AbstractionLevel, build_default_taxonomy
from repro.viz import HtmlReport, render_place_graph

taxonomy = build_default_taxonomy()
generation = generate(SMALL_CONFIG)
dataset = generation.dataset

# Pick the busiest simulated user — the one whose ground-truth routine we
# can actually inspect, since the generator keeps the agent profiles.
agent = max(generation.agents, key=lambda a: a.checkin_prob)
user_id = agent.user_id
lunch_slot = next(s for s in agent.weekday_routine if s.slot_key == "lunch")
print(f"user {user_id} ({agent.persona}); ground-truth lunch habit: "
      f"{lunch_slot.target} around {lunch_slot.hour:.1f}h\n")

# The flexibility motivation, measured: how many distinct venues serve that
# one habit?
lunch_visits = [c for c in dataset.for_user(user_id)
                if c.category_name == lunch_slot.target]
print(f"{len(lunch_visits)} lunch check-ins across "
      f"{len({c.venue_id for c in lunch_visits})} different {lunch_slot.target}s")

# Mine at each abstraction level with the same support threshold.
config = ModifiedPrefixSpanConfig(min_support=0.5)
print(f"\npatterns found at min_support={config.min_support}:")
profiles = {}
for level in (AbstractionLevel.VENUE, AbstractionLevel.LEAF, AbstractionLevel.ROOT):
    profile = detect_user_patterns(dataset, user_id, taxonomy, level=level,
                                   config=config)
    profiles[level] = profile
    print(f"  {level.value:>6}: {profile.n_patterns} patterns")

print("\nroot-level routine:")
print(summarize_profile(profiles[AbstractionLevel.ROOT], k=8))

# Render the place graph and pattern list to a small HTML page.
labeler = make_labeler(taxonomy, AbstractionLevel.ROOT)
graph = build_place_graph(dataset, user_id, labeler)
report = HtmlReport(f"Mobility patterns — {user_id}",
                    subtitle=f"persona: {agent.persona}")
report.add_heading("Place graph (observed transitions)")
report.add_svg(render_place_graph(graph, title=f"Places visited by {user_id}"))
report.add_heading("Detected routine")
report.add_preformatted(summarize_profile(profiles[AbstractionLevel.ROOT], k=12))
out = report.save("individual_patterns.html")
print(f"\nwrote {out}")
