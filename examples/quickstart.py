"""Quickstart: dataset → pipeline → patterns → crowd, in ~30 lines.

Run:
    python examples/quickstart.py
"""

from repro import small_dataset, run_pipeline, small_pipeline_config, summarize_profile
from repro.viz import label_color_order, render_snapshot

# 1. A synthetic Foursquare-like dataset (use repro.load_dataset for real data).
dataset = small_dataset()
print(f"dataset: {dataset}")

# 2. The full CrowdWeb pipeline: preprocess, mine every user, aggregate crowd.
result = run_pipeline(dataset, small_pipeline_config())
print(f"pipeline kept {result.n_users} active users\n")

# 3. Individual mobility patterns: the user with the richest routine.
user_id = max(result.profiles, key=lambda u: result.profiles[u].n_patterns)
print(summarize_profile(result.profiles[user_id], k=5))

# 4. The crowd at 9-10 am (the paper's Fig. 3 view).
snapshot = result.timeline.at_hour(9.5)
print(f"\ncrowd at {snapshot.window.label}: {snapshot.n_users} users placed")
for group in snapshot.groups()[:5]:
    print(f"  {group.size} user(s) at {group.label} "
          f"in microcell {result.grid.cell(group.cell).cell_id}")

# 5. Render the city view to an SVG you can open in any browser.
svg = render_snapshot(snapshot, label_order=label_color_order(list(result.timeline)))
out = "quickstart_crowd.svg"
with open(out, "w", encoding="utf-8") as fh:
    fh.write(svg)
print(f"\nwrote {out}")
