"""Crowd-anomaly detection: finding an injected city event.

Simulates the city twice — once quiet, once with a stadium derby injected —
and shows the crowd-management workflow the paper motivates: per-microcell
daily occupancy baselines flag the (day, cell) where the crowd spiked, and
the flagged venue/date match the injected ground truth.

Run:
    python examples/event_detection.py
"""

from datetime import date

from repro.crowd import detect_spikes
from repro.data import CityEvent, SMALL_CONFIG, SynthConfig, generate
from repro.geo import MicrocellGrid

EVENT = CityEvent(
    name="stadium derby",
    day=date(2012, 5, 12),
    venue_category="Stadium",
    start_hour=19.5,
    attendance_prob=0.6,
)

config = SynthConfig(**{**SMALL_CONFIG.__dict__, "events": (EVENT,)})
generation = generate(config)
dataset = generation.dataset
print(f"simulated {dataset} with one injected event: "
      f"{EVENT.name} on {EVENT.day}")

grid = MicrocellGrid(dataset.bounding_box().expand(0.01), 750.0)
spikes = detect_spikes(dataset, grid, z_threshold=4.0, min_count=5)
print(f"\n{len(spikes)} anomalous (day, cell) observations:")
for spike in spikes[:8]:
    cell = grid.cell(spike.cell)
    print(f"  {spike.day} cell {cell.cell_id}: {spike.count} check-ins "
          f"({spike.n_users} users) vs baseline {spike.baseline_mean:.1f}"
          f"±{spike.baseline_std:.1f} — z={spike.z_score:.1f}")

if spikes and spikes[0].day == EVENT.day:
    top = spikes[0]
    # Which venue inside the flagged cell drew the crowd?
    in_cell = [
        c for c in dataset
        if c.local_date == top.day
        and grid.cell_index_clamped(c.lat, c.lon) == top.cell
    ]
    from collections import Counter
    venue_id, hits = Counter(c.venue_id for c in in_cell).most_common(1)[0]
    venue = dataset.venues[venue_id]
    print(f"\nstrongest spike is the injected event: {venue.name} "
          f"({venue.category_name}) drew {hits} check-ins on {top.day} ✓")
else:
    print("\nno spike matched the injected event — tune thresholds")
