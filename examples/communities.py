"""Behavioural communities: beyond exact co-location.

The crowd view groups users who are at the *same microcell* at the *same
time*.  This example generalizes grouping to behavioural similarity: a
pattern-similarity graph over the active users, partitioned by the
link-strength label propagation of the authors' own community-detection
work (Lakhdari et al., 2016 — the paper's ref [7]).

Run:
    python examples/communities.py
"""

from collections import Counter

from repro import small_dataset, run_pipeline, small_pipeline_config
from repro.crowd import build_similarity_graph, detect_communities
from repro.patterns import pattern_set_similarity

dataset = small_dataset()
result = run_pipeline(dataset, small_pipeline_config())
profiles = result.profiles
print(f"{len(profiles)} active users profiled")

graph = build_similarity_graph(profiles, min_similarity=0.05)
print(f"similarity graph: {graph.number_of_nodes()} nodes, "
      f"{graph.number_of_edges()} links")
strongest = max(graph.edges(data=True), key=lambda e: e[2]["weight"], default=None)
if strongest:
    a, b, attrs = strongest
    print(f"strongest behavioural link: {a} <-> {b} "
          f"(similarity {attrs['weight']:.2f})")

communities = detect_communities(profiles, min_similarity=0.05)
print(f"\n{len(communities)} communities found:")
for community in communities:
    # Characterize each community by its members' dominant place labels.
    labels = Counter()
    for uid in community.user_ids:
        labels.update(profiles[uid].labels())
    themes = ", ".join(label for label, _ in labels.most_common(3))
    print(f"  community {community.community_id}: {community.size} user(s) "
          f"[{', '.join(community.user_ids)}] — themes: {themes}")

# Cross-check against the crowd view: co-located users should usually be
# behaviourally similar too.
snapshot = result.aggregator.busiest_window()
groups = snapshot.groups(min_size=2)
if groups:
    group = groups[0]
    sims = [
        pattern_set_similarity(profiles[a], profiles[b])
        for i, a in enumerate(group.user_ids)
        for b in group.user_ids[i + 1:]
    ]
    print(f"\nbiggest co-location group ({group.label} x{group.size} at "
          f"{snapshot.window.label}): mean pattern similarity "
          f"{sum(sims) / len(sims):.2f}")
