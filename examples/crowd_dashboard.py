"""The city-scale crowd dashboard — the CrowdWeb demo itself.

Prepares the pipeline, then either serves the interactive platform
(``--serve``) or exercises its API headlessly and writes the crowd views
for three time windows to disk.

Run:
    python examples/crowd_dashboard.py            # headless, writes HTML
    python examples/crowd_dashboard.py --serve    # interactive server
"""

import argparse
import json
import sys

from repro import small_dataset, run_pipeline, small_pipeline_config
from repro.crowd import timeline_flows
from repro.viz import HtmlReport, label_color_order, render_snapshot
from repro.web import CrowdWebAPI, CrowdWebServer


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--serve", action="store_true", help="run the web platform")
    parser.add_argument("--port", type=int, default=8460)
    args = parser.parse_args(argv)

    dataset = small_dataset()
    print(f"preparing pipeline on {dataset} ...")
    result = run_pipeline(dataset, small_pipeline_config())
    print(f"{result.n_users} users profiled")

    if args.serve:
        server = CrowdWebServer(result, port=args.port)
        print(f"CrowdWeb at {server.url} — ctrl-c to stop")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            server.stop()
        return 0

    # Headless: drive the same API the web frontend uses.
    api = CrowdWebAPI(result)
    summary = api.crowd_summary()
    busiest = max(summary["windows"], key=lambda w: w["n_users"])
    print(f"\nbusiest window: {busiest['label']} with {busiest['n_users']} users")
    snapshot_payload = api.crowd(busiest["index"])
    print(f"groups there: {json.dumps(snapshot_payload['groups'], indent=1)[:400]}")

    # Crowd movement between consecutive windows.
    moves = [f for flows in timeline_flows(result.timeline) for f in flows]
    print(f"\n{len(moves)} inter-cell flows across the day")
    for flow in moves[:5]:
        print(f"  {flow.from_window} -> {flow.to_window}: "
              f"{flow.size} user(s) {flow.origin} -> {flow.destination}")

    # Write a static three-window dashboard.
    order = label_color_order(list(result.timeline))
    report = HtmlReport("CrowdWeb — static dashboard",
                        subtitle=f"{result.n_users} users, {dataset.name}")
    for hour in (9.5, 13.5, 20.5):
        snap = result.timeline.at_hour(hour)
        report.add_heading(f"Window {snap.window.label} ({snap.n_users} users)")
        report.add_svg(render_snapshot(snap, label_order=order))
    out = report.save("crowd_dashboard.html")
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
