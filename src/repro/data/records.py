"""Check-in record model and the in-memory dataset container.

The dataset mirrors the Foursquare NYC dump the paper uses: each record is a
(user, venue, category, location, timestamp) check-in.  ``CheckInDataset``
keeps records sorted by ``(user_id, timestamp)`` and indexes them per user,
which is the access pattern of every downstream stage (sessionization,
mining, crowd aggregation).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from datetime import datetime, timedelta, timezone
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..geo import BoundingBox, GeoPoint

__all__ = ["Venue", "CheckIn", "CheckInDataset", "Fix"]


@dataclass(frozen=True, order=True)
class Fix:
    """One timestamped GPS fix — the raw-trace counterpart of a check-in.

    Lives in the data layer (it is a record, not a derived artifact) so that
    both the synthetic trace generator below it and the stay-point detector
    in :mod:`repro.sequences.staypoints` can share it without inverting the
    package DAG.
    """

    timestamp: datetime
    lat: float
    lon: float

    @property
    def point(self) -> GeoPoint:
        return GeoPoint(self.lat, self.lon)


@dataclass(frozen=True)
class Venue:
    """A point of interest users check in at."""

    venue_id: str
    name: str
    category_id: str
    category_name: str
    location: GeoPoint

    @property
    def lat(self) -> float:
        return self.location.lat

    @property
    def lon(self) -> float:
        return self.location.lon


@dataclass(frozen=True, order=True)
class CheckIn:
    """One geotagged check-in.

    ``timestamp`` is timezone-aware UTC; ``tz_offset_min`` is the venue's
    local-time offset (the Foursquare dump carries both, and local time is
    what daily sessionization and time-binning must use).
    Ordering is ``(user_id, timestamp, venue_id)`` so sorting a record list
    yields per-user chronological runs.
    """

    user_id: str
    timestamp: datetime
    venue_id: str = field(compare=True)
    category_id: str = field(compare=False, default="")
    category_name: str = field(compare=False, default="")
    lat: float = field(compare=False, default=0.0)
    lon: float = field(compare=False, default=0.0)
    tz_offset_min: int = field(compare=False, default=0)

    def __post_init__(self) -> None:
        if self.timestamp.tzinfo is None:
            raise ValueError("check-in timestamps must be timezone-aware (UTC)")

    @property
    def location(self) -> GeoPoint:
        return GeoPoint(self.lat, self.lon)

    @property
    def local_time(self) -> datetime:
        """Timestamp shifted into the venue's local timezone."""
        return self.timestamp.astimezone(timezone(timedelta(minutes=self.tz_offset_min)))

    @property
    def local_date(self):
        return self.local_time.date()

    @property
    def local_hour(self) -> float:
        lt = self.local_time
        return lt.hour + lt.minute / 60.0 + lt.second / 3600.0


class CheckInDataset:
    """An immutable-after-construction collection of check-ins plus venues.

    All filter methods return new datasets; the underlying record tuples are
    shared, so filtering is cheap.
    """

    def __init__(
        self,
        checkins: Iterable[CheckIn],
        venues: Optional[Dict[str, Venue]] = None,
        name: str = "dataset",
    ) -> None:
        self.name = name
        self._checkins: Tuple[CheckIn, ...] = tuple(sorted(checkins))
        self.venues: Dict[str, Venue] = dict(venues or {})
        self._by_user: Dict[str, Tuple[int, int]] = {}
        start = 0
        for i, record in enumerate(self._checkins):
            if i == 0:
                continue
            if record.user_id != self._checkins[i - 1].user_id:
                self._by_user[self._checkins[i - 1].user_id] = (start, i)
                start = i
        if self._checkins:
            self._by_user[self._checkins[-1].user_id] = (start, len(self._checkins))

    # ------------------------------------------------------------ accessors

    def __len__(self) -> int:
        return len(self._checkins)

    def __iter__(self) -> Iterator[CheckIn]:
        return iter(self._checkins)

    def __getitem__(self, i: int) -> CheckIn:
        return self._checkins[i]

    @property
    def records(self) -> Tuple[CheckIn, ...]:
        return self._checkins

    def user_ids(self) -> List[str]:
        """All user ids, sorted."""
        return sorted(self._by_user)

    @property
    def n_users(self) -> int:
        return len(self._by_user)

    def for_user(self, user_id: str) -> Tuple[CheckIn, ...]:
        """A user's check-ins in chronological order (empty if unknown)."""
        span = self._by_user.get(user_id)
        if span is None:
            return ()
        return self._checkins[span[0]:span[1]]

    def records_per_user(self) -> Dict[str, int]:
        return {uid: hi - lo for uid, (lo, hi) in self._by_user.items()}

    def time_range(self) -> Tuple[datetime, datetime]:
        """(earliest, latest) UTC timestamps; raises on an empty dataset."""
        if not self._checkins:
            raise ValueError("empty dataset has no time range")
        times = [c.timestamp for c in self._checkins]
        return min(times), max(times)

    def bounding_box(self) -> BoundingBox:
        """Tightest box over all check-in coordinates."""
        if not self._checkins:
            raise ValueError("empty dataset has no bounding box")
        return BoundingBox.from_points(c.location for c in self._checkins)

    def category_names(self) -> List[str]:
        return sorted({c.category_name for c in self._checkins})

    def venue_for(self, checkin: CheckIn) -> Optional[Venue]:
        return self.venues.get(checkin.venue_id)

    # --------------------------------------------------------- numpy columns

    def lat_array(self) -> np.ndarray:
        return np.array([c.lat for c in self._checkins], dtype=float)

    def lon_array(self) -> np.ndarray:
        return np.array([c.lon for c in self._checkins], dtype=float)

    def epoch_array(self) -> np.ndarray:
        """UTC timestamps as float seconds since the epoch."""
        return np.array([c.timestamp.timestamp() for c in self._checkins], dtype=float)

    # -------------------------------------------------------------- filters

    def _derive(self, checkins: Iterable[CheckIn], suffix: str) -> "CheckInDataset":
        kept = list(checkins)
        venue_ids: Set[str] = {c.venue_id for c in kept}
        venues = {vid: v for vid, v in self.venues.items() if vid in venue_ids}
        return CheckInDataset(kept, venues, name=f"{self.name}/{suffix}")

    def filter_time(self, start: datetime, end: datetime) -> "CheckInDataset":
        """Records with ``start <= timestamp < end`` (UTC comparison)."""
        if start.tzinfo is None or end.tzinfo is None:
            raise ValueError("filter bounds must be timezone-aware")
        return self._derive(
            (c for c in self._checkins if start <= c.timestamp < end),
            f"time[{start.date()}..{end.date()})",
        )

    def filter_users(self, user_ids: Iterable[str]) -> "CheckInDataset":
        wanted = set(user_ids)
        return self._derive(
            (c for c in self._checkins if c.user_id in wanted),
            f"users[{len(wanted)}]",
        )

    def filter_bbox(self, bbox: BoundingBox) -> "CheckInDataset":
        return self._derive(
            (c for c in self._checkins if bbox.contains_lat_lon(c.lat, c.lon)),
            "bbox",
        )

    def filter_categories(self, category_names: Iterable[str]) -> "CheckInDataset":
        wanted = {n.strip().lower() for n in category_names}
        return self._derive(
            (c for c in self._checkins if c.category_name.strip().lower() in wanted),
            "categories",
        )

    def filter(self, predicate: Callable[[CheckIn], bool], suffix: str = "custom") -> "CheckInDataset":
        return self._derive((c for c in self._checkins if predicate(c)), suffix)

    def with_name(self, name: str) -> "CheckInDataset":
        out = CheckInDataset.__new__(CheckInDataset)
        out.name = name
        out._checkins = self._checkins
        out.venues = self.venues
        out._by_user = self._by_user
        return out

    def merge(self, other: "CheckInDataset") -> "CheckInDataset":
        """Union of two datasets (venue maps merged, other wins on conflict)."""
        venues = dict(self.venues)
        venues.update(other.venues)
        return CheckInDataset(
            list(self._checkins) + list(other._checkins),
            venues,
            name=f"{self.name}+{other.name}",
        )

    def __repr__(self) -> str:
        return (
            f"CheckInDataset({self.name!r}: {len(self._checkins)} check-ins, "
            f"{self.n_users} users, {len(self.venues)} venues)"
        )
