"""Dataset quality validation for real-world ingestion.

The platform accepts arbitrary uploads ("if any audience member is willing
to share their check-in history, we can upload it").  Before a dataset
enters the pipeline, this module audits it: coordinate sanity, timestamp
ordering and range, duplicate records, venue consistency (one venue id,
one location/category), taxonomy coverage, and per-user volume — producing
a structured report with severities instead of crashing mid-pipeline.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from datetime import datetime, timezone
from enum import Enum
from typing import Dict, List, Optional, Tuple

from ..geo import BoundingBox
from ..taxonomy import CategoryTree, UnknownCategoryError
from .records import CheckInDataset

__all__ = ["Severity", "QualityIssue", "QualityReport", "audit_dataset"]


class Severity(Enum):
    INFO = "info"        # worth knowing, harmless
    WARNING = "warning"  # pipeline runs, results may degrade
    ERROR = "error"      # pipeline results would be wrong


@dataclass(frozen=True)
class QualityIssue:
    """One finding of the audit."""

    severity: Severity
    code: str
    message: str
    count: int = 1

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.code}: {self.message} (x{self.count})"


@dataclass
class QualityReport:
    """All findings plus a go/no-go verdict."""

    dataset_name: str
    n_checkins: int
    issues: List[QualityIssue] = field(default_factory=list)

    @property
    def errors(self) -> List[QualityIssue]:
        return [i for i in self.issues if i.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[QualityIssue]:
        return [i for i in self.issues if i.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when nothing error-grade was found."""
        return not self.errors

    def summary(self) -> str:
        lines = [
            f"quality audit of {self.dataset_name!r} "
            f"({self.n_checkins:,} check-ins): "
            f"{'OK' if self.ok else 'FAILED'} — "
            f"{len(self.errors)} errors, {len(self.warnings)} warnings"
        ]
        lines.extend(f"  {issue}" for issue in self.issues)
        return "\n".join(lines)


def audit_dataset(
    dataset: CheckInDataset,
    taxonomy: Optional[CategoryTree] = None,
    expected_bbox: Optional[BoundingBox] = None,
    min_records_per_user: int = 2,
) -> QualityReport:
    """Audit a dataset; never raises on bad *data* (only on bad arguments)."""
    if min_records_per_user < 1:
        raise ValueError("min_records_per_user must be >= 1")
    report = QualityReport(dataset_name=dataset.name, n_checkins=len(dataset))
    if len(dataset) == 0:
        report.issues.append(QualityIssue(
            Severity.ERROR, "empty", "dataset contains no check-ins"))
        return report

    # --- coordinates ---------------------------------------------------
    at_null_island = sum(1 for c in dataset if abs(c.lat) < 1e-9 and abs(c.lon) < 1e-9)
    if at_null_island:
        report.issues.append(QualityIssue(
            Severity.ERROR, "null-island",
            "records at (0, 0) — missing GPS encoded as zeros", at_null_island))
    if expected_bbox is not None:
        outside = sum(
            1 for c in dataset if not expected_bbox.contains_lat_lon(c.lat, c.lon)
        )
        if outside:
            severity = Severity.ERROR if outside > len(dataset) * 0.05 else Severity.WARNING
            report.issues.append(QualityIssue(
                severity, "outside-study-area",
                f"records outside the expected bounding box", outside))

    # --- timestamps ------------------------------------------------------
    now = datetime.now(timezone.utc)
    future = sum(1 for c in dataset if c.timestamp > now)
    if future:
        report.issues.append(QualityIssue(
            Severity.ERROR, "future-timestamps",
            "records timestamped in the future", future))
    ancient = sum(1 for c in dataset if c.timestamp.year < 2000)
    if ancient:
        report.issues.append(QualityIssue(
            Severity.WARNING, "pre-2000-timestamps",
            "records before the year 2000 (epoch bugs?)", ancient))
    odd_tz = sum(1 for c in dataset if not (-14 * 60 <= c.tz_offset_min <= 14 * 60))
    if odd_tz:
        report.issues.append(QualityIssue(
            Severity.ERROR, "invalid-tz-offset",
            "timezone offsets outside ±14 h", odd_tz))

    # --- duplicates ------------------------------------------------------
    seen = Counter(
        (c.user_id, c.venue_id, c.timestamp) for c in dataset
    )
    duplicates = sum(count - 1 for count in seen.values() if count > 1)
    if duplicates:
        report.issues.append(QualityIssue(
            Severity.WARNING, "duplicate-records",
            "identical (user, venue, time) records", duplicates))

    # --- venue consistency -------------------------------------------------
    venue_locations: Dict[str, set] = defaultdict(set)
    venue_categories: Dict[str, set] = defaultdict(set)
    for c in dataset:
        venue_locations[c.venue_id].add((round(c.lat, 4), round(c.lon, 4)))
        venue_categories[c.venue_id].add(c.category_name)
    wandering = sum(1 for locs in venue_locations.values() if len(locs) > 1)
    if wandering:
        report.issues.append(QualityIssue(
            Severity.WARNING, "venue-location-conflict",
            "venue ids observed at more than one location", wandering))
    recategorized = sum(1 for cats in venue_categories.values() if len(cats) > 1)
    if recategorized:
        report.issues.append(QualityIssue(
            Severity.WARNING, "venue-category-conflict",
            "venue ids with more than one category name", recategorized))

    # --- taxonomy coverage ---------------------------------------------
    if taxonomy is not None:
        unknown: Counter = Counter()
        for name in dataset.category_names():
            try:
                taxonomy.resolve(name)
            except UnknownCategoryError:
                unknown[name] += 1
        if unknown:
            report.issues.append(QualityIssue(
                Severity.INFO, "unknown-categories",
                f"category names missing from the taxonomy (fall back to "
                f"their own label): {', '.join(sorted(unknown)[:5])}"
                + ("…" if len(unknown) > 5 else ""),
                len(unknown)))

    # --- per-user volume --------------------------------------------------
    thin_users = sum(
        1 for count in dataset.records_per_user().values()
        if count < min_records_per_user
    )
    if thin_users:
        report.issues.append(QualityIssue(
            Severity.INFO, "thin-users",
            f"users with fewer than {min_records_per_user} records "
            f"(no pattern can be mined)", thin_users))

    return report
