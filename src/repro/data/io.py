"""Dataset readers and writers.

Three formats are supported:

* **Foursquare TSV** — the exact column layout of the public
  ``dataset_TSMC2014_NYC.txt`` dump the paper uses, so the pipeline runs
  unchanged on the genuine data when it is available.
* **CSV** — a header-carrying round-trippable export.
* **JSONL** — one JSON object per check-in, with a venue sidecar; the format
  the web API serves.
"""

from __future__ import annotations

import csv
import json
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

from ..geo import GeoPoint
from .records import CheckIn, CheckInDataset, Venue

__all__ = [
    "read_foursquare_tsv",
    "write_foursquare_tsv",
    "read_csv",
    "write_csv",
    "read_jsonl",
    "write_jsonl",
    "load_dataset",
    "save_dataset",
]

#: Foursquare dump timestamp format, e.g. ``Tue Apr 03 18:00:09 +0000 2012``.
_FOURSQUARE_TIME_FORMAT = "%a %b %d %H:%M:%S %z %Y"

_CSV_FIELDS = [
    "user_id",
    "venue_id",
    "category_id",
    "category_name",
    "lat",
    "lon",
    "tz_offset_min",
    "utc_time",
]


def _parse_foursquare_time(raw: str) -> datetime:
    return datetime.strptime(raw.strip(), _FOURSQUARE_TIME_FORMAT).astimezone(timezone.utc)


def _format_foursquare_time(ts: datetime) -> str:
    return ts.astimezone(timezone.utc).strftime(_FOURSQUARE_TIME_FORMAT)


def read_foursquare_tsv(path: Union[str, Path], name: Optional[str] = None) -> CheckInDataset:
    """Load a Foursquare TSMC2014-format TSV file.

    Columns: user id, venue id, venue category id, venue category name,
    latitude, longitude, timezone offset in minutes, UTC time.
    Malformed rows raise :class:`ValueError` with the offending line number.
    """
    path = Path(path)
    checkins: List[CheckIn] = []
    venues: Dict[str, Venue] = {}
    with path.open("r", encoding="utf-8", errors="replace") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 8:
                raise ValueError(f"{path}:{lineno}: expected 8 tab-separated fields, got {len(parts)}")
            try:
                record = CheckIn(
                    user_id=parts[0],
                    venue_id=parts[1],
                    category_id=parts[2],
                    category_name=parts[3],
                    lat=float(parts[4]),
                    lon=float(parts[5]),
                    tz_offset_min=int(parts[6]),
                    timestamp=_parse_foursquare_time(parts[7]),
                )
            except (ValueError, KeyError) as exc:
                raise ValueError(f"{path}:{lineno}: malformed record: {exc}") from exc
            checkins.append(record)
            if record.venue_id not in venues:
                venues[record.venue_id] = Venue(
                    venue_id=record.venue_id,
                    name=record.venue_id,
                    category_id=record.category_id,
                    category_name=record.category_name,
                    location=GeoPoint(record.lat, record.lon),
                )
    return CheckInDataset(checkins, venues, name=name or path.stem)


def write_foursquare_tsv(dataset: CheckInDataset, path: Union[str, Path]) -> None:
    """Write a dataset in the Foursquare dump layout."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for c in dataset:
            fh.write(
                "\t".join(
                    [
                        c.user_id,
                        c.venue_id,
                        c.category_id,
                        c.category_name,
                        f"{c.lat:.8f}",
                        f"{c.lon:.8f}",
                        str(c.tz_offset_min),
                        _format_foursquare_time(c.timestamp),
                    ]
                )
                + "\n"
            )


def read_csv(path: Union[str, Path], name: Optional[str] = None) -> CheckInDataset:
    """Load the CSV export produced by :func:`write_csv`."""
    path = Path(path)
    checkins: List[CheckIn] = []
    venues: Dict[str, Venue] = {}
    with path.open("r", encoding="utf-8", newline="") as fh:
        reader = csv.DictReader(fh)
        missing = set(_CSV_FIELDS) - set(reader.fieldnames or [])
        if missing:
            raise ValueError(f"{path}: missing CSV columns {sorted(missing)}")
        for lineno, row in enumerate(reader, start=2):
            try:
                record = CheckIn(
                    user_id=row["user_id"],
                    venue_id=row["venue_id"],
                    category_id=row["category_id"],
                    category_name=row["category_name"],
                    lat=float(row["lat"]),
                    lon=float(row["lon"]),
                    tz_offset_min=int(row["tz_offset_min"]),
                    timestamp=datetime.fromisoformat(row["utc_time"]),
                )
            except (ValueError, KeyError, TypeError) as exc:
                # TypeError covers DictReader's None fills for short rows.
                raise ValueError(f"{path}:{lineno}: malformed record: {exc}") from exc
            checkins.append(record)
            venues.setdefault(
                record.venue_id,
                Venue(
                    venue_id=record.venue_id,
                    name=record.venue_id,
                    category_id=record.category_id,
                    category_name=record.category_name,
                    location=GeoPoint(record.lat, record.lon),
                ),
            )
    return CheckInDataset(checkins, venues, name=name or path.stem)


def write_csv(dataset: CheckInDataset, path: Union[str, Path]) -> None:
    path = Path(path)
    with path.open("w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_CSV_FIELDS)
        for c in dataset:
            writer.writerow(
                [
                    c.user_id,
                    c.venue_id,
                    c.category_id,
                    c.category_name,
                    f"{c.lat:.8f}",
                    f"{c.lon:.8f}",
                    c.tz_offset_min,
                    c.timestamp.astimezone(timezone.utc).isoformat(),
                ]
            )


def write_jsonl(dataset: CheckInDataset, path: Union[str, Path]) -> None:
    """Write one JSON object per check-in plus a ``.venues.json`` sidecar."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for c in dataset:
            fh.write(
                json.dumps(
                    {
                        "user_id": c.user_id,
                        "venue_id": c.venue_id,
                        "category_id": c.category_id,
                        "category_name": c.category_name,
                        "lat": c.lat,
                        "lon": c.lon,
                        "tz_offset_min": c.tz_offset_min,
                        "utc_time": c.timestamp.astimezone(timezone.utc).isoformat(),
                    },
                    separators=(",", ":"),
                )
                + "\n"
            )
    sidecar = path.with_suffix(path.suffix + ".venues.json")
    with sidecar.open("w", encoding="utf-8") as fh:
        json.dump(
            {
                vid: {
                    "name": v.name,
                    "category_id": v.category_id,
                    "category_name": v.category_name,
                    "lat": v.lat,
                    "lon": v.lon,
                }
                for vid, v in sorted(dataset.venues.items())
            },
            fh,
            indent=1,
            sort_keys=True,
        )


def read_jsonl(path: Union[str, Path], name: Optional[str] = None) -> CheckInDataset:
    """Load a JSONL export (venue sidecar is used when present)."""
    path = Path(path)
    checkins: List[CheckIn] = []
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                if not isinstance(row, dict):
                    raise ValueError(f"expected a JSON object, got {type(row).__name__}")
                checkins.append(
                    CheckIn(
                        user_id=row["user_id"],
                        venue_id=row["venue_id"],
                        category_id=row.get("category_id", ""),
                        category_name=row.get("category_name", ""),
                        lat=float(row["lat"]),
                        lon=float(row["lon"]),
                        tz_offset_min=int(row.get("tz_offset_min", 0)),
                        timestamp=datetime.fromisoformat(row["utc_time"]),
                    )
                )
            except (ValueError, KeyError, TypeError, json.JSONDecodeError) as exc:
                raise ValueError(f"{path}:{lineno}: malformed record: {exc}") from exc
    venues: Dict[str, Venue] = {}
    sidecar = path.with_suffix(path.suffix + ".venues.json")
    if sidecar.exists():
        with sidecar.open("r", encoding="utf-8") as fh:
            for vid, row in json.load(fh).items():
                venues[vid] = Venue(
                    venue_id=vid,
                    name=row.get("name", vid),
                    category_id=row.get("category_id", ""),
                    category_name=row.get("category_name", ""),
                    location=GeoPoint(float(row["lat"]), float(row["lon"])),
                )
    else:
        for c in checkins:
            venues.setdefault(
                c.venue_id,
                Venue(c.venue_id, c.venue_id, c.category_id, c.category_name, c.location),
            )
    return CheckInDataset(checkins, venues, name=name or path.stem)


_READERS = {".tsv": read_foursquare_tsv, ".txt": read_foursquare_tsv, ".csv": read_csv, ".jsonl": read_jsonl}
_WRITERS = {".tsv": write_foursquare_tsv, ".txt": write_foursquare_tsv, ".csv": write_csv, ".jsonl": write_jsonl}


def load_dataset(path: Union[str, Path]) -> CheckInDataset:
    """Load a dataset, dispatching on file extension (.tsv/.txt/.csv/.jsonl)."""
    path = Path(path)
    reader = _READERS.get(path.suffix.lower())
    if reader is None:
        raise ValueError(f"unsupported dataset extension {path.suffix!r} (expected one of {sorted(_READERS)})")
    return reader(path)


def save_dataset(dataset: CheckInDataset, path: Union[str, Path]) -> None:
    """Save a dataset, dispatching on file extension (.tsv/.txt/.csv/.jsonl)."""
    path = Path(path)
    writer = _WRITERS.get(path.suffix.lower())
    if writer is None:
        raise ValueError(f"unsupported dataset extension {path.suffix!r} (expected one of {sorted(_WRITERS)})")
    writer(dataset, path)
