"""Pre-processing: densest-window selection and active-user filtering.

The paper's pipeline (Section I.1):

1. the full 11-month dataset is sparse (<1 record/user/day), so the
   experiments use the *densest consecutive 3-month window* (April–June);
2. within that window, only *active* users are kept — "users with less than
   2 hours check-in records for more than 50 days", i.e. users who, on more
   than 50 distinct days, produced consecutive check-ins less than two hours
   apart (so their days are densely enough sampled to reveal a pattern).

Both steps are parameterized here so the sensitivity ablation can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta, timezone
from typing import Dict, List, Tuple  # noqa: F401 (List used in densest_window)

from .records import CheckInDataset
from .stats import monthly_counts

__all__ = [
    "densest_window",
    "select_densest_window",
    "ActiveUserFilter",
    "filter_active_users",
    "preprocess",
    "PreprocessReport",
]


def _month_start(key: str) -> datetime:
    year, month = key.split("-")
    return datetime(int(year), int(month), 1, tzinfo=timezone.utc)


def _month_after(ts: datetime) -> datetime:
    if ts.month == 12:
        return ts.replace(year=ts.year + 1, month=1)
    return ts.replace(month=ts.month + 1)


def densest_window(dataset: CheckInDataset, months: int = 3) -> Tuple[datetime, datetime]:
    """UTC [start, end) bounds of the consecutive ``months``-month window
    holding the most check-ins."""
    if months < 1:
        raise ValueError("window must cover at least one month")
    counts = monthly_counts(dataset)
    if not counts:
        raise ValueError("empty dataset has no densest window")
    # Expand to the full calendar range so months with zero check-ins still
    # occupy a slot — windows must be *calendar*-consecutive.
    first = _month_start(min(counts))
    last = _month_start(max(counts))
    keys: List[str] = []
    cursor = first
    while cursor <= last:
        keys.append(f"{cursor.year:04d}-{cursor.month:02d}")
        cursor = _month_after(cursor)
    span = min(months, len(keys))
    best_i, best_total = 0, -1
    for i in range(len(keys) - span + 1):
        total = sum(counts.get(k, 0) for k in keys[i:i + span])
        if total > best_total:
            best_total, best_i = total, i
    start = _month_start(keys[best_i])
    end = _month_start(keys[best_i + span - 1])
    return start, _month_after(end)


def select_densest_window(dataset: CheckInDataset, months: int = 3) -> CheckInDataset:
    """Restrict the dataset to its densest consecutive ``months``-month window."""
    start, end = densest_window(dataset, months)
    return dataset.filter_time(start, end).with_name(
        f"{dataset.name}/densest-{months}mo"
    )


@dataclass(frozen=True)
class ActiveUserFilter:
    """The paper's activity criterion, parameterized.

    A local-calendar day *qualifies* for a user when the user has at least
    ``min_checkins_per_day`` check-ins that day and at least one pair of
    consecutive check-ins separated by no more than ``max_gap_hours``.
    A user passes the filter with more than ``min_qualifying_days`` qualifying
    days.
    """

    min_qualifying_days: int = 50
    max_gap_hours: float = 2.0
    min_checkins_per_day: int = 2

    def __post_init__(self) -> None:
        if self.min_qualifying_days < 0:
            raise ValueError("min_qualifying_days must be non-negative")
        if self.max_gap_hours <= 0:
            raise ValueError("max_gap_hours must be positive")
        if self.min_checkins_per_day < 1:
            raise ValueError("min_checkins_per_day must be >= 1")

    def qualifying_days(self, dataset: CheckInDataset, user_id: str) -> int:
        """Count the user's qualifying days in the dataset."""
        by_day: Dict[object, List[datetime]] = {}
        for record in dataset.for_user(user_id):
            by_day.setdefault(record.local_date, []).append(record.timestamp)
        max_gap = timedelta(hours=self.max_gap_hours)
        count = 0
        for times in by_day.values():
            if len(times) < self.min_checkins_per_day:
                continue
            if self.min_checkins_per_day == 1 and len(times) == 1:
                count += 1
                continue
            times.sort()
            if any(b - a <= max_gap for a, b in zip(times, times[1:])):
                count += 1
        return count

    def passing_users(self, dataset: CheckInDataset) -> List[str]:
        """Ids of users exceeding the qualifying-day threshold, sorted."""
        return [
            uid
            for uid in dataset.user_ids()
            if self.qualifying_days(dataset, uid) > self.min_qualifying_days
        ]


def filter_active_users(
    dataset: CheckInDataset, criteria: ActiveUserFilter = ActiveUserFilter()
) -> CheckInDataset:
    """Keep only users passing the activity criterion."""
    return dataset.filter_users(criteria.passing_users(dataset)).with_name(
        f"{dataset.name}/active"
    )


@dataclass(frozen=True)
class PreprocessReport:
    """What preprocessing did — surfaced in reports and the web UI."""

    input_checkins: int
    input_users: int
    window_start: datetime
    window_end: datetime
    window_checkins: int
    window_users: int
    active_users: int
    output_checkins: int

    def as_rows(self) -> List[Tuple[str, str]]:
        return [
            ("input check-ins", f"{self.input_checkins:,}"),
            ("input users", f"{self.input_users:,}"),
            ("densest window", f"{self.window_start.date()} .. {self.window_end.date()}"),
            ("window check-ins", f"{self.window_checkins:,}"),
            ("window users", f"{self.window_users:,}"),
            ("active users kept", f"{self.active_users:,}"),
            ("output check-ins", f"{self.output_checkins:,}"),
        ]


def preprocess(
    dataset: CheckInDataset,
    months: int = 3,
    criteria: ActiveUserFilter = ActiveUserFilter(),
) -> Tuple[CheckInDataset, PreprocessReport]:
    """Run the paper's full pre-processing: densest window, then active users."""
    start, end = densest_window(dataset, months)
    windowed = dataset.filter_time(start, end)
    filtered = filter_active_users(windowed, criteria)
    report = PreprocessReport(
        input_checkins=len(dataset),
        input_users=dataset.n_users,
        window_start=start,
        window_end=end,
        window_checkins=len(windowed),
        window_users=windowed.n_users,
        active_users=filtered.n_users,
        output_checkins=len(filtered),
    )
    return filtered.with_name(f"{dataset.name}/preprocessed"), report
