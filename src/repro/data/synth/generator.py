"""The GTSM simulation loop: agents live their routines, sometimes check in.

Day by day, every agent walks through their routine; each stop happens with
its own probability (humans skip stops), the concrete venue is drawn from the
stop's preference pool with preferential return + exploration, and finally a
*voluntary check-in* coin flip (per-user propensity × monthly seasonality)
decides whether the visit becomes a record.  That last flip is what makes the
output sparse in exactly the way the paper describes.
"""

from __future__ import annotations

from datetime import datetime, timedelta, timezone
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...taxonomy import build_default_taxonomy
from ..records import CheckIn, CheckInDataset, Venue
from .agents import AgentProfile, RoutineStop, build_agents
from .city import SyntheticCity, build_city
from .config import SMALL_CONFIG, SynthConfig

__all__ = ["GenerationResult", "generate", "synthetic_dataset", "small_dataset"]

#: Zipf-style weights over a preference pool of size n: 1/rank, normalized.
def _preference_weights(n: int) -> np.ndarray:
    w = 1.0 / np.arange(1, n + 1, dtype=float)
    return w / w.sum()


class GenerationResult:
    """Everything the simulation produced: data plus ground truth.

    Keeping the city and agent profiles alongside the dataset lets tests and
    benchmarks validate mined patterns against the *actual* routines that
    generated the records — ground truth the real Foursquare dump never had.
    """

    def __init__(
        self,
        dataset: CheckInDataset,
        city: SyntheticCity,
        agents: Sequence[AgentProfile],
        config: SynthConfig,
    ) -> None:
        self.dataset = dataset
        self.city = city
        self.agents = tuple(agents)
        self.config = config
        self.agents_by_id: Dict[str, AgentProfile] = {a.user_id: a for a in agents}

    def __repr__(self) -> str:
        return f"GenerationResult({self.dataset!r}, {len(self.agents)} agents)"


def _choose_venue(
    rng: np.random.Generator,
    city: SyntheticCity,
    agent: AgentProfile,
    stop: RoutineStop,
    exploration_prob: float,
) -> Optional[Venue]:
    """Pick today's venue for a routine stop (None if no venue exists)."""
    if stop.pool_kind == "fixed":
        return city.venues_by_id.get(stop.target)
    pool = agent.preferred.get(stop.slot_key)
    if not pool:
        return None
    if rng.random() < exploration_prob:
        # Explore: any venue of the category, anywhere in the city.
        if stop.pool_kind == "leaf":
            candidates = city.venues_of_leaf(stop.target)
        else:
            candidates = city.venues_of_root(stop.target)
        if candidates:
            return candidates[int(rng.integers(len(candidates)))]
        return None
    weights = _preference_weights(len(pool))
    return pool[int(rng.choice(len(pool), p=weights))]


def _local_timestamp(
    day: datetime, hour: float, jitter_min: float, rng: np.random.Generator, tz_offset_min: int
) -> datetime:
    """A timezone-aware UTC timestamp for ``hour`` local on ``day``."""
    minutes = hour * 60.0 + rng.normal(0.0, jitter_min)
    minutes = float(np.clip(minutes, 0.0, 24 * 60 - 1))
    local_tz = timezone(timedelta(minutes=tz_offset_min))
    local = day.replace(tzinfo=local_tz) + timedelta(minutes=minutes)
    return local.astimezone(timezone.utc)


def generate(config: SynthConfig = SynthConfig()) -> GenerationResult:
    """Run the full simulation for ``config`` (deterministic in ``config.seed``)."""
    rng = np.random.default_rng(config.seed)
    taxonomy = build_default_taxonomy()
    city = build_city(
        config.bbox,
        config.n_neighborhoods,
        config.n_venues,
        config.neighborhood_sigma_m,
        rng,
        taxonomy,
    )
    agents = build_agents(city, config, rng)

    # Resolve each injected event to a concrete venue (first of its category,
    # deterministic) once, up front.
    events_by_day = {}
    for event in config.events:
        venues = city.venues_of_leaf(event.venue_category) or city.venues_of_root(
            event.venue_category
        )
        if not venues:
            raise ValueError(
                f"event {event.name!r}: no venue of category "
                f"{event.venue_category!r} in the city"
            )
        events_by_day.setdefault(event.day, []).append((event, venues[0]))

    checkins: List[CheckIn] = []
    day0 = datetime(config.start_date.year, config.start_date.month, config.start_date.day)
    for day_index in range(config.n_days):
        day = day0 + timedelta(days=day_index)
        season = config.monthly_seasonality[day.month]
        weekday = day.weekday()
        todays_events = events_by_day.get(day.date(), ())
        for agent in agents:
            routine = agent.routine_for(weekday)
            p_checkin = min(1.0, agent.checkin_prob * season)
            for event, event_venue in todays_events:
                if rng.random() >= event.attendance_prob:
                    continue
                if rng.random() >= min(1.0, p_checkin * event.checkin_boost):
                    continue
                ts = _local_timestamp(day, event.start_hour, config.time_jitter_min,
                                      rng, config.tz_offset_min)
                checkins.append(
                    CheckIn(
                        user_id=agent.user_id,
                        venue_id=event_venue.venue_id,
                        category_id=event_venue.category_id,
                        category_name=event_venue.category_name,
                        lat=event_venue.lat,
                        lon=event_venue.lon,
                        tz_offset_min=config.tz_offset_min,
                        timestamp=ts,
                    )
                )
            for stop in routine:
                if rng.random() >= stop.prob * (1.0 - config.stop_skip_noise):
                    continue  # the stop did not happen today
                venue = _choose_venue(rng, city, agent, stop, config.exploration_prob)
                if venue is None:
                    continue
                if rng.random() >= p_checkin:
                    continue  # visited, but did not check in (voluntary sparsity)
                ts = _local_timestamp(day, stop.hour, config.time_jitter_min, rng,
                                      config.tz_offset_min)
                checkins.append(
                    CheckIn(
                        user_id=agent.user_id,
                        venue_id=venue.venue_id,
                        category_id=venue.category_id,
                        category_name=venue.category_name,
                        lat=venue.lat,
                        lon=venue.lon,
                        tz_offset_min=config.tz_offset_min,
                        timestamp=ts,
                    )
                )

    dataset = CheckInDataset(checkins, dict(city.venues_by_id), name="synthetic-nyc")
    return GenerationResult(dataset, city, agents, config)


def synthetic_dataset(config: SynthConfig = SynthConfig()) -> CheckInDataset:
    """Just the dataset (see :func:`generate` for the full result)."""
    return generate(config).dataset


def small_dataset(seed: int = 7) -> CheckInDataset:
    """A small fast dataset for tests, examples, and docs."""
    config = SMALL_CONFIG if seed == SMALL_CONFIG.seed else SynthConfig(
        **{**SMALL_CONFIG.__dict__, "seed": seed}
    )
    return generate(config).dataset
