"""Configuration for the synthetic GTSM (Foursquare-like) generator.

Defaults are calibrated to the statistics the paper reports for the real
Foursquare NYC dump: 1,083 users, ≈227k check-ins over 11 months
(April 2012 – February 2013), mean ≈210 / median ≈153 records per user
(right-skewed, i.e. sparse voluntary check-ins), with April–June the densest
quarter.  See DESIGN.md §2 for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date
from typing import Dict, Tuple

from ...geo import NYC_BBOX, BoundingBox

__all__ = ["CityEvent", "SynthConfig", "SMALL_CONFIG", "PAPER_CONFIG"]


@dataclass(frozen=True)
class CityEvent:
    """A one-off mass gathering injected into the simulation.

    On ``day``, each agent attends with ``attendance_prob``, adding a visit
    to one venue of ``venue_category`` at ``start_hour``; attendees check in
    with boosted probability (people broadcast events).  Used by the
    crowd-anomaly example and tests.
    """

    name: str
    day: date
    venue_category: str = "Stadium"
    start_hour: float = 19.5
    attendance_prob: float = 0.4
    checkin_boost: float = 3.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.start_hour < 24.0):
            raise ValueError("start_hour out of range")
        if not (0.0 <= self.attendance_prob <= 1.0):
            raise ValueError("attendance_prob must be a probability")
        if self.checkin_boost < 1.0:
            raise ValueError("checkin_boost must be >= 1")


@dataclass(frozen=True)
class SynthConfig:
    """All knobs of the synthetic-city simulation.

    The generator is fully deterministic given ``seed``.
    """

    seed: int = 20230701
    #: Study area the city is laid out in.
    bbox: BoundingBox = NYC_BBOX
    #: Number of simulated users (paper: 1,083).
    n_users: int = 1083
    #: Number of venues in the city (the real dump has ~38k; a few thousand
    #: keeps generation fast while preserving venue-choice flexibility).
    n_venues: int = 4000
    #: Number of neighborhood hotspots venues cluster around.
    n_neighborhoods: int = 24
    #: Std-dev of venue scatter around a neighborhood center, meters.
    neighborhood_sigma_m: float = 900.0
    #: Simulation period (paper: 2012-04-03 .. 2013-02-16).
    start_date: date = date(2012, 4, 3)
    end_date: date = date(2013, 2, 16)
    #: Per-month check-in propensity multipliers; the Apr–Jun boost makes the
    #: spring quarter the densest, matching the paper's window selection.
    monthly_seasonality: Dict[int, float] = field(
        default_factory=lambda: {
            1: 0.80, 2: 0.78, 3: 0.95, 4: 1.30, 5: 1.35, 6: 1.28,
            7: 1.00, 8: 0.95, 9: 1.00, 10: 0.95, 11: 0.85, 12: 0.82,
        }
    )
    #: Lognormal sigma of the casual users' check-in propensity.  Together
    #: with the power-user mixture below this reproduces the paper's
    #: mean ≈ 210 / median ≈ 153 records-per-user shape.
    checkin_rate_sigma: float = 0.45
    #: Mean of the casual users' Bernoulli check-in probability.
    checkin_rate_mean: float = 0.128
    #: Clamp range of the per-user check-in probability.
    checkin_rate_clamp: Tuple[float, float] = (0.01, 0.97)
    #: Fraction of users who check in near-compulsively.  These are the users
    #: that survive the paper's >50-qualifying-days activity filter and form
    #: the crowd in the city-scale view.
    power_user_fraction: float = 0.065
    #: Uniform check-in probability range of power users.
    power_user_range: Tuple[float, float] = (0.65, 0.97)
    #: Probability that a routine stop happens at all on a given day.
    stop_skip_noise: float = 0.08
    #: Probability of exploring a brand-new venue instead of a preferred one.
    exploration_prob: float = 0.10
    #: Number of preferred venues a user keeps per category slot.
    preferred_venues_per_slot: int = 3
    #: Std-dev of visit-time jitter in minutes.
    time_jitter_min: float = 25.0
    #: Timezone offset applied to all records (NYC is UTC-240 in the dump).
    tz_offset_min: int = -240
    #: Fraction of weekday routines that are "worker" (vs student/freelancer).
    worker_fraction: float = 0.62
    student_fraction: float = 0.18
    #: One-off mass gatherings injected into the simulation.
    events: Tuple[CityEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.n_users < 1 or self.n_venues < 10 or self.n_neighborhoods < 1:
            raise ValueError("population sizes out of range")
        if self.end_date <= self.start_date:
            raise ValueError("end_date must be after start_date")
        if not (0.0 <= self.exploration_prob <= 1.0):
            raise ValueError("exploration_prob must be a probability")
        if not (0.0 < self.checkin_rate_mean < 1.0):
            raise ValueError("checkin_rate_mean must be in (0, 1)")
        lo, hi = self.checkin_rate_clamp
        if not (0.0 < lo < hi <= 1.0):
            raise ValueError("checkin_rate_clamp must satisfy 0 < lo < hi <= 1")
        if not (0.0 <= self.power_user_fraction <= 1.0):
            raise ValueError("power_user_fraction must be a probability")
        plo, phi = self.power_user_range
        if not (0.0 < plo < phi <= 1.0):
            raise ValueError("power_user_range must satisfy 0 < lo < hi <= 1")
        if self.worker_fraction + self.student_fraction > 1.0:
            raise ValueError("worker_fraction + student_fraction must not exceed 1")
        missing = set(range(1, 13)) - set(self.monthly_seasonality)
        if missing:
            raise ValueError(f"monthly_seasonality missing months {sorted(missing)}")

    @property
    def n_days(self) -> int:
        return (self.end_date - self.start_date).days + 1


#: Full paper-scale dataset (~1k users, ~227k check-ins, 11 months).
PAPER_CONFIG = SynthConfig()

#: A small fast dataset for tests and examples (~60 users, ~2.5 months).
SMALL_CONFIG = SynthConfig(
    seed=7,
    n_users=60,
    n_venues=600,
    n_neighborhoods=8,
    start_date=date(2012, 4, 1),
    end_date=date(2012, 6, 15),
)
