"""Synthetic GTSM data: the paper-dataset substitution (see DESIGN.md §2)."""

from .agents import AgentProfile, RoutineStop, build_agents
from .city import Neighborhood, SyntheticCity, build_city
from .config import PAPER_CONFIG, SMALL_CONFIG, CityEvent, SynthConfig
from .generator import GenerationResult, generate, small_dataset, synthetic_dataset
from .traces import TraceConfig, simulate_day_trace, simulate_traces

__all__ = [
    "AgentProfile",
    "CityEvent",
    "GenerationResult",
    "Neighborhood",
    "PAPER_CONFIG",
    "RoutineStop",
    "SMALL_CONFIG",
    "SyntheticCity",
    "SynthConfig",
    "TraceConfig",
    "build_agents",
    "build_city",
    "generate",
    "simulate_day_trace",
    "simulate_traces",
    "small_dataset",
    "synthetic_dataset",
]
