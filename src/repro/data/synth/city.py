"""Synthetic city layout: neighborhoods and venues.

Venues cluster around neighborhood hotspots (a Gaussian scatter per
neighborhood), with category mixes that differ by neighborhood character —
business districts are office/eatery-heavy, residential areas are
home/grocery-heavy — so that simulated commutes traverse the city the way
real ones do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ...geo import BoundingBox, GeoPoint, QuadTree
from ...taxonomy import CategoryTree, build_default_taxonomy
from ..records import Venue

__all__ = ["Neighborhood", "SyntheticCity", "build_city"]

#: Neighborhood character → sampling weight of each root category.
_CHARACTER_MIX: Dict[str, Dict[str, float]] = {
    "downtown": {
        "Eatery": 0.26, "Shops": 0.18, "Work": 0.22, "Residence": 0.04,
        "Education": 0.03, "Transport": 0.08, "Entertainment": 0.08,
        "Nightlife": 0.08, "Outdoors": 0.03,
    },
    "residential": {
        "Eatery": 0.16, "Shops": 0.20, "Work": 0.05, "Residence": 0.30,
        "Education": 0.06, "Transport": 0.07, "Entertainment": 0.04,
        "Nightlife": 0.03, "Outdoors": 0.09,
    },
    "campus": {
        "Eatery": 0.20, "Shops": 0.08, "Work": 0.06, "Residence": 0.14,
        "Education": 0.30, "Transport": 0.06, "Entertainment": 0.06,
        "Nightlife": 0.05, "Outdoors": 0.05,
    },
    "entertainment": {
        "Eatery": 0.24, "Shops": 0.12, "Work": 0.05, "Residence": 0.06,
        "Education": 0.02, "Transport": 0.07, "Entertainment": 0.22,
        "Nightlife": 0.17, "Outdoors": 0.05,
    },
}

_CHARACTERS = tuple(_CHARACTER_MIX)


@dataclass(frozen=True)
class Neighborhood:
    """A venue hotspot with a land-use character."""

    neighborhood_id: int
    center: GeoPoint
    character: str
    sigma_m: float


class SyntheticCity:
    """The generated city: neighborhoods, venues, and spatial/category indexes."""

    def __init__(
        self,
        bbox: BoundingBox,
        neighborhoods: Sequence[Neighborhood],
        venues: Sequence[Venue],
        taxonomy: CategoryTree,
    ) -> None:
        self.bbox = bbox
        self.neighborhoods = tuple(neighborhoods)
        self.venues = tuple(venues)
        self.taxonomy = taxonomy
        self.venues_by_id: Dict[str, Venue] = {v.venue_id: v for v in venues}
        self._by_leaf: Dict[str, List[Venue]] = {}
        self._by_root: Dict[str, List[Venue]] = {}
        for v in venues:
            self._by_leaf.setdefault(v.category_name, []).append(v)
            root = taxonomy.root_of(v.category_id).name
            self._by_root.setdefault(root, []).append(v)
        self.index: QuadTree[Venue] = QuadTree(bbox, capacity=32)
        for v in venues:
            self.index.insert(v.location, v)

    def venues_of_leaf(self, leaf_name: str) -> List[Venue]:
        """All venues of one leaf category (empty list if none exist)."""
        return list(self._by_leaf.get(leaf_name, ()))

    def venues_of_root(self, root_name: str) -> List[Venue]:
        """All venues under one root category."""
        return list(self._by_root.get(root_name, ()))

    def nearest_of_root(self, point: GeoPoint, root_name: str, k: int = 8) -> List[Venue]:
        """The ``k`` venues of a root category nearest to ``point``."""
        pool = self._by_root.get(root_name, ())
        scored = sorted(pool, key=lambda v: point.fast_distance_to(v.location))
        return scored[:k]

    def nearest_of_leaf(self, point: GeoPoint, leaf_name: str, k: int = 8) -> List[Venue]:
        pool = self._by_leaf.get(leaf_name, ())
        scored = sorted(pool, key=lambda v: point.fast_distance_to(v.location))
        return scored[:k]


def _scatter_around(
    rng: np.random.Generator, center: GeoPoint, sigma_m: float, bbox: BoundingBox
) -> GeoPoint:
    """One Gaussian-scattered point near ``center``, clamped into ``bbox``."""
    # ~111 km per degree latitude; correct longitude by cos(lat).
    dlat = rng.normal(0.0, sigma_m) / 111_320.0
    dlon = rng.normal(0.0, sigma_m) / (111_320.0 * max(np.cos(np.radians(center.lat)), 1e-6))
    lat = float(np.clip(center.lat + dlat, bbox.min_lat, bbox.max_lat))
    lon = float(np.clip(center.lon + dlon, bbox.min_lon, bbox.max_lon))
    return GeoPoint(lat, lon)


def build_city(
    bbox: BoundingBox,
    n_neighborhoods: int,
    n_venues: int,
    sigma_m: float,
    rng: np.random.Generator,
    taxonomy: CategoryTree = None,
) -> SyntheticCity:
    """Lay out a deterministic synthetic city.

    Neighborhood centers are sampled uniformly in a margin-inset box so their
    venue scatter stays inside the study area; characters rotate through the
    four land-use mixes with a bias toward residential (cities have more
    housing than downtowns).
    """
    taxonomy = taxonomy or build_default_taxonomy()
    inset = bbox.expand(-0.02) if bbox.lat_span > 0.08 else bbox
    neighborhoods = []
    character_cycle = ("downtown", "residential", "residential", "campus",
                      "entertainment", "residential")
    for i in range(n_neighborhoods):
        center = GeoPoint(
            float(rng.uniform(inset.min_lat, inset.max_lat)),
            float(rng.uniform(inset.min_lon, inset.max_lon)),
        )
        neighborhoods.append(
            Neighborhood(
                neighborhood_id=i,
                center=center,
                character=character_cycle[i % len(character_cycle)],
                sigma_m=sigma_m,
            )
        )

    leaf_by_root: Dict[str, List] = {
        root.name: [c for c in taxonomy.descendants(root.category_id) if c.is_leaf]
        for root in taxonomy.roots()
    }
    root_names = list(_CHARACTER_MIX["downtown"])

    venues: List[Venue] = []
    # Venues are assigned to neighborhoods proportionally to a per-
    # neighborhood size weight, so some hotspots are much denser than others.
    size_weights = rng.dirichlet(np.full(n_neighborhoods, 2.0))
    venue_counts = np.maximum(1, np.round(size_weights * n_venues).astype(int))
    serial = 0
    for hood, count in zip(neighborhoods, venue_counts):
        mix = _CHARACTER_MIX[hood.character]
        weights = np.array([mix[r] for r in root_names])
        weights = weights / weights.sum()
        for _ in range(int(count)):
            root = root_names[int(rng.choice(len(root_names), p=weights))]
            leaves = leaf_by_root[root]
            leaf = leaves[int(rng.integers(len(leaves)))]
            location = _scatter_around(rng, hood.center, hood.sigma_m, bbox)
            venue_id = f"v{serial:05d}"
            venues.append(
                Venue(
                    venue_id=venue_id,
                    name=f"{leaf.name} #{serial:05d}",
                    category_id=leaf.category_id,
                    category_name=leaf.name,
                    location=location,
                )
            )
            serial += 1

    return SyntheticCity(bbox, neighborhoods, venues, taxonomy)
