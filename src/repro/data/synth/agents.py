"""Agent profiles: who lives where, works where, and what their routine is.

Each simulated user gets a *routine* — an ordered list of daily stops, each
with a local-time anchor, an occurrence probability, and a venue pool.  The
pools realize the paper's flexibility motivation: a "lunch" stop is tied to a
*category* (say, Thai Restaurant) and a short preference list of concrete
venues, so the agent eats Thai every day but at a different venue each day.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...geo import GeoPoint
from ..records import Venue
from .city import SyntheticCity
from .config import SynthConfig

__all__ = ["RoutineStop", "AgentProfile", "build_agents"]


@dataclass(frozen=True)
class RoutineStop:
    """One slot of a daily routine.

    ``pool_kind`` selects how the concrete venue is chosen each day:

    * ``"fixed"`` — always the same venue (home, workplace);
    * ``"leaf"`` — one of the agent's preferred venues of a leaf category
      (the flexible "Thai Restaurant" case);
    * ``"root"`` — one of the preferred venues under a root category
      (maximally flexible, e.g. "some Entertainment").
    """

    slot_key: str
    hour: float
    prob: float
    pool_kind: str
    target: str  # venue_id for "fixed", category name otherwise

    def __post_init__(self) -> None:
        if not (0.0 <= self.hour < 24.0):
            raise ValueError(f"stop hour {self.hour} out of range")
        if not (0.0 <= self.prob <= 1.0):
            raise ValueError(f"stop probability {self.prob} out of range")
        if self.pool_kind not in ("fixed", "leaf", "root"):
            raise ValueError(f"unknown pool kind {self.pool_kind!r}")


@dataclass
class AgentProfile:
    """A simulated user."""

    user_id: str
    persona: str
    home: Venue
    work: Optional[Venue]
    checkin_prob: float
    weekday_routine: Tuple[RoutineStop, ...]
    weekend_routine: Tuple[RoutineStop, ...]
    #: slot_key → ranked preferred venues for that slot's category pool.
    preferred: Dict[str, Tuple[Venue, ...]] = field(default_factory=dict)

    def routine_for(self, weekday: int) -> Tuple[RoutineStop, ...]:
        """Weekday index 0–6 (Monday=0) → the day's routine."""
        return self.weekend_routine if weekday >= 5 else self.weekday_routine


def _pick(rng: np.random.Generator, seq: Sequence, k: int = 1):
    idx = rng.choice(len(seq), size=min(k, len(seq)), replace=False)
    picked = [seq[int(i)] for i in np.atleast_1d(idx)]
    return picked[0] if k == 1 else picked


_LUNCH_LEAVES = (
    "Thai Restaurant", "Chinese Restaurant", "Japanese Restaurant",
    "Italian Restaurant", "Mexican Restaurant", "Sandwich Place",
    "Pizza Place", "Burger Joint", "Deli", "Fast Food Restaurant",
)
_EVENING_LEAVES = ("Gym", "Supermarket", "Clothing Store", "Bookstore", "Yoga Studio")
_DINNER_ROOTS = ("Eatery", "Nightlife")
_WEEKEND_FUN_ROOTS = ("Entertainment", "Outdoors", "Shops")


def _worker_routines(
    rng: np.random.Generator, home: Venue, work: Venue
) -> Tuple[List[RoutineStop], List[RoutineStop]]:
    lunch_leaf = str(_pick(rng, _LUNCH_LEAVES))
    evening_leaf = str(_pick(rng, _EVENING_LEAVES))
    dinner_root = str(_pick(rng, _DINNER_ROOTS))
    fun_root = str(_pick(rng, _WEEKEND_FUN_ROOTS))
    weekday = [
        RoutineStop("home-am", 7.4 + rng.uniform(-0.4, 0.4), 0.70, "fixed", home.venue_id),
        RoutineStop("coffee", 8.5 + rng.uniform(-0.3, 0.3), 0.55, "leaf", "Coffee Shop"),
        RoutineStop("work-am", 9.1 + rng.uniform(-0.4, 0.4), 0.90, "fixed", work.venue_id),
        RoutineStop("lunch", 12.6 + rng.uniform(-0.4, 0.4), 0.85, "leaf", lunch_leaf),
        RoutineStop("work-pm", 13.9 + rng.uniform(-0.3, 0.3), 0.55, "fixed", work.venue_id),
        RoutineStop("errand", 17.8 + rng.uniform(-0.5, 0.5), 0.40, "leaf", evening_leaf),
        RoutineStop("dinner", 19.3 + rng.uniform(-0.5, 0.5), 0.45, "root", dinner_root),
        RoutineStop("home-pm", 21.4 + rng.uniform(-0.6, 0.6), 0.60, "fixed", home.venue_id),
    ]
    weekend = [
        RoutineStop("brunch", 11.0 + rng.uniform(-0.6, 0.6), 0.65, "root", "Eatery"),
        RoutineStop("outing", 13.8 + rng.uniform(-0.8, 0.8), 0.60, "root", fun_root),
        RoutineStop("shopping", 16.0 + rng.uniform(-0.8, 0.8), 0.45, "root", "Shops"),
        RoutineStop("dinner", 19.5 + rng.uniform(-0.5, 0.5), 0.55, "root", dinner_root),
        RoutineStop("night", 21.8 + rng.uniform(-0.6, 0.6), 0.35, "root", "Nightlife"),
        RoutineStop("home-pm", 23.0 + rng.uniform(-0.5, 0.5), 0.50, "fixed", home.venue_id),
    ]
    return weekday, weekend


def _student_routines(
    rng: np.random.Generator, home: Venue, campus: Venue
) -> Tuple[List[RoutineStop], List[RoutineStop]]:
    lunch_leaf = str(_pick(rng, _LUNCH_LEAVES))
    weekday = [
        RoutineStop("home-am", 8.2 + rng.uniform(-0.4, 0.4), 0.55, "fixed", home.venue_id),
        RoutineStop("class-am", 9.6 + rng.uniform(-0.5, 0.5), 0.85, "fixed", campus.venue_id),
        RoutineStop("lunch", 12.4 + rng.uniform(-0.4, 0.4), 0.80, "leaf", lunch_leaf),
        RoutineStop("library", 14.5 + rng.uniform(-0.5, 0.5), 0.60, "leaf", "College Library"),
        RoutineStop("gym", 17.5 + rng.uniform(-0.6, 0.6), 0.35, "leaf", "Gym"),
        RoutineStop("dinner", 19.0 + rng.uniform(-0.5, 0.5), 0.50, "root", "Eatery"),
        RoutineStop("home-pm", 21.8 + rng.uniform(-0.6, 0.6), 0.55, "fixed", home.venue_id),
    ]
    weekend = [
        RoutineStop("brunch", 11.4 + rng.uniform(-0.6, 0.6), 0.55, "root", "Eatery"),
        RoutineStop("study", 14.0 + rng.uniform(-0.8, 0.8), 0.45, "leaf", "Public Library"),
        RoutineStop("fun", 17.0 + rng.uniform(-0.8, 0.8), 0.55, "root", "Entertainment"),
        RoutineStop("night", 21.0 + rng.uniform(-0.8, 0.8), 0.55, "root", "Nightlife"),
        RoutineStop("home-pm", 23.2 + rng.uniform(-0.4, 0.4), 0.45, "fixed", home.venue_id),
    ]
    return weekday, weekend


def _freelancer_routines(
    rng: np.random.Generator, home: Venue
) -> Tuple[List[RoutineStop], List[RoutineStop]]:
    lunch_leaf = str(_pick(rng, _LUNCH_LEAVES))
    weekday = [
        RoutineStop("home-am", 8.8 + rng.uniform(-0.6, 0.6), 0.60, "fixed", home.venue_id),
        RoutineStop("cafe-am", 10.0 + rng.uniform(-0.6, 0.6), 0.75, "leaf", "Coffee Shop"),
        RoutineStop("lunch", 12.9 + rng.uniform(-0.5, 0.5), 0.70, "leaf", lunch_leaf),
        RoutineStop("cowork", 14.3 + rng.uniform(-0.5, 0.5), 0.55, "leaf", "Coworking Space"),
        RoutineStop("walk", 17.2 + rng.uniform(-0.8, 0.8), 0.40, "root", "Outdoors"),
        RoutineStop("dinner", 19.6 + rng.uniform(-0.6, 0.6), 0.45, "root", "Eatery"),
        RoutineStop("home-pm", 21.6 + rng.uniform(-0.6, 0.6), 0.55, "fixed", home.venue_id),
    ]
    weekend = [
        RoutineStop("market", 10.8 + rng.uniform(-0.6, 0.6), 0.50, "leaf", "Farmers Market"),
        RoutineStop("outing", 13.5 + rng.uniform(-0.8, 0.8), 0.55, "root", "Outdoors"),
        RoutineStop("gallery", 16.2 + rng.uniform(-0.8, 0.8), 0.40, "root", "Entertainment"),
        RoutineStop("dinner", 19.8 + rng.uniform(-0.6, 0.6), 0.50, "root", "Eatery"),
        RoutineStop("home-pm", 22.6 + rng.uniform(-0.5, 0.5), 0.50, "fixed", home.venue_id),
    ]
    return weekday, weekend


def _preference_pool(
    rng: np.random.Generator,
    city: SyntheticCity,
    anchor: GeoPoint,
    stop: RoutineStop,
    k_preferred: int,
) -> Tuple[Venue, ...]:
    """The agent's ranked venue shortlist for one flexible slot."""
    if stop.pool_kind == "leaf":
        nearby = city.nearest_of_leaf(anchor, stop.target, k=max(8, k_preferred * 3))
    else:
        nearby = city.nearest_of_root(anchor, stop.target, k=max(10, k_preferred * 4))
    if not nearby:
        return ()
    order = rng.permutation(len(nearby))
    return tuple(nearby[int(i)] for i in order[:k_preferred])


def build_agents(
    city: SyntheticCity, config: SynthConfig, rng: np.random.Generator
) -> List[AgentProfile]:
    """Create the simulated population.

    Check-in propensity is lognormal (clamped), reproducing the right-skewed
    records-per-user distribution the paper reports.
    """
    homes = city.venues_of_root("Residence")
    offices = city.venues_of_root("Work")
    campuses = city.venues_of_leaf("University") or city.venues_of_root("Education")
    if not homes or not offices or not campuses:
        raise ValueError("city lacks Residence/Work/Education venues; increase n_venues")

    # Casual users: lognormal propensity.  Power users: uniformly high
    # propensity — they are the ones who survive the activity filter.
    mu = float(np.log(config.checkin_rate_mean)) - config.checkin_rate_sigma**2 / 2.0
    rates = np.exp(rng.normal(mu, config.checkin_rate_sigma, size=config.n_users))
    power_mask = rng.random(config.n_users) < config.power_user_fraction
    plo, phi = config.power_user_range
    rates[power_mask] = rng.uniform(plo, phi, size=int(power_mask.sum()))
    lo, hi = config.checkin_rate_clamp
    rates = np.clip(rates, lo, hi)

    agents: List[AgentProfile] = []
    for i in range(config.n_users):
        user_id = f"u{i:04d}"
        home = homes[int(rng.integers(len(homes)))]
        draw = rng.random()
        if draw < config.worker_fraction:
            persona = "worker"
            work = offices[int(rng.integers(len(offices)))]
            weekday, weekend = _worker_routines(rng, home, work)
        elif draw < config.worker_fraction + config.student_fraction:
            persona = "student"
            work = campuses[int(rng.integers(len(campuses)))]
            weekday, weekend = _student_routines(rng, home, work)
        else:
            persona = "freelancer"
            work = None
            weekday, weekend = _freelancer_routines(rng, home)

        preferred: Dict[str, Tuple[Venue, ...]] = {}
        for stop in list(weekday) + list(weekend):
            if stop.pool_kind == "fixed" or stop.slot_key in preferred:
                continue
            # Lunch anchors at the workplace, everything else near home.
            anchor = (work or home).location if stop.slot_key == "lunch" else home.location
            pool = _preference_pool(rng, city, anchor, stop, config.preferred_venues_per_slot)
            if pool:
                preferred[stop.slot_key] = pool

        agents.append(
            AgentProfile(
                user_id=user_id,
                persona=persona,
                home=home,
                work=work,
                checkin_prob=float(rates[i]),
                weekday_routine=tuple(weekday),
                weekend_routine=tuple(weekend),
                preferred=preferred,
            )
        )
    return agents
