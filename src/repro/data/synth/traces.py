"""Raw GPS-trace simulation on top of the agent model.

Check-ins are sparse, voluntary point events; the DBSCAN+RNN prediction
baseline (paper ref [10]) instead consumes *continuous* GPS traces.  This
module turns an agent's day into such a trace: dwell fixes scattered around
each visited venue, walking fixes interpolated between venues at pedestrian
speed, all with GPS noise — the raw-signal counterpart of the same
ground-truth routine the check-in generator samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date as date_type
from datetime import datetime, timedelta, timezone
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..records import Fix, Venue
from .agents import AgentProfile
from .city import SyntheticCity
from .config import SynthConfig
from .generator import _choose_venue

__all__ = ["TraceConfig", "simulate_day_trace", "simulate_traces"]


@dataclass(frozen=True)
class TraceConfig:
    """Sampling parameters of the simulated GPS receiver."""

    sample_interval_s: float = 120.0
    walking_speed_mps: float = 1.4
    gps_noise_m: float = 12.0
    dwell_minutes_mean: float = 45.0
    dwell_minutes_sigma: float = 15.0

    def __post_init__(self) -> None:
        if self.sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")
        if self.walking_speed_mps <= 0:
            raise ValueError("walking_speed_mps must be positive")
        if self.gps_noise_m < 0:
            raise ValueError("gps_noise_m must be non-negative")
        if self.dwell_minutes_mean <= 0:
            raise ValueError("dwell_minutes_mean must be positive")


def _noisy_fix(
    ts: datetime, lat: float, lon: float, noise_m: float, rng: np.random.Generator
) -> Fix:
    dlat = rng.normal(0.0, noise_m) / 111_320.0
    dlon = rng.normal(0.0, noise_m) / (111_320.0 * max(np.cos(np.radians(lat)), 1e-6))
    return Fix(timestamp=ts, lat=lat + dlat, lon=lon + dlon)


def simulate_day_trace(
    agent: AgentProfile,
    city: SyntheticCity,
    day: date_type,
    rng: np.random.Generator,
    synth: SynthConfig,
    trace: TraceConfig = TraceConfig(),
) -> List[Fix]:
    """One agent-day as a GPS trace.

    Visits are sampled exactly like the check-in generator (same stop
    probabilities, same flexible venue choice); between consecutive visits
    the agent walks in a straight line at ``walking_speed_mps``; every
    ``sample_interval_s`` a noisy fix is emitted.
    """
    weekday = day.weekday()
    routine = agent.routine_for(weekday)
    visits: List[tuple] = []  # (hour, venue)
    for stop in routine:
        if rng.random() >= stop.prob * (1.0 - synth.stop_skip_noise):
            continue
        venue = _choose_venue(rng, city, agent, stop, synth.exploration_prob)
        if venue is not None:
            visits.append((stop.hour, venue))
    if not visits:
        return []
    visits.sort(key=lambda pair: pair[0])

    day0 = datetime(day.year, day.month, day.day,
                    tzinfo=timezone(timedelta(minutes=synth.tz_offset_min)))
    fixes: List[Fix] = []
    interval = timedelta(seconds=trace.sample_interval_s)

    previous_venue: Optional[Venue] = None
    cursor: Optional[datetime] = None
    for hour, venue in visits:
        arrival = day0 + timedelta(hours=float(hour))
        if previous_venue is not None and cursor is not None:
            # Walk from the previous venue; clamp the leg so it fits the gap.
            distance = previous_venue.location.distance_to(venue.location)
            travel_s = distance / trace.walking_speed_mps
            available_s = max(0.0, (arrival - cursor).total_seconds())
            travel_s = min(travel_s, available_s)
            steps = int(travel_s // trace.sample_interval_s)
            for k in range(1, steps + 1):
                f = k / (steps + 1)
                ts = cursor + timedelta(seconds=k * trace.sample_interval_s)
                lat = previous_venue.lat + (venue.lat - previous_venue.lat) * f
                lon = previous_venue.lon + (venue.lon - previous_venue.lon) * f
                fixes.append(_noisy_fix(ts, lat, lon, trace.gps_noise_m, rng))
        # Dwell at the venue.
        dwell_min = max(10.0, rng.normal(trace.dwell_minutes_mean,
                                         trace.dwell_minutes_sigma))
        departure = arrival + timedelta(minutes=dwell_min)
        ts = arrival
        while ts <= departure:
            fixes.append(_noisy_fix(ts, venue.lat, venue.lon,
                                    trace.gps_noise_m, rng))
            ts += interval
        previous_venue = venue
        cursor = departure

    fixes.sort(key=lambda f: f.timestamp)
    return fixes


def simulate_traces(
    agents: Sequence[AgentProfile],
    city: SyntheticCity,
    days: Sequence[date_type],
    synth: SynthConfig,
    trace: TraceConfig = TraceConfig(),
    seed: int = 0,
) -> Dict[str, Dict[date_type, List[Fix]]]:
    """Traces for several agents over several days:
    ``{user_id: {day: [fixes]}}`` (empty days omitted)."""
    rng = np.random.default_rng(seed)
    out: Dict[str, Dict[date_type, List[Fix]]] = {}
    for agent in agents:
        per_day: Dict[date_type, List[Fix]] = {}
        for day in days:
            day_fixes = simulate_day_trace(agent, city, day, rng, synth, trace)
            if day_fixes:
                per_day[day] = day_fixes
        if per_day:
            out[agent.user_id] = per_day
    return out
