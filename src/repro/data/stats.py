"""Dataset statistics — the sparsity analysis of the paper's Section I.1.

The paper characterizes the Foursquare NYC dump before mining: total
check-ins, user count, mean/median records per user, collection span, the
conclusion that <1 record/user/day means the data is *sparse*, and the
observation that April–June is the densest quarter.  :func:`dataset_stats`
computes all of it for any :class:`~repro.data.records.CheckInDataset`.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, List, Mapping, Tuple

import numpy as np

from .records import CheckInDataset

__all__ = [
    "DatasetStats",
    "active_days_per_user",
    "dataset_stats",
    "monthly_counts",
    "records_per_user_histogram",
]


def _month_key(ts: datetime) -> str:
    return f"{ts.year:04d}-{ts.month:02d}"


@dataclass(frozen=True)
class DatasetStats:
    """Summary statistics mirroring the paper's pre-processing narrative."""

    name: str
    n_checkins: int
    n_users: int
    n_venues: int
    n_categories: int
    first_checkin: datetime
    last_checkin: datetime
    collection_days: int
    mean_records_per_user: float
    median_records_per_user: float
    min_records_per_user: int
    max_records_per_user: int
    records_per_user_per_day: float
    monthly_checkins: Mapping[str, int] = field(default_factory=dict)

    @property
    def is_sparse(self) -> bool:
        """The paper's sparsity criterion: fewer than one record per user-day."""
        return self.records_per_user_per_day < 1.0

    def densest_months(self, k: int = 3) -> List[str]:
        """The consecutive ``k``-month window with the most check-ins."""
        months = sorted(self.monthly_checkins)
        if len(months) < k:
            return months
        best_start = 0
        best_total = -1
        for i in range(len(months) - k + 1):
            total = sum(self.monthly_checkins[m] for m in months[i:i + k])
            if total > best_total:
                best_total = total
                best_start = i
        return months[best_start:best_start + k]

    def as_rows(self) -> List[Tuple[str, str]]:
        """(label, value) rows for report tables."""
        return [
            ("dataset", self.name),
            ("check-ins", f"{self.n_checkins:,}"),
            ("users", f"{self.n_users:,}"),
            ("venues", f"{self.n_venues:,}"),
            ("categories", f"{self.n_categories:,}"),
            ("collection period", f"{self.first_checkin.date()} .. {self.last_checkin.date()}"),
            ("collection days", str(self.collection_days)),
            ("mean records/user", f"{self.mean_records_per_user:.1f}"),
            ("median records/user", f"{self.median_records_per_user:.1f}"),
            ("records/user/day", f"{self.records_per_user_per_day:.3f}"),
            ("sparse (<1/user/day)", "yes" if self.is_sparse else "no"),
            ("densest 3 months", " ".join(self.densest_months(3))),
        ]


def dataset_stats(dataset: CheckInDataset) -> DatasetStats:
    """Compute the full statistics bundle for a non-empty dataset."""
    if len(dataset) == 0:
        raise ValueError("cannot compute statistics of an empty dataset")
    per_user = np.array(sorted(dataset.records_per_user().values()), dtype=float)
    first, last = dataset.time_range()
    collection_days = max(1, (last.date() - first.date()).days + 1)
    mean_per_user = float(per_user.mean())
    return DatasetStats(
        name=dataset.name,
        n_checkins=len(dataset),
        n_users=dataset.n_users,
        n_venues=len(dataset.venues),
        n_categories=len(dataset.category_names()),
        first_checkin=first,
        last_checkin=last,
        collection_days=collection_days,
        mean_records_per_user=mean_per_user,
        median_records_per_user=float(np.median(per_user)),
        min_records_per_user=int(per_user[0]),
        max_records_per_user=int(per_user[-1]),
        records_per_user_per_day=mean_per_user / collection_days,
        monthly_checkins=monthly_counts(dataset),
    )


def monthly_counts(dataset: CheckInDataset) -> Dict[str, int]:
    """Check-ins per calendar month (UTC), keyed ``"YYYY-MM"``."""
    counts: Counter = Counter(_month_key(c.timestamp) for c in dataset)
    return dict(sorted(counts.items()))


def records_per_user_histogram(dataset: CheckInDataset, bin_width: int = 50) -> Dict[str, int]:
    """Histogram of per-user record counts, keyed ``"lo-hi"`` in count order."""
    if bin_width < 1:
        raise ValueError("bin_width must be >= 1")
    histogram: Dict[str, int] = defaultdict(int)
    for count in dataset.records_per_user().values():
        lo = (count // bin_width) * bin_width
        histogram[f"{lo}-{lo + bin_width - 1}"] += 1
    return dict(sorted(histogram.items(), key=lambda kv: int(kv[0].split("-")[0])))


def active_days_per_user(dataset: CheckInDataset) -> Dict[str, int]:
    """Number of distinct local dates each user checked in on."""
    return {
        uid: len({c.local_date for c in dataset.for_user(uid)})
        for uid in dataset.user_ids()
    }
