"""Dataset substrate: records, I/O, statistics, preprocessing, synthesis."""

from .io import (
    load_dataset,
    read_csv,
    read_foursquare_tsv,
    read_jsonl,
    save_dataset,
    write_csv,
    write_foursquare_tsv,
    write_jsonl,
)
from .preprocess import (
    ActiveUserFilter,
    PreprocessReport,
    densest_window,
    filter_active_users,
    preprocess,
    select_densest_window,
)
from .quality import QualityIssue, QualityReport, Severity, audit_dataset
from .records import CheckIn, CheckInDataset, Venue
from .stats import (
    DatasetStats,
    active_days_per_user,
    dataset_stats,
    monthly_counts,
    records_per_user_histogram,
)
from .synth import (
    PAPER_CONFIG,
    SMALL_CONFIG,
    CityEvent,
    GenerationResult,
    SynthConfig,
    generate,
    small_dataset,
    synthetic_dataset,
)

__all__ = [
    "ActiveUserFilter",
    "CheckIn",
    "CityEvent",
    "CheckInDataset",
    "DatasetStats",
    "GenerationResult",
    "PAPER_CONFIG",
    "PreprocessReport",
    "QualityIssue",
    "QualityReport",
    "SMALL_CONFIG",
    "Severity",
    "SynthConfig",
    "Venue",
    "active_days_per_user",
    "audit_dataset",
    "dataset_stats",
    "densest_window",
    "filter_active_users",
    "generate",
    "load_dataset",
    "monthly_counts",
    "preprocess",
    "read_csv",
    "read_foursquare_tsv",
    "read_jsonl",
    "records_per_user_histogram",
    "save_dataset",
    "select_densest_window",
    "small_dataset",
    "synthetic_dataset",
    "write_csv",
    "write_foursquare_tsv",
    "write_jsonl",
]
