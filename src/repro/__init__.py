"""CrowdWeb reproduction: crowd mobility patterns in smart cities.

A full reimplementation of *CrowdWeb: A Visualization Tool for Mobility
Patterns in Smart Cities* (Zheng et al., ICDCS 2023): a synthetic
Foursquare-like data substrate, flexible mobility-pattern mining (modified
PrefixSpan), crowd synchronization/aggregation over a microcell grid, and a
dependency-free visualization platform.

Quickstart::

    from repro import small_dataset, run_pipeline, small_pipeline_config

    dataset = small_dataset()
    result = run_pipeline(dataset, small_pipeline_config())
    snapshot = result.timeline.at_hour(9.5)
    print(snapshot.n_users, "users in the city at 9-10 am")
"""

from .analysis import max_predictability, user_mobility_metrics
from .data import (
    CheckIn,
    CheckInDataset,
    SMALL_CONFIG,
    SynthConfig,
    Venue,
    dataset_stats,
    load_dataset,
    save_dataset,
    small_dataset,
    synthetic_dataset,
)
from .experiments import run_all, small_pipeline_config
from .mining import ModifiedPrefixSpanConfig, modified_prefixspan, prefixspan
from .patterns import detect_all_patterns, detect_user_patterns, summarize_profile
from .pipeline import PipelineConfig, PipelineResult, run_pipeline
from .taxonomy import AbstractionLevel, build_default_taxonomy

__version__ = "1.0.0"

__all__ = [
    "AbstractionLevel",
    "CheckIn",
    "CheckInDataset",
    "ModifiedPrefixSpanConfig",
    "PipelineConfig",
    "PipelineResult",
    "SMALL_CONFIG",
    "SynthConfig",
    "Venue",
    "__version__",
    "build_default_taxonomy",
    "dataset_stats",
    "detect_all_patterns",
    "detect_user_patterns",
    "load_dataset",
    "max_predictability",
    "modified_prefixspan",
    "prefixspan",
    "run_all",
    "run_pipeline",
    "save_dataset",
    "small_dataset",
    "small_pipeline_config",
    "summarize_profile",
    "synthetic_dataset",
    "user_mobility_metrics",
]
