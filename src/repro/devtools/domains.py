"""Value-domain seeding, module summaries, and interprocedural propagation.

crowdlint v2 (``flow.py``) can follow a value inside one function; it stops
at the signature.  The refactors on the ROADMAP — interning time-bin×place
items, user ids, and microcell ids to dense ints; incremental re-aggregation
keyed by those ids — introduce a bug class that *lives* on the signature
boundary: a ``user_id`` int passed where a ``microcell_id`` int is expected,
degrees fed to a ``_m`` parameter, ``(lat, lon)`` swapped two calls away from
where the tuple was built.  All of those type-check fine, run fine, and
produce plausible-looking wrong crowd maps.

This module provides the value-domain half of the whole-program layer:

* **Domain families** — four independent value families, each a small flat
  lattice (unknown < value < conflict):

  - ``axis``: ``lat`` / ``lon``
  - ``unit``: ``meters`` / ``kilometers`` / ``degrees`` / ``radians`` /
    ``seconds`` / ``milliseconds``
  - ``id``:   ``user_id`` / ``microcell_id`` / ``item_id``
  - ``dt``:   ``naive`` / ``aware`` datetimes

* **Seeding** — domains are read off identifier conventions the codebase
  already enforces (CW101/CW102 police them per-file): ``lat``/``lon``
  classify as axes, ``_m``/``_deg``/``_s`` suffixes as units,
  ``user_id``/``microcell_id``/``item_id`` (and ``owner_user_id``-style
  compounds) as id domains, ``_utc``/``_naive`` as datetime kinds.

* **Module summaries** — a per-module, JSON-serializable digest of exactly
  the facts interprocedural analysis needs: functions with parameter seeds,
  symbolic call records with per-argument hints, imports, classes, exports,
  and referenced identifiers.  Summaries depend only on the module's own
  source, so they cache by content hash (see ``cache.SummaryCache``).

* **Propagation** — :class:`DomainEnv` solves two fixpoints over the
  resolved call graph: *expected* parameter domains flow **backward** (a
  parameter that is passed straight through to a ``microcell_id`` parameter
  is itself expected to be a microcell id), and *return* domains flow
  **forward** (a function returning a ``user_id`` confers that domain on
  every call result).  Anything ambiguous collapses to unknown or an
  explicit conflict sentinel, and neither is ever reported on — the CW6xx
  rules flag only a *known* actual against a *known, different* expected.

Like the rest of ``repro.devtools`` this is stdlib-only and never imports
the code it analyzes.
"""

from __future__ import annotations

import ast
import json
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .exceptions import extract_exception_facts
from .layers import resolve_import
from .resources import extract_resource_facts
from .threads import extract_thread_facts

__all__ = [
    "CONFLICT",
    "FAMILIES",
    "DomainEnv",
    "FunctionRef",
    "axis_of",
    "domain_label",
    "dt_domain_of",
    "extract_summary",
    "id_domain_of",
    "seed_domains",
    "unit_of",
]

#: The independent value families tracked per slot.
FAMILIES = ("axis", "unit", "id", "dt")

#: Sentinel for a slot two propagation sources disagreed about.  A conflict
#: is never reported (the disagreement usually *is* upstream of the bug the
#: call-site check already flags) and never propagates further.
CONFLICT = "<conflict>"

#: Bumped when the summary JSON schema changes; part of the summary cache key.
SUMMARY_FORMAT = "3"


# ---------------------------------------------------------------------------
# Seeding: identifier conventions -> domains
# ---------------------------------------------------------------------------

_LAT_WORDS = {"lat", "lats", "latitude", "latitudes", "phi"}
_LON_WORDS = {"lon", "lons", "lng", "longitude", "longitudes", "lam", "lambda"}

#: Variable-name suffix → canonical unit.  Deliberately small: only suffixes
#: the codebase actually uses as unit markers, to keep false positives near
#: zero (``_s`` is seconds throughout, ``_m`` meters, ``_deg`` degrees).
_UNIT_SUFFIXES = {
    "m": "meters",
    "meters": "meters",
    "km": "kilometers",
    "deg": "degrees",
    "degrees": "degrees",
    "rad": "radians",
    "s": "seconds",
    "sec": "seconds",
    "seconds": "seconds",
    "ms": "milliseconds",
}

#: ``<owner>_id`` → id domain.  ``cell_id`` counts as a microcell id because
#: microcells are the only cells in this codebase (paper §5).
_ID_OWNERS = {
    "user": "user_id",
    "users": "user_id",
    "microcell": "microcell_id",
    "microcells": "microcell_id",
    "cell": "microcell_id",
    "cells": "microcell_id",
    "item": "item_id",
    "items": "item_id",
}


def axis_of(name: Optional[str]) -> Optional[str]:
    """Classify an identifier as a ``"lat"`` or ``"lon"`` coordinate, if clear.

    Splits on underscores and strips trailing digits so ``lat1``, ``min_lon``
    and ``start_latitude`` all classify.  Returns ``None`` when the identifier
    mentions neither axis or (defensively) both.
    """
    if not name:
        return None
    hits = set()
    for part in name.lower().split("_"):
        part = part.rstrip("0123456789")
        if part in _LAT_WORDS:
            hits.add("lat")
        elif part in _LON_WORDS:
            hits.add("lon")
    if len(hits) == 1:
        return hits.pop()  # crowdlint: disable=CW204 -- single-element set, pop is deterministic
    return None


def unit_of(name: Optional[str]) -> Optional[str]:
    """The unit encoded in an identifier's suffix, or ``None``.

    ``dist_m`` → meters, ``EARTH_RADIUS_M`` → meters, ``bearing_deg`` →
    degrees, ``dt_s`` → seconds.  A bare suffix-less name has no unit.
    """
    if not name or "_" not in name:
        return None
    last = name.lower().rsplit("_", 1)[1].rstrip("0123456789")
    return _UNIT_SUFFIXES.get(last)


def id_domain_of(name: Optional[str]) -> Optional[str]:
    """The id domain an identifier names, or ``None``.

    ``user_id`` / ``owner_user_id`` / ``user_ids`` → ``user_id``;
    ``microcell_id`` / ``cell_id`` → ``microcell_id``; ``item_id`` →
    ``item_id``; ``uid`` → ``user_id``.  A bare ``id``/``ids`` stays unknown.
    """
    if not name:
        return None
    parts = [part.rstrip("0123456789") for part in name.lower().split("_")]
    if parts[-1] in {"uid", "uids"}:
        return "user_id"
    if parts[-1] not in {"id", "ids"} or len(parts) < 2:
        return None
    return _ID_OWNERS.get(parts[-2])


def dt_domain_of(name: Optional[str]) -> Optional[str]:
    """``"aware"`` for ``*_utc``/``*_aware`` names, ``"naive"`` for ``*_naive``."""
    if not name or "_" not in name:
        return None
    last = name.lower().rsplit("_", 1)[1]
    if last in {"utc", "aware"}:
        return "aware"
    if last == "naive":
        return "naive"
    return None


def seed_domains(name: Optional[str]) -> Dict[str, str]:
    """Every domain an identifier's name declares, keyed by family."""
    seeds: Dict[str, str] = {}
    axis = axis_of(name)
    if axis:
        seeds["axis"] = axis
    unit = unit_of(name)
    if unit:
        seeds["unit"] = unit
    id_domain = id_domain_of(name)
    if id_domain:
        seeds["id"] = id_domain
    dt = dt_domain_of(name)
    if dt:
        seeds["dt"] = dt
    return seeds


#: Human-readable spelling of a domain value for finding messages.
DOMAIN_LABELS = {
    "lat": "latitude",
    "lon": "longitude",
    "user_id": "user id",
    "microcell_id": "microcell id",
    "item_id": "item id",
    "naive": "timezone-naive datetime",
    "aware": "timezone-aware datetime",
}


def domain_label(value: str) -> str:
    return DOMAIN_LABELS.get(value, value)


# ---------------------------------------------------------------------------
# Module summaries
# ---------------------------------------------------------------------------
#
# Symbolic callee forms (JSON lists so summaries round-trip):
#   ["name", f]           a bare name call:  f(...)
#   ["attr", root, m]     one-level attribute call:  root.m(...)  (root may be
#                         an imported module, a local object, or a class)
#   ["dotted", "a.b.c"]   a longer attribute chain over plain names
#   ["self", m]           self.m(...) inside a method
#   ["new", sym, m]       method on a fresh instance:  Cls(...).m(...)
#
# Argument / return value hints:
#   ["param", p]          the enclosing function's parameter p, passed through
#   ["name", ident]       an identifier whose *name* may seed domains
#   ["call", sym]         the result of a resolvable call (return domain)
#   ["const"]             a literal
#   ["unknown"]           anything else
#
# ``offset`` on a call record shifts positional argument mapping (a call
# through ``functools.partial(f, a, b)`` starts binding at position 2).

_PARTIAL_NAMES = {"partial"}


def _is_partial_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in _PARTIAL_NAMES
    if isinstance(func, ast.Attribute):
        return func.attr in _PARTIAL_NAMES
    return False


def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` → ``["a", "b", "c"]`` when the chain is plain names."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


class _Scope:
    """Per-function extraction state: params, single-assignment values."""

    def __init__(self, qualname: str, node: Optional[ast.AST]):
        self.qualname = qualname
        self.positional: List[str] = []
        self.param_names: Set[str] = set()
        if node is not None:
            args = node.args
            self.positional = [
                arg.arg for arg in list(getattr(args, "posonlyargs", [])) + list(args.args)
            ]
            self.param_names = set(self.positional) | {a.arg for a in args.kwonlyargs}
        #: var -> RHS expression of its single simple assignment, or None
        #: when the var is rebound (ambiguous — never chased).
        self.assigns: Dict[str, Optional[ast.expr]] = {}


def _scope_nodes(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Every node in ``body`` excluding nested function/class subtrees."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue  # nested scopes are summarized separately
        stack.extend(ast.iter_child_nodes(node))


def extract_summary(
    tree: ast.Module, module: Optional[str], path: str, is_init: bool
) -> Dict[str, object]:
    """The whole-program-relevant digest of one module, as plain JSON data."""
    summary: Dict[str, object] = {
        "format": SUMMARY_FORMAT,
        "module": module,
        "path": path,
        "is_init": is_init,
        "functions": {},
        "classes": {},
        "calls": [],
        "imports": {},
        "aliases": {},
        "exports": None,
        "refs": [],
    }
    extractor = _SummaryExtractor(summary, module, is_init)
    extractor.run(tree)
    # Thread, exception, and resource facts ride inside the summary so they
    # share its content-addressed cache entry and ship to --jobs workers
    # for free.
    summary["threads"] = extract_thread_facts(tree)
    summary["exceptions"] = extract_exception_facts(tree)
    summary["resources"] = extract_resource_facts(tree)
    return summary


class _SummaryExtractor:
    def __init__(self, summary: Dict[str, object], module: Optional[str], is_init: bool):
        self.summary = summary
        self.module = module
        self.is_init = is_init
        self.functions: Dict[str, Dict[str, object]] = summary["functions"]  # type: ignore[assignment]
        self.classes: Dict[str, Dict[str, object]] = summary["classes"]  # type: ignore[assignment]
        self.calls: List[Dict[str, object]] = summary["calls"]  # type: ignore[assignment]
        self.imports: Dict[str, List[object]] = summary["imports"]  # type: ignore[assignment]
        self.aliases: Dict[str, str] = summary["aliases"]  # type: ignore[assignment]
        self.refs: Set[str] = set()

    # ------------------------------------------------------------- driver

    def run(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                self._record_import(node)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                self.refs.add(node.id)
            elif isinstance(node, ast.Attribute):
                self.refs.add(node.attr)
        module_scope = _Scope("<module>", None)
        self._collect_assigns(tree.body, module_scope)
        self._record_function_like(tree.body, module_scope, line=1)
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._extract_function(stmt, stmt.name)
            elif isinstance(stmt, ast.ClassDef):
                self._extract_class(stmt)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    if target.id == "__all__":
                        self.summary["exports"] = _literal_strings(stmt.value)
                    elif isinstance(stmt.value, ast.Name):
                        self.aliases[target.id] = stmt.value.id
        self.summary["refs"] = sorted(self.refs)

    # ------------------------------------------------------- imports

    def _record_import(self, node: ast.stmt) -> None:
        if isinstance(node, ast.ImportFrom):
            target = resolve_import(self.module, node.module, node.level, self.is_init)
            if target is None:
                return
            for alias in node.names:
                if alias.name == "*":
                    continue
                self.imports[alias.asname or alias.name] = ["symbol", target, alias.name]
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    self.imports[alias.asname] = ["module", alias.name]
                else:
                    root = alias.name.split(".")[0]
                    self.imports.setdefault(root, ["module", root])

    # ------------------------------------------------------- functions

    def _extract_function(
        self, node: ast.AST, qualname: str, class_name: Optional[str] = None
    ) -> None:
        scope = _Scope(qualname, node)
        self._collect_assigns(node.body, scope)
        self._record_function_like(node.body, scope, line=node.lineno, class_name=class_name)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._extract_function(stmt, f"{qualname}.{stmt.name}")

    def _record_function_like(
        self,
        body: Sequence[ast.stmt],
        scope: _Scope,
        line: int,
        class_name: Optional[str] = None,
    ) -> None:
        info: Dict[str, object] = {
            "line": line,
            "positional": scope.positional,
            "params": {
                name: seed_domains(name)
                for name in sorted(scope.param_names)
            },
            "returns": [],
            "ctors": {},
            "class": class_name,
        }
        for var, value in scope.assigns.items():
            if isinstance(value, ast.Call):
                sym = self._callee_sym(value, scope)
                if sym is not None and sym[0] != "partial":
                    info["ctors"][var] = sym  # type: ignore[index]
        for node in _scope_nodes(body):
            if isinstance(node, ast.Return) and node.value is not None:
                info["returns"].append(self._value_hint(node.value, scope))  # type: ignore[attr-defined]
            elif isinstance(node, ast.Call):
                self._record_call(node, scope)
        self.functions[scope.qualname] = info

    def _extract_class(self, node: ast.ClassDef) -> None:
        bases = []
        for base in node.bases:
            chain = _attr_chain(base)
            if chain is not None:
                bases.append(
                    ["name", chain[0]] if len(chain) == 1 else ["dotted", ".".join(chain)]
                )
        methods = []
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.append(stmt.name)
                self._extract_function(stmt, f"{node.name}.{stmt.name}", class_name=node.name)
        self.classes[node.name] = {
            "line": node.lineno,
            "methods": methods,
            "bases": bases,
        }

    # ------------------------------------------------------- assignments

    def _collect_assigns(self, body: Sequence[ast.stmt], scope: _Scope) -> None:
        for node in _scope_nodes(body):
            target: Optional[str] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                if isinstance(node.targets[0], ast.Name):
                    target, value = node.targets[0].id, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    target, value = node.target.id, node.value
            elif isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
                target, value = node.target.id, node.value
            elif isinstance(node, (ast.AugAssign, ast.For, ast.AsyncFor)):
                inner = node.target
                for sub in ast.walk(inner):
                    if isinstance(sub, ast.Name):
                        scope.assigns[sub.id] = None  # rebound opaquely
                continue
            if target is None:
                continue
            if target in scope.assigns:
                scope.assigns[target] = None  # rebound: ambiguous, never chased
            else:
                scope.assigns[target] = value

    # ------------------------------------------------------- calls & hints

    def _record_call(self, node: ast.Call, scope: _Scope) -> None:
        offset = 0
        if _is_partial_call(node):
            return  # partial(...) itself constructs, it does not invoke
        sym = self._callee_sym(node, scope)
        if sym is None:
            return
        if sym and sym[0] == "partial":
            # A call through a locally-built functools.partial: unwrap to the
            # underlying callee and start positional binding past the
            # pre-bound arguments.
            _, inner, pre_bound = sym
            sym, offset = inner, pre_bound
        args: List[List[object]] = []
        texts: List[str] = []
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                break  # positional mapping is unknowable past a *splat
            args.append(self._value_hint(arg, scope))
            texts.append(_short_text(arg))
        kwargs: Dict[str, List[object]] = {}
        kw_texts: Dict[str, str] = {}
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            kwargs[keyword.arg] = self._value_hint(keyword.value, scope)
            kw_texts[keyword.arg] = _short_text(keyword.value)
        self.calls.append(
            {
                "caller": scope.qualname,
                "callee": sym,
                "offset": offset,
                "line": node.lineno,
                "col": node.col_offset,
                "args": args,
                "texts": texts,
                "kwargs": kwargs,
                "kw_texts": kw_texts,
            }
        )

    def _callee_sym(
        self, node: ast.Call, scope: _Scope, depth: int = 3
    ) -> Optional[List[object]]:
        return self._expr_sym(node.func, scope, depth)

    def _expr_sym(
        self, expr: ast.AST, scope: _Scope, depth: int = 3
    ) -> Optional[List[object]]:
        if isinstance(expr, ast.Name):
            name = expr.id
            if depth > 0 and name not in scope.param_names:
                value = scope.assigns.get(name)
                if isinstance(value, ast.Call) and _is_partial_call(value):
                    inner = (
                        self._expr_sym(value.args[0], scope, depth - 1)
                        if value.args
                        else None
                    )
                    if inner is not None and inner[0] != "partial":
                        return ["partial", inner, len(value.args) - 1]
                elif isinstance(value, ast.Name):
                    return self._expr_sym(value, scope, depth - 1)
            return ["name", name]
        if isinstance(expr, ast.Attribute):
            chain = _attr_chain(expr)
            if chain is None:
                if isinstance(expr.value, ast.Call):
                    inner = self._expr_sym(expr.value.func, scope, depth - 1)
                    if inner is not None and inner[0] in {"name", "attr", "dotted"}:
                        return ["new", inner, expr.attr]
                return None
            if len(chain) == 2:
                if chain[0] == "self":
                    return ["self", chain[1]]
                return ["attr", chain[0], chain[1]]
            return ["dotted", ".".join(chain)]
        return None

    def _value_hint(self, expr: ast.AST, scope: _Scope, depth: int = 3) -> List[object]:
        while isinstance(expr, ast.UnaryOp):
            expr = expr.operand
        if isinstance(expr, ast.Name):
            name = expr.id
            if name in scope.param_names:
                return ["param", name]
            if seed_domains(name):
                return ["name", name]
            value = scope.assigns.get(name)
            if depth > 0 and value is not None:
                hint = self._value_hint(value, scope, depth - 1)
                if hint[0] != "unknown":
                    return hint
            return ["name", name]
        if isinstance(expr, ast.Attribute):
            return ["name", expr.attr]
        if isinstance(expr, ast.Call):
            if _is_partial_call(expr):
                return ["unknown"]
            sym = self._callee_sym(expr, scope)
            if sym is not None and sym[0] != "partial":
                return ["call", sym]
            return ["unknown"]
        if isinstance(expr, ast.Constant):
            return ["const"]
        return ["unknown"]


def _literal_strings(node: ast.AST) -> Optional[List[str]]:
    if isinstance(node, (ast.List, ast.Tuple)):
        out = []
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                out.append(element.value)
            else:
                return None
        return out
    return None


def _short_text(node: ast.AST, limit: int = 40) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return "<expr>"
    return text if len(text) <= limit else text[: limit - 3] + "..."


# ---------------------------------------------------------------------------
# Interprocedural propagation
# ---------------------------------------------------------------------------

#: A function's identity across the project: (module key, qualified name).
FunctionRef = Tuple[str, str]


class DomainEnv:
    """Expected parameter domains and return domains, solved to a fixpoint.

    ``expected[ref][param][family]`` is the domain a parameter is *required*
    to carry: its own name seed, or — when the name says nothing — whatever
    domain the parameter flows into when passed straight through to another
    call (backward propagation).  ``ret[ref][family]`` is the domain every
    return path of the function agrees on (forward propagation through
    ``["call", ...]`` hints).  Both use :data:`CONFLICT` for slots that two
    sources disagree about; conflicted slots neither report nor propagate.
    """

    def __init__(self) -> None:
        self.expected: Dict[FunctionRef, Dict[str, Dict[str, str]]] = {}
        self.ret: Dict[FunctionRef, Dict[str, str]] = {}
        self.seeded: Dict[FunctionRef, Dict[str, Set[str]]] = {}

    # -- queries -----------------------------------------------------------

    def expected_domains(self, ref: FunctionRef, param: str) -> Dict[str, str]:
        slots = self.expected.get(ref, {}).get(param, {})
        return {family: value for family, value in slots.items() if value != CONFLICT}

    def return_domains(self, ref: FunctionRef) -> Dict[str, str]:
        return {
            family: value
            for family, value in self.ret.get(ref, {}).items()
            if value != CONFLICT
        }

    def signature(self, ref: FunctionRef, positional: Sequence[str]) -> str:
        """A canonical string of everything callers can observe about ``ref``.

        This is the unit of cache invalidation: a dependent module's findings
        can only change when one of these signatures (or a resolution) does.
        """
        payload = {
            "positional": list(positional),
            "expected": {
                param: dict(sorted(slots.items()))
                for param, slots in sorted(self.expected.get(ref, {}).items())
            },
            "ret": dict(sorted(self.ret.get(ref, {}).items())),
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    # -- solving -----------------------------------------------------------

    def solve(
        self,
        summaries: Dict[str, Dict[str, object]],
        resolver: Callable[[str, str, List[object]], Optional[Tuple[FunctionRef, bool]]],
        max_passes: int = 20,
    ) -> None:
        """Run both fixpoints.  ``resolver(module_key, caller, sym)`` returns
        ``(ref, bound)`` — ``bound`` meaning the first positional parameter is
        an implicit ``self`` — or ``None`` when the callee cannot be pinned.
        """
        for module_key in sorted(summaries):
            for qualname, info in summaries[module_key]["functions"].items():  # type: ignore[union-attr]
                if qualname == "<module>":
                    continue
                ref = (module_key, qualname)
                params: Dict[str, Dict[str, str]] = {}
                seeded: Dict[str, Set[str]] = {}
                for param, seeds in info["params"].items():  # type: ignore[index]
                    params[param] = dict(seeds)
                    seeded[param] = set(seeds)
                self.expected[ref] = params
                self.seeded[ref] = seeded
                self.ret[ref] = {}

        for _ in range(max_passes):
            changed = self._propagate_expected(summaries, resolver)
            changed |= self._propagate_returns(summaries, resolver)
            if not changed:
                break

    def _iter_bound_args(
        self,
        summaries: Dict[str, Dict[str, object]],
        resolver: Callable[..., Optional[Tuple[FunctionRef, bool]]],
    ) -> Iterator[Tuple[str, Dict[str, object], FunctionRef, str, List[object]]]:
        """(module, call, callee ref, bound param name, hint) per mapped arg."""
        for module_key in sorted(summaries):
            for call in summaries[module_key]["calls"]:  # type: ignore[index]
                resolved = resolver(module_key, call["caller"], call["callee"])
                if resolved is None:
                    continue
                ref, bound = resolved
                info = summaries[ref[0]]["functions"].get(ref[1])  # type: ignore[index]
                if info is None:
                    continue
                positional = list(info["positional"])
                if bound and positional:
                    positional = positional[1:]
                base = int(call["offset"])
                for index, hint in enumerate(call["args"]):
                    slot = base + index
                    if slot >= len(positional):
                        break
                    yield module_key, call, ref, positional[slot], hint
                for kw_name, hint in sorted(call["kwargs"].items()):
                    if kw_name in info["params"]:
                        yield module_key, call, ref, kw_name, hint

    def _propagate_expected(
        self,
        summaries: Dict[str, Dict[str, object]],
        resolver: Callable[..., Optional[Tuple[FunctionRef, bool]]],
    ) -> bool:
        changed = False
        for module_key, call, ref, param, hint in self._iter_bound_args(
            summaries, resolver
        ):
            if hint[0] != "param" or call["caller"] == "<module>":
                continue
            src = (module_key, call["caller"])
            src_slots = self.expected.get(src, {}).get(hint[1])
            if src_slots is None:
                continue
            seeded = self.seeded.get(src, {}).get(hint[1], set())
            for family, value in self.expected_domains(ref, param).items():
                if family in seeded:
                    continue  # the seed is authoritative; call-site check compares
                current = src_slots.get(family)
                if current is None:
                    src_slots[family] = value
                    changed = True
                elif current not in (value, CONFLICT):
                    src_slots[family] = CONFLICT
                    changed = True
        return changed

    def _propagate_returns(
        self,
        summaries: Dict[str, Dict[str, object]],
        resolver: Callable[..., Optional[Tuple[FunctionRef, bool]]],
    ) -> bool:
        changed = False
        for module_key in sorted(summaries):
            for qualname, info in summaries[module_key]["functions"].items():  # type: ignore[union-attr]
                if qualname == "<module>":
                    continue
                ref = (module_key, qualname)
                hints: List[List[object]] = info["returns"]  # type: ignore[assignment]
                if not hints:
                    continue
                combined: Optional[Dict[str, str]] = None
                for hint in hints:
                    domains = self.hint_domains(module_key, qualname, hint, resolver)
                    if domains is None:
                        combined = {}
                        break
                    if combined is None:
                        combined = dict(domains)
                    else:
                        combined = {
                            family: value
                            for family, value in combined.items()
                            if domains.get(family) == value
                        }
                combined = combined or {}
                if combined != self.ret.get(ref, {}):
                    self.ret[ref] = combined
                    changed = True
        return changed

    def hint_domains(
        self,
        module_key: str,
        caller: str,
        hint: List[object],
        resolver: Callable[..., Optional[Tuple[FunctionRef, bool]]],
    ) -> Optional[Dict[str, str]]:
        """The known domains a value hint carries, or ``None`` for unknown."""
        kind = hint[0]
        if kind == "name":
            return seed_domains(hint[1]) or None  # type: ignore[arg-type]
        if kind == "param":
            return self.expected_domains((module_key, caller), hint[1]) or None  # type: ignore[arg-type]
        if kind == "call":
            resolved = resolver(module_key, caller, hint[1])
            if resolved is None:
                return None
            return self.return_domains(resolved[0]) or None
        return None
