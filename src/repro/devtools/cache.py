"""Per-file lint result cache.

Re-linting an unchanged tree should cost file reads and hash computations,
nothing more.  The cache maps *content* to findings:

* The entry key is ``sha256(module ∥ is_init ∥ rules ∥ source)`` — module
  name and ``__init__`` status are part of the key because rules like
  CW105/CW108 and the repro-only packs change behaviour with them, and the
  active rule selection is part of the key because a ``--select``/``--ignore``
  run must never replay findings cached by a different rule set.
* All entries live under ``.crowdlint-cache/<fingerprint>/`` where the
  fingerprint hashes every devtools source file (engine, flow, every rule
  pack...).  Editing any rule silently invalidates the whole cache — there
  is no version number to forget to bump.
* Entries are JSON and written atomically (tmp + ``os.replace``), so a
  parallel lint racing itself at worst rewrites an identical file.

The cache stores findings keyed by content, not location, so ``get``
rebinds the stored findings to the path being linted.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import List, Optional, Sequence

from .engine import Finding, LintCacheProtocol

__all__ = ["LintCache", "ruleset_fingerprint", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = Path(".crowdlint-cache")

#: Cache-format version, folded into the fingerprint.
_FORMAT = "1"


def ruleset_fingerprint() -> str:
    """Hash of every devtools source file — the identity of the rule set."""
    digest = hashlib.sha256(_FORMAT.encode("utf-8"))
    root = Path(__file__).resolve().parent
    for file_path in sorted(root.rglob("*.py")):
        digest.update(str(file_path.relative_to(root)).encode("utf-8"))
        digest.update(b"\x00")
        try:
            digest.update(file_path.read_bytes())
        except OSError:
            digest.update(b"<unreadable>")
        digest.update(b"\x00")
    return digest.hexdigest()[:20]


class LintCache(LintCacheProtocol):
    """Content-addressed finding cache under ``root/<ruleset fingerprint>/``."""

    def __init__(self, root: Path = DEFAULT_CACHE_DIR, fingerprint: Optional[str] = None):
        self.root = Path(root)
        self.fingerprint = fingerprint or ruleset_fingerprint()
        self.dir = self.root / self.fingerprint
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(
        source: str,
        module: Optional[str],
        is_init: bool,
        rule_ids: Sequence[str] = (),
        extra: str = "",
    ) -> str:
        digest = hashlib.sha256()
        digest.update((module or "").encode("utf-8"))
        digest.update(b"\x00init\x00" if is_init else b"\x00mod\x00")
        digest.update(",".join(sorted(rule_ids)).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(extra.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(source.encode("utf-8"))
        return digest.hexdigest()

    def _entry(
        self,
        source: str,
        path: str,
        module: Optional[str],
        rule_ids: Sequence[str],
        extra: str = "",
    ) -> Path:
        is_init = Path(path).name == "__init__.py"
        key = self.key_for(source, module, is_init, rule_ids, extra)
        return self.dir / key[:2] / f"{key}.json"

    def get(
        self,
        source: str,
        path: str,
        module: Optional[str],
        rule_ids: Sequence[str],
        extra: str = "",
    ) -> Optional[List[Finding]]:
        entry = self._entry(source, path, module, rule_ids, extra)
        try:
            payload = json.loads(entry.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        try:
            findings = [
                Finding.from_cache_dict({**item, "path": path})
                for item in payload["findings"]
            ]
        except (KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return findings

    def put(
        self,
        source: str,
        path: str,
        module: Optional[str],
        rule_ids: Sequence[str],
        findings: List[Finding],
        extra: str = "",
    ) -> None:
        entry = self._entry(source, path, module, rule_ids, extra)
        payload = {"findings": [finding.to_cache_dict() for finding in findings]}
        self._write(entry, payload)

    # ---------------------------------------------------- module summaries

    def summary_key(self, source: str, module: Optional[str], is_init: bool) -> str:
        digest = hashlib.sha256(b"summary\x00")
        digest.update((module or "").encode("utf-8"))
        digest.update(b"\x00init\x00" if is_init else b"\x00mod\x00")
        digest.update(source.encode("utf-8"))
        return digest.hexdigest()

    def _summary_entry(self, source: str, module: Optional[str], is_init: bool) -> Path:
        key = self.summary_key(source, module, is_init)
        return self.dir / "summaries" / key[:2] / f"{key}.json"

    def get_summary(
        self, source: str, module: Optional[str], is_init: bool
    ) -> Optional[dict]:
        """A cached ``domains.extract_summary`` result, or ``None``.

        Summaries depend only on the module's own content, so unchanged files
        never re-parse even when the whole-program stage must re-run.
        """
        entry = self._summary_entry(source, module, is_init)
        try:
            return json.loads(entry.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None

    def put_summary(
        self, source: str, module: Optional[str], is_init: bool, summary: dict
    ) -> None:
        self._write(self._summary_entry(source, module, is_init), summary)

    # ---------------------------------------------------------- plumbing

    def _write(self, entry: Path, payload: dict) -> None:
        try:
            entry.parent.mkdir(parents=True, exist_ok=True)
            tmp = entry.with_suffix(f".tmp{os.getpid()}")
            tmp.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
            os.replace(tmp, entry)
        except OSError:
            pass  # a cache that cannot write is merely slow, never wrong

    def clear(self) -> None:
        """Drop every entry for the current fingerprint."""
        if not self.dir.exists():
            return
        for entry in self.dir.rglob("*.json"):
            try:
                entry.unlink()
            except OSError:
                pass
