"""CW105: ``__all__`` export drift.

Two directions of drift, both real failure modes for a package this size:

* a name listed in ``__all__`` that is not bound at module top level breaks
  ``from package import *`` and lies to readers about the public surface;
* a public function/class defined in the module (or, for ``__init__.py``,
  imported into it) but missing from ``__all__`` silently drops it from the
  star-import surface and from the documented API.

Modules without ``__all__`` are skipped — the rule enforces consistency where
the author opted into an explicit export list, it does not mandate one.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from ..engine import FileContext, Rule, register


def _all_names(tree: ast.Module) -> Optional[Tuple[ast.AST, List[str]]]:
    """The ``__all__`` assignment node and its string entries, if present."""
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        elif isinstance(stmt, ast.AugAssign):
            targets, value = [stmt.target], stmt.value
        if not any(isinstance(t, ast.Name) and t.id == "__all__" for t in targets):
            continue
        if not isinstance(value, (ast.List, ast.Tuple)):
            return None
        names = []
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                names.append(element.value)
            else:
                return None  # dynamic __all__: out of scope
        return stmt, names
    return None


def _top_level_bindings(tree: ast.Module) -> Tuple[Set[str], Set[str], Set[str]]:
    """(defs_and_classes, imported, other_assigned) names bound at top level."""
    defs: Set[str] = set()
    imported: Set[str] = set()
    assigned: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defs.add(stmt.name)
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                if alias.name != "*":
                    imported.add(alias.asname or alias.name)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                imported.add(alias.asname or alias.name.split(".", 1)[0])
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        assigned.add(name_node.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            assigned.add(stmt.target.id)
        elif isinstance(stmt, (ast.If, ast.Try)):
            # names bound conditionally (TYPE_CHECKING guards, optional deps)
            # still count as bound for the "unknown name" direction
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    defs.add(sub.name)
                elif isinstance(sub, ast.ImportFrom):
                    for alias in sub.names:
                        if alias.name != "*":
                            imported.add(alias.asname or alias.name)
                elif isinstance(sub, ast.Import):
                    for alias in sub.names:
                        imported.add(alias.asname or alias.name.split(".", 1)[0])
    return defs, imported, assigned


@register
class ExportDriftRule(Rule):
    id = "CW105"
    name = "export-drift"
    description = (
        "__all__ disagrees with the names actually defined (unknown entries, "
        "or public definitions missing from the export list)."
    )

    def check_module(self, ctx: FileContext) -> None:
        found = _all_names(ctx.tree)
        if found is None:
            return
        all_node, exported = found
        defs, imported, assigned = _top_level_bindings(ctx.tree)
        bound = defs | imported | assigned

        for name in exported:
            if name not in bound:
                ctx.report(
                    self,
                    all_node,
                    f"__all__ lists {name!r} but the module never binds it",
                )

        # Missing-from-__all__: definitions in a regular module; imported
        # names too when the module is a package __init__ (its whole point
        # is re-export).  Underscore names are private by convention.
        candidates = set(defs)
        if ctx.is_init:
            candidates |= imported
        for name in sorted(candidates):
            if name.startswith("_") or name in exported:
                continue
            ctx.report(
                self,
                all_node,
                f"public name {name!r} is defined but missing from __all__",
            )
