"""CW102: unit-suffix consistency.

The codebase encodes units in identifier suffixes (``dist_m``, ``bearing_deg``,
``dwell_s``); conversions go through named helpers (``haversine_m``,
``destination_point``, ``math.radians``).  Adding or comparing a ``_m`` value
to a ``_deg`` value is therefore almost always a bug — degrees of longitude
are not meters, and the error scales with latitude, which is exactly the kind
of silent corruption a crowd-aggregation pipeline cannot detect downstream.

Flagged shapes (only when *both* sides carry a known, different unit):

* ``a_m + b_deg`` / ``a_m - b_deg`` — additive mixing;
* ``a_m < b_s`` (any comparison operator) — cross-unit comparison;
* ``x_m = y_deg`` — plain renaming assignment that silently relabels a unit;
* ``f(radius_m=angle_deg)`` — keyword argument whose name disagrees with the
  value's unit.

Multiplication and division are deliberately exempt: ratios and scale factors
legitimately cross units.
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Rule, register
from .common import identifier_of, unit_of


@register
class UnitSuffixRule(Rule):
    id = "CW102"
    name = "unit-suffix-mismatch"
    description = (
        "Values whose name-suffix units differ (_m/_deg/_s/...) are added, "
        "compared, assigned, or passed across without a conversion helper."
    )

    def visit_BinOp(self, ctx: FileContext, node: ast.BinOp) -> None:
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            return
        left = unit_of(identifier_of(node.left))
        right = unit_of(identifier_of(node.right))
        if left and right and left != right:
            ctx.report(
                self,
                node,
                f"mixing units: {ast.unparse(node.left)!r} is in {left} but "
                f"{ast.unparse(node.right)!r} is in {right}; convert explicitly",
            )

    def visit_Compare(self, ctx: FileContext, node: ast.Compare) -> None:
        left_unit = unit_of(identifier_of(node.left))
        if not left_unit:
            return
        for comparator in node.comparators:
            right_unit = unit_of(identifier_of(comparator))
            if right_unit and right_unit != left_unit:
                ctx.report(
                    self,
                    node,
                    f"comparing {left_unit} ({ast.unparse(node.left)!r}) against "
                    f"{right_unit} ({ast.unparse(comparator)!r})",
                )

    def visit_Assign(self, ctx: FileContext, node: ast.Assign) -> None:
        value_unit = unit_of(identifier_of(node.value))
        if not value_unit:
            return
        for target in node.targets:
            target_unit = unit_of(identifier_of(target))
            if target_unit and target_unit != value_unit:
                ctx.report(
                    self,
                    node,
                    f"assigning a {value_unit} value "
                    f"({ast.unparse(node.value)!r}) to a {target_unit} name "
                    f"({ast.unparse(target)!r}) without conversion",
                )

    def visit_Call(self, ctx: FileContext, node: ast.Call) -> None:
        for keyword in node.keywords:
            param_unit = unit_of(keyword.arg)
            value_unit = unit_of(identifier_of(keyword.value))
            if param_unit and value_unit and param_unit != value_unit:
                ctx.report(
                    self,
                    keyword.value,
                    f"keyword {keyword.arg!r} expects {param_unit} but "
                    f"{ast.unparse(keyword.value)!r} is in {value_unit}",
                )
