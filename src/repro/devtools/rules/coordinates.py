"""CW101: coordinate-argument-order checks at geo call sites.

A swapped ``(lon, lat)`` passed to a ``(lat, lon)`` signature produces
plausible-looking but wrong results (the point lands on the wrong continent,
or — worse for city-scale data — a few hundred kilometers off, which survives
bounding-box filters).  This rule knows the argument order of the ``repro.geo``
public surface and flags call sites whose argument *names* contradict the
parameter's axis.
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Rule, register
from .common import axis_of, callee_name

#: Function name → per-positional-argument axis (``None`` = unconstrained).
GEO_SIGNATURES = {
    "haversine_m": ("lat", "lon", "lat", "lon"),
    "equirectangular_m": ("lat", "lon", "lat", "lon"),
    "initial_bearing_deg": ("lat", "lon", "lat", "lon"),
    "destination_point": ("lat", "lon", None, None),
    "validate_lat_lon": ("lat", "lon"),
    "GeoPoint": ("lat", "lon"),
}


@register
class CoordinateOrderRule(Rule):
    id = "CW101"
    name = "lat-lon-order"
    description = (
        "Argument whose name says it is a longitude passed in a latitude "
        "position of a known geo signature (or vice versa)."
    )

    def visit_Call(self, ctx: FileContext, node: ast.Call) -> None:
        name = callee_name(node)
        signature = GEO_SIGNATURES.get(name or "")
        if signature is None:
            return
        for position, arg in enumerate(node.args):
            if position >= len(signature):
                break
            expected = signature[position]
            actual = axis_of(_arg_identifier(arg))
            if expected and actual and actual != expected:
                ctx.report(
                    self,
                    arg,
                    f"{name}() expects a {expected} in position {position + 1} "
                    f"but the argument looks like a {actual} "
                    f"({ast.unparse(arg)!r}); check the (lat, lon) order",
                )
        for keyword in node.keywords:
            expected = axis_of(keyword.arg)
            actual = axis_of(_arg_identifier(keyword.value))
            if expected and actual and actual != expected:
                ctx.report(
                    self,
                    keyword.value,
                    f"{name}() keyword {keyword.arg!r} expects a {expected} but "
                    f"the argument looks like a {actual} "
                    f"({ast.unparse(keyword.value)!r})",
                )


def _arg_identifier(node: ast.AST):
    """Identifier carrying the axis hint: a name, attribute, or unary thereof."""
    if isinstance(node, ast.UnaryOp):
        node = node.operand
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None
