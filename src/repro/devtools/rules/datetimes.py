"""CW103: timezone-naive datetime construction.

Mobility records span timezones and DST transitions; a naive ``datetime``
compares and subtracts incorrectly against the aware UTC timestamps the data
layer produces, and ``utcnow()``/``utcfromtimestamp()`` return *naive* values
despite their names (and are deprecated since Python 3.12).  The fix is always
``datetime.now(timezone.utc)`` / ``datetime.fromtimestamp(ts, tz=timezone.utc)``.
"""

from __future__ import annotations

import ast
from typing import Optional

from ..engine import Edit, FileContext, Fix, Rule, register
from .common import identifier_of

#: method name → minimum positional args for the call to be tz-aware, or
#: ``None`` when the method is naive no matter what you pass it.
_ALWAYS_NAIVE = {"utcnow", "utcfromtimestamp"}
_TZ_ARG_POSITION = {"now": 0, "fromtimestamp": 1}
_TZ_KEYWORDS = {"tz", "tzinfo"}


@register
class NaiveDatetimeRule(Rule):
    id = "CW103"
    name = "naive-datetime"
    description = (
        "datetime.now()/fromtimestamp() without a tz argument, or the "
        "always-naive utcnow()/utcfromtimestamp()."
    )
    fixable = True

    def visit_Call(self, ctx: FileContext, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        owner = identifier_of(func.value)
        if owner != "datetime":
            return
        method = func.attr
        if method in _ALWAYS_NAIVE:
            ctx.report(
                self,
                node,
                f"datetime.{method}() returns a *naive* datetime; use "
                "datetime.now(timezone.utc) / "
                "datetime.fromtimestamp(ts, tz=timezone.utc)",
                fix=self._utc_fix(ctx, node, method),
            )
            return
        tz_position = _TZ_ARG_POSITION.get(method)
        if tz_position is None:
            return
        has_tz = len(node.args) > tz_position or any(
            keyword.arg in _TZ_KEYWORDS for keyword in node.keywords
        )
        if not has_tz:
            ctx.report(
                self,
                node,
                f"datetime.{method}() without a timezone is naive; pass "
                "timezone.utc (or an explicit tzinfo)",
                fix=self._utc_fix(ctx, node, method),
            )

    @staticmethod
    def _utc_fix(ctx: FileContext, node: ast.Call, method: str) -> Optional[Fix]:
        """Rewrite to the tz-aware equivalent — only when ``timezone`` is in
        scope at module level, so the fixed file still imports cleanly."""
        if "timezone" not in ctx.flow.module_defs:
            return None
        text = ctx.text(node)
        if not text.endswith(")"):
            return None
        _, end = ctx.span(node)
        _, func_end = ctx.span(node.func)
        edits = []
        if method == "utcnow":
            if node.args or node.keywords:
                return None
            edits.append(Edit(func_end - len("utcnow"), func_end, "now"))
            edits.append(Edit(end - 1, end - 1, "timezone.utc"))
        elif method == "utcfromtimestamp":
            if len(node.args) != 1 or node.keywords:
                return None
            edits.append(
                Edit(func_end - len("utcfromtimestamp"), func_end, "fromtimestamp")
            )
            edits.append(Edit(end - 1, end - 1, ", tz=timezone.utc"))
        elif method == "now":
            if node.args or node.keywords:
                return None
            edits.append(Edit(end - 1, end - 1, "timezone.utc"))
        elif method == "fromtimestamp":
            if len(node.args) != 1 or node.keywords:
                return None
            edits.append(Edit(end - 1, end - 1, ", tz=timezone.utc"))
        else:
            return None
        return Fix(edits=tuple(edits), note="make the datetime timezone-aware (UTC)")
