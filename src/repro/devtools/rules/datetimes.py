"""CW103: timezone-naive datetime construction.

Mobility records span timezones and DST transitions; a naive ``datetime``
compares and subtracts incorrectly against the aware UTC timestamps the data
layer produces, and ``utcnow()``/``utcfromtimestamp()`` return *naive* values
despite their names (and are deprecated since Python 3.12).  The fix is always
``datetime.now(timezone.utc)`` / ``datetime.fromtimestamp(ts, tz=timezone.utc)``.
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Rule, register
from .common import identifier_of

#: method name → minimum positional args for the call to be tz-aware, or
#: ``None`` when the method is naive no matter what you pass it.
_ALWAYS_NAIVE = {"utcnow", "utcfromtimestamp"}
_TZ_ARG_POSITION = {"now": 0, "fromtimestamp": 1}
_TZ_KEYWORDS = {"tz", "tzinfo"}


@register
class NaiveDatetimeRule(Rule):
    id = "CW103"
    name = "naive-datetime"
    description = (
        "datetime.now()/fromtimestamp() without a tz argument, or the "
        "always-naive utcnow()/utcfromtimestamp()."
    )

    def visit_Call(self, ctx: FileContext, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        owner = identifier_of(func.value)
        if owner != "datetime":
            return
        method = func.attr
        if method in _ALWAYS_NAIVE:
            ctx.report(
                self,
                node,
                f"datetime.{method}() returns a *naive* datetime; use "
                "datetime.now(timezone.utc) / "
                "datetime.fromtimestamp(ts, tz=timezone.utc)",
            )
            return
        tz_position = _TZ_ARG_POSITION.get(method)
        if tz_position is None:
            return
        has_tz = len(node.args) > tz_position or any(
            keyword.arg in _TZ_KEYWORDS for keyword in node.keywords
        )
        if not has_tz:
            ctx.report(
                self,
                node,
                f"datetime.{method}() without a timezone is naive; pass "
                "timezone.utc (or an explicit tzinfo)",
            )
