"""CW7xx — the thread-safety pack (whole-program race detection).

The serving layer runs a ``ThreadingHTTPServer``: one thread per request,
all of them sharing this process's module globals and long-lived objects.
These rules consume :class:`~repro.devtools.threads.ThreadAnalysis` — thread
roots, concurrency domains, and inferred locksets over the project call
graph — and report:

* **CW701** — a write to shared state (mutated, and reachable from a thread
  domain) with no lock held and no guarded-by lock inferable at all.
* **CW702** — a write to shared state that *is* majority-guarded by one
  lock, at a site where that lock is not held: guarded on some paths, bare
  on others.
* **CW703** — check-then-act on a shared container (``if k in d: … d[k]``)
  outside any lock: the membership test and the access are not atomic.
  The exact ``if k not in d: d[k] = v`` shape carries a mechanical
  ``d.setdefault(k, v)`` autofix; anything else suggests widening a lock.
* **CW704** — two locks acquired in opposite orders on different call
  paths: the classic ABBA deadlock shape.
* **CW705** — a blocking call (sleep, subprocess, sockets, file IO) while
  holding a lock on a thread-reachable path: every peer queueing on that
  lock stalls behind the IO.

Findings anchor on **writes** (plus the CW703 check site); bare reads of a
published reference are idiomatic under the GIL and stay silent.  Anything
the analysis cannot resolve — an unknown call target, an opaque lock
expression, an attribute on a non-``self`` root — produces no finding:
zero false positives is the design budget, enforced by the clean-twin
fixtures in the tests.

Severity is ``error`` in the layers that actually run concurrent code
(``web``, ``obs``, ``exec``) and ``warning`` elsewhere.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from ..engine import Edit, FileContext, Fix, Rule, register
from ..layers import layer_of

#: Layers whose code runs on the serving path — findings there are errors.
_CONCURRENT_LAYERS = frozenset({"web", "obs", "exec"})


def _anchor(line: int, col: int) -> ast.AST:
    """A location-only node so pragma suppression works on record findings."""
    node = ast.Pass()
    node.lineno = line
    node.col_offset = col
    return node


def _severity(ctx: FileContext) -> str:
    layer = layer_of(ctx.module) if ctx.module else None
    return "error" if layer in _CONCURRENT_LAYERS else "warning"


def _records_for(ctx: FileContext, rule_id: str) -> List[Dict[str, object]]:
    if ctx.project is None:
        return []
    return [
        record
        for record in ctx.project.thread_records(ctx.module_key)
        if record["rule"] == rule_id
    ]


@register
class UnguardedSharedWriteRule(Rule):
    id = "CW701"
    name = "unguarded-shared-write"
    description = (
        "A write to state shared with a thread domain (handler threads, "
        "worker threads) happens with no lock held, and no guarded-by lock "
        "could be inferred for the symbol at all."
    )
    requires_project = True

    def check_module(self, ctx: FileContext) -> None:
        for record in _records_for(ctx, self.id):
            domains = ", ".join(record["domains"])  # type: ignore[arg-type]
            ctx.report(
                self,
                _anchor(record["line"], record["col"]),
                f"unguarded write to {record['symbol']} in "
                f"{record['function']}() — the symbol is reached from "
                f"concurrency domains [{domains}] and no write ever holds a "
                "lock; guard every access with one lock",
                severity=_severity(ctx),
            )


@register
class InconsistentlyGuardedWriteRule(Rule):
    id = "CW702"
    name = "inconsistently-guarded-write"
    description = (
        "A write to shared state whose other writes are majority-guarded by "
        "one inferred lock happens at a site where that lock is not held — "
        "guarded on some paths, bare on this one."
    )
    requires_project = True

    def check_module(self, ctx: FileContext) -> None:
        for record in _records_for(ctx, self.id):
            ctx.report(
                self,
                _anchor(record["line"], record["col"]),
                f"write to {record['symbol']} in {record['function']}() "
                f"without {record['guard']}, the lock inferred to guard it "
                "from its other writes — take the same lock here",
                severity=_severity(ctx),
            )


@register
class CheckThenActRule(Rule):
    id = "CW703"
    name = "shared-check-then-act"
    description = (
        "A membership test on a shared container followed by a keyed access "
        "inside the branch, outside any lock: another thread can change the "
        "container between the check and the act.  The `if k not in d: "
        "d[k] = v` shape autofixes to `d.setdefault(k, v)`."
    )
    requires_project = True
    fixable = True

    def check_module(self, ctx: FileContext) -> None:
        for record in _records_for(ctx, self.id):
            fix = self._build_fix(ctx, record.get("fix"))
            hint = (
                "apply the setdefault rewrite"
                if fix is not None
                else "widen the guarding lock over the whole check-then-act"
            )
            ctx.report(
                self,
                _anchor(record["line"], record["col"]),
                f"check-then-act on shared container {record['symbol']} in "
                f"{record['function']}() is not atomic without a lock — "
                f"{hint}",
                fix=fix,
                severity=_severity(ctx),
            )

    @staticmethod
    def _build_fix(ctx: FileContext, raw: Optional[Dict[str, object]]) -> Optional[Fix]:
        if not raw:
            return None
        try:
            start = ctx.offset(int(raw["l1"]), int(raw["c1"]))
            end = ctx.offset(int(raw["l2"]), int(raw["c2"]))
        except (KeyError, IndexError, TypeError, ValueError):
            return None
        replacement = str(raw["text"])
        if ctx.source[start:end] == replacement:
            return None
        return Fix(
            edits=(Edit(start, end, replacement),),
            note="rewrite check-then-act as an atomic dict.setdefault",
        )


@register
class LockOrderRule(Rule):
    id = "CW704"
    name = "inconsistent-lock-order"
    description = (
        "Two locks are acquired in opposite orders on different call paths "
        "(A then B here, B then A elsewhere): two threads interleaving the "
        "two orders deadlock."
    )
    requires_project = True

    def check_module(self, ctx: FileContext) -> None:
        for record in _records_for(ctx, self.id):
            ctx.report(
                self,
                _anchor(record["line"], record["col"]),
                f"{record['symbol']} is acquired while holding "
                f"{record['outer']} in {record['function']}(), but "
                f"{record['opposite']} acquires them in the opposite order — "
                "pick one global order",
                severity=_severity(ctx),
            )


@register
class BlockingUnderLockRule(Rule):
    id = "CW705"
    name = "blocking-call-under-lock"
    description = (
        "A blocking call (sleep, subprocess, socket, file IO) runs while a "
        "lock is held on a path reachable from a thread domain: every peer "
        "contending on the lock stalls behind the IO."
    )
    requires_project = True

    def check_module(self, ctx: FileContext) -> None:
        for record in _records_for(ctx, self.id):
            domains = ", ".join(record["domains"])  # type: ignore[arg-type]
            ctx.report(
                self,
                _anchor(record["line"], record["col"]),
                f"{record['what']}() blocks while holding {record['lock']} "
                f"in {record['function']}() on a [{domains}] path — move the "
                "blocking call outside the lock",
                severity=_severity(ctx),
            )
