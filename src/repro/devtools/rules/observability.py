"""CW4xx — the observability-conformance pack.

``repro.obs`` (PR 3) promises two things: metric names follow the
``repro_<layer>_<name>_<unit>`` grammar so dashboards can be written once,
and instrumentation is zero-cost and output-neutral when disabled because
every call goes through the :class:`Observer`'s single ``enabled`` check.
Both promises were conventions; these rules make them mechanical:

* **CW401** — metric-name grammar: a literal metric name must be
  ``repro_<layer>_<name>_<unit>`` with a known unit segment.  Unit synonyms
  (``_seconds``, ``_count``, ...) get an autofix to the canonical spelling.
* **CW402** — the ``<layer>`` segment must be a layer declared in
  ``devtools/layers.py``, and must match the layer of the emitting file
  (``repro.web.server`` emits ``repro_web_*``, nothing else).
* **CW403** — a span that is created but never entered (``observer.span(...)``
  as a bare statement, or assigned and never used in a ``with``): the
  enter/exit pair never runs, so the trace silently loses the region.
* **CW404** — instrumentation that reaches around the Observer
  (``observer.registry.inc(...)``, ``observer.tracer.span(...)``): it
  bypasses the ``enabled`` guard, which is exactly the zero-cost-when-
  disabled contract.

Like CW108 these rules police the library, not its consumers: files outside
the ``repro`` package (tests, scripts) are exempt, and the ``obs`` layer
itself is exempt from CW404 (it *implements* the guard).
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional, Tuple

from ..engine import Edit, FileContext, Fix, Rule, register
from ..layers import LAYER_MAP, layer_of

#: Registry/observer mutators that take a metric name as their first argument.
_METRIC_CALLS = frozenset({
    "counter", "gauge", "histogram", "inc", "labels_of", "observe", "set_gauge",
})

#: Canonical unit segments (the grammar's trailing ``<unit>``).
CANONICAL_UNITS = frozenset({
    "bytes", "depth", "ms", "ns", "ratio", "s", "size", "total", "us",
})

#: Unit-synonym normalization used by the CW401 autofix.
UNIT_SYNONYMS = {
    "count": "total", "counts": "total", "num": "total",
    "microseconds": "us", "millis": "ms", "milliseconds": "ms", "msec": "ms",
    "nanoseconds": "ns", "pct": "ratio", "percent": "ratio",
    "percentage": "ratio", "sec": "s", "seconds": "s", "secs": "s",
}

_SEGMENT_RE = re.compile(r"^[a-z][a-z0-9]*$")


def _metric_name_argument(node: ast.Call) -> Optional[ast.Constant]:
    """The literal metric-name argument of an instrumentation call, if any."""
    if not isinstance(node.func, ast.Attribute) or node.func.attr not in _METRIC_CALLS:
        return None
    candidate: Optional[ast.expr] = node.args[0] if node.args else None
    if candidate is None:
        for keyword in node.keywords:
            if keyword.arg == "name":
                candidate = keyword.value
                break
    if isinstance(candidate, ast.Constant) and isinstance(candidate.value, str):
        return candidate
    return None


def _in_repro_library(ctx: FileContext) -> bool:
    return bool(ctx.module) and ctx.module.split(".")[0] == "repro"


def _normalize_name(name: str) -> str:
    """Best-effort canonicalization of a metric name (the CW401 autofix)."""
    normalized = name.lower().replace("-", "_").replace(".", "_")
    parts = [part for part in normalized.split("_") if part]
    if parts and parts[0] != "repro" and parts[0] in LAYER_MAP:
        parts.insert(0, "repro")
    if parts:
        parts[-1] = UNIT_SYNONYMS.get(parts[-1], parts[-1])
    return "_".join(parts)


def _literal_replacement_fix(
    ctx: FileContext, literal: ast.Constant, new_value: str, note: str
) -> Fix:
    start, end = ctx.span(literal)
    original = ctx.text(literal)
    quote = original[0] if original and original[0] in "'\"" else '"'
    return Fix(edits=(Edit(start, end, f"{quote}{new_value}{quote}"),), note=note)


def _split_metric(name: str) -> Optional[Tuple[str, List[str], str]]:
    """``repro_<layer>_<name...>_<unit>`` → (layer, name parts, unit)."""
    parts = name.split("_")
    if len(parts) < 4 or parts[0] != "repro":
        return None
    return parts[1], parts[2:-1], parts[-1]


@register
class MetricNameGrammarRule(Rule):
    id = "CW401"
    name = "metric-name-grammar"
    description = (
        "A literal metric name does not follow repro_<layer>_<name>_<unit> "
        "with a canonical unit segment."
    )
    fixable = True

    def visit_Call(self, ctx: FileContext, node: ast.Call) -> None:
        if not _in_repro_library(ctx):
            return
        literal = _metric_name_argument(node)
        if literal is None:
            return
        name = literal.value
        problem = self._grammar_problem(name)
        if problem is None:
            return
        normalized = _normalize_name(name)
        fix = None
        if normalized != name and self._grammar_problem(normalized) is None:
            fix = _literal_replacement_fix(
                ctx, literal, normalized, "normalize the metric name"
            )
        ctx.report(
            self,
            node,
            f"metric name {name!r} {problem}; the convention is "
            "repro_<layer>_<name>_<unit> (units: "
            f"{', '.join(sorted(CANONICAL_UNITS))})",
            fix=fix,
        )

    @staticmethod
    def _grammar_problem(name: str) -> Optional[str]:
        split = _split_metric(name)
        if split is None:
            return (
                "lacks the repro_<layer>_<name>_<unit> shape "
                "(needs at least four _-separated segments starting with 'repro')"
            )
        layer, middle, unit = split
        segments = [layer, *middle, unit]
        if any(not _SEGMENT_RE.match(segment) for segment in segments):
            return "has non-lowercase or empty segments"
        if unit not in CANONICAL_UNITS:
            return f"ends in unknown unit {unit!r}"
        return None


@register
class MetricLayerMismatchRule(Rule):
    id = "CW402"
    name = "metric-layer-mismatch"
    description = (
        "The <layer> segment of a metric name is not a declared layer, or "
        "does not match the layer of the emitting file."
    )
    fixable = True

    def visit_Call(self, ctx: FileContext, node: ast.Call) -> None:
        if not _in_repro_library(ctx):
            return
        literal = _metric_name_argument(node)
        if literal is None:
            return
        split = _split_metric(literal.value)
        if split is None:
            return  # CW401's finding; don't double-report
        name_layer, middle, unit = split
        file_layer = layer_of(ctx.module)
        if name_layer not in LAYER_MAP:
            fix = None
            if file_layer in LAYER_MAP:
                fixed = "_".join(["repro", file_layer, *middle, unit])
                fix = _literal_replacement_fix(
                    ctx, literal, fixed, "use the emitting file's layer"
                )
            ctx.report(
                self,
                node,
                f"metric layer segment {name_layer!r} is not a layer declared "
                "in repro/devtools/layers.py",
                fix=fix,
            )
        elif file_layer in LAYER_MAP and name_layer != file_layer:
            fixed = "_".join(["repro", file_layer, *middle, unit])
            ctx.report(
                self,
                node,
                f"metric named for layer {name_layer!r} but emitted from layer "
                f"{file_layer!r}; metrics carry their emitter's layer",
                fix=_literal_replacement_fix(
                    ctx, literal, fixed, "use the emitting file's layer"
                ),
            )


@register
class UnbalancedSpanRule(Rule):
    id = "CW403"
    name = "unbalanced-span"
    description = (
        "A span is created but never entered (bare statement, or assigned "
        "and never used in a with) — enter/exit never runs."
    )

    def visit_Call(self, ctx: FileContext, node: ast.Call) -> None:
        if not _in_repro_library(ctx):
            return
        func = node.func
        is_span = (isinstance(func, ast.Attribute) and func.attr == "span") or (
            isinstance(func, ast.Name) and func.id == "span"
        )
        if not is_span:
            return
        parent = ctx.flow.parents.get(node)
        if isinstance(parent, ast.Expr):
            ctx.report(
                self,
                node,
                "span created and immediately discarded — its enter/exit "
                "never runs; use `with ...span(...):`",
            )
            return
        if isinstance(parent, ast.Assign):
            if len(parent.targets) == 1 and isinstance(parent.targets[0], ast.Name):
                if not self._ever_entered(ctx, parent, parent.targets[0].id):
                    ctx.report(
                        self,
                        node,
                        f"span assigned to {parent.targets[0].id!r} but never "
                        "entered in a `with` block",
                    )

    @staticmethod
    def _ever_entered(ctx: FileContext, assign: ast.stmt, name: str) -> bool:
        """Whether any use of the assigned span enters it."""
        region = ctx.flow.enclosing_function(assign) or ctx.tree
        for node in ast.walk(region):
            if not (isinstance(node, ast.Name) and node.id == name
                    and isinstance(node.ctx, ast.Load)):
                continue
            parent = ctx.flow.parents.get(node)
            if isinstance(parent, ast.withitem):
                return True
            if (
                isinstance(parent, ast.Attribute)
                and parent.attr in {"__enter__", "__exit__"}
            ):
                return True
            if isinstance(parent, ast.Call) or isinstance(parent, ast.keyword):
                return True  # handed onward; assume the callee enters it
            if isinstance(parent, ast.Return):
                return True  # factory pattern: the caller enters it
        return False


@register
class UnguardedInstrumentationRule(Rule):
    id = "CW404"
    name = "unguarded-instrumentation"
    description = (
        "Instrumentation reaches around the Observer (observer.registry.inc, "
        "observer.tracer.span), bypassing the enabled guard."
    )

    _BYPASSED = frozenset({"inc", "observe", "reset", "set_gauge", "span"})

    def visit_Call(self, ctx: FileContext, node: ast.Call) -> None:
        if not _in_repro_library(ctx):
            return
        if layer_of(ctx.module) in {"obs", "devtools"}:
            return  # the obs layer implements the guard it would trip here
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in self._BYPASSED
            and isinstance(func.value, ast.Attribute)
            and func.value.attr in {"registry", "tracer"}
        ):
            return
        owner = func.value.attr
        ctx.report(
            self,
            node,
            f".{owner}.{func.attr}(...) bypasses the Observer's enabled "
            f"guard; call .{func.attr}(...) on the observer itself so the "
            "disabled path stays zero-cost",
        )
