"""Shared AST helpers for the crowdlint rules (identifier/unit parsing)."""

from __future__ import annotations

import ast
from typing import Optional

__all__ = ["identifier_of", "callee_name", "axis_of", "unit_of"]


def identifier_of(node: ast.AST) -> Optional[str]:
    """The trailing identifier of a name-like expression.

    ``lat`` → ``"lat"``; ``point.lon`` → ``"lon"``; anything else → ``None``.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def callee_name(node: ast.Call) -> Optional[str]:
    """The simple name a call dispatches to (``f(...)`` or ``mod.f(...)``)."""
    return identifier_of(node.func)


_LAT_WORDS = {"lat", "lats", "latitude", "latitudes", "phi"}
_LON_WORDS = {"lon", "lons", "lng", "longitude", "longitudes", "lam", "lambda"}


def axis_of(name: Optional[str]) -> Optional[str]:
    """Classify an identifier as a ``"lat"`` or ``"lon"`` coordinate, if clear.

    Splits on underscores and strips trailing digits so ``lat1``, ``min_lon``
    and ``start_latitude`` all classify.  Returns ``None`` when the identifier
    mentions neither axis or (defensively) both.
    """
    if not name:
        return None
    hits = set()
    for part in name.lower().split("_"):
        part = part.rstrip("0123456789")
        if part in _LAT_WORDS:
            hits.add("lat")
        elif part in _LON_WORDS:
            hits.add("lon")
    if len(hits) == 1:
        return hits.pop()  # crowdlint: disable=CW204 -- single-element set, pop is deterministic
    return None


#: Variable-name suffix → canonical unit.  Deliberately small: only suffixes
#: the codebase actually uses as unit markers, to keep false positives near
#: zero (``_s`` is seconds throughout, ``_m`` meters, ``_deg`` degrees).
_UNIT_SUFFIXES = {
    "m": "meters",
    "meters": "meters",
    "km": "kilometers",
    "deg": "degrees",
    "degrees": "degrees",
    "rad": "radians",
    "s": "seconds",
    "sec": "seconds",
    "seconds": "seconds",
    "ms": "milliseconds",
}


def unit_of(name: Optional[str]) -> Optional[str]:
    """The unit encoded in an identifier's suffix, or ``None``.

    ``dist_m`` → meters, ``EARTH_RADIUS_M`` → meters, ``bearing_deg`` →
    degrees, ``dt_s`` → seconds.  A bare suffix-less name has no unit.
    """
    if not name or "_" not in name:
        return None
    last = name.lower().rsplit("_", 1)[1].rstrip("0123456789")
    return _UNIT_SUFFIXES.get(last)
