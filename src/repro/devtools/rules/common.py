"""Shared AST helpers for the crowdlint rules (identifier/unit parsing).

The identifier-classification tables (axis words, unit suffixes, id-domain
owners) live in :mod:`repro.devtools.domains` — the interprocedural layer
and the per-file rules must agree on what a name means, so there is exactly
one copy.  This module re-exports the classifiers alongside the small AST
conveniences the rule packs share.
"""

from __future__ import annotations

import ast
from typing import Optional

from ..domains import axis_of, unit_of  # noqa: F401  (re-exported)

__all__ = ["identifier_of", "callee_name", "axis_of", "unit_of"]


def identifier_of(node: ast.AST) -> Optional[str]:
    """The trailing identifier of a name-like expression.

    ``lat`` → ``"lat"``; ``point.lon`` → ``"lon"``; anything else → ``None``.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def callee_name(node: ast.Call) -> Optional[str]:
    """The simple name a call dispatches to (``f(...)`` or ``mod.f(...)``)."""
    return identifier_of(node.func)
