"""CW6xx — the id-domain / units pack (whole-program).

The interning refactor on the ROADMAP turns user ids, microcell ids, and
time-bin×place item ids into indistinguishable dense ints; degrees, meters,
and seconds were always indistinguishable floats.  The type system cannot
tell them apart, so these rules do, using the interprocedural domain
analysis (``devtools/domains``) over the project call graph
(``devtools/callgraph``):

* **CW601** — a value with a *known* id domain passed to a parameter whose
  resolved callee expects a *different* id domain (``user_id`` into a
  ``microcell_id`` slot), through any number of pass-through intermediaries.
* **CW602** — a known latitude/longitude passed to the opposite axis's
  parameter: the cross-call lat/lon swap the per-file CW101 cannot see.
* **CW603** — a known unit fed to a parameter expecting another unit
  (degrees into ``_m``), and naive datetimes fed to ``*_utc`` parameters.
* **CW604** — an ``__all__`` export no other module references or imports:
  dead public surface (``__init__.py`` re-export hubs are exempt).
* **CW605** — one container subscripted with keys from two different id
  domains in the same function (``counts[user_id]`` and
  ``counts[microcell_id]``): either a bug or two maps fused into one.

CW601–CW603 report only a *known* actual against a *known, different*
expected; anything the propagation could not pin — including genuine
conflicts, which poison their slot — stays silent.  Zero false positives is
the design budget, enforced by the clean-twin fixtures in the tests.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Tuple

from ..domains import domain_label, id_domain_of
from ..engine import FileContext, Rule, register
from .common import identifier_of

#: Families each cross-call rule owns (one finding shape per family).
_FAMILY_RULES = {"id": "CW601", "axis": "CW602", "unit": "CW603", "dt": "CW603"}


def _anchor(line: int, col: int) -> ast.AST:
    """A location-only node so pragma suppression works on record findings."""
    node = ast.Pass()
    node.lineno = line
    node.col_offset = col
    return node


def _conflicts_for(ctx: FileContext, family_ids: Tuple[str, ...]) -> List[Dict[str, object]]:
    if ctx.project is None:
        return []
    return [
        record
        for record in ctx.project.call_conflicts(ctx.module_key)
        if _FAMILY_RULES[record["family"]] in family_ids
    ]


@register
class CrossCallIdDomainRule(Rule):
    id = "CW601"
    name = "cross-call-id-domain"
    description = (
        "A value with a known id domain (user/microcell/item) is passed to "
        "a parameter that interprocedural analysis expects to be a "
        "different id domain."
    )
    requires_project = True

    def check_module(self, ctx: FileContext) -> None:
        for record in _conflicts_for(ctx, ("CW601",)):
            ctx.report(
                self,
                _anchor(record["line"], record["col"]),
                f"{record['arg']!r} is a {domain_label(record['actual'])} but "
                f"parameter {record['param']!r} of {record['callee']}() "
                f"expects a {domain_label(record['expected'])}",
                severity="error",
            )


@register
class CrossCallLatLonSwapRule(Rule):
    id = "CW602"
    name = "cross-call-latlon-swap"
    description = (
        "A known latitude/longitude value is passed to the opposite axis's "
        "parameter of a resolved callee — the cross-module lat/lon swap."
    )
    requires_project = True

    def check_module(self, ctx: FileContext) -> None:
        for record in _conflicts_for(ctx, ("CW602",)):
            ctx.report(
                self,
                _anchor(record["line"], record["col"]),
                f"{record['arg']!r} is a {domain_label(record['actual'])} but "
                f"parameter {record['param']!r} of {record['callee']}() is a "
                f"{domain_label(record['expected'])} — lat/lon swapped at "
                "this call?",
                severity="error",
            )


@register
class CrossCallUnitMismatchRule(Rule):
    id = "CW603"
    name = "cross-call-unit-mismatch"
    description = (
        "A value with a known unit (or datetime awareness) is passed to a "
        "parameter expecting a different one — degrees into meters, naive "
        "datetimes into *_utc slots."
    )
    requires_project = True

    def check_module(self, ctx: FileContext) -> None:
        for record in _conflicts_for(ctx, ("CW603",)):
            what = "carries" if record["family"] == "unit" else "is"
            ctx.report(
                self,
                _anchor(record["line"], record["col"]),
                f"{record['arg']!r} {what} {domain_label(record['actual'])} "
                f"but parameter {record['param']!r} of {record['callee']}() "
                f"expects {domain_label(record['expected'])}",
                severity="error",
            )


@register
class DeadExportRule(Rule):
    id = "CW604"
    name = "dead-export"
    description = (
        "An __all__ entry no other module references, imports, or calls: "
        "dead public surface the call graph proves unreachable from outside."
    )
    requires_project = True

    def check_module(self, ctx: FileContext) -> None:
        if ctx.project is None:
            return
        for record in ctx.project.dead_exports(ctx.module_key):
            ctx.report(
                self,
                _anchor(record["line"], 0),
                f"{record['name']!r} is exported in __all__ but nothing else "
                "in the project references it; drop the export or the symbol",
            )


@register
class MixedIdContainerKeysRule(Rule):
    id = "CW605"
    name = "mixed-id-container-keys"
    description = (
        "The same container is subscripted with keys from two different id "
        "domains in one function — one map cannot be keyed by both."
    )

    def check_module(self, ctx: FileContext) -> None:
        scopes = [ctx.tree] + [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for scope in scopes:
            seen: Dict[str, Tuple[str, str]] = {}
            for sub in self._own_subscripts(scope):
                container = sub.value.id  # type: ignore[union-attr]
                key_name = identifier_of(sub.slice)
                domain = id_domain_of(key_name)
                if domain is None:
                    continue
                previous = seen.get(container)
                if previous is None:
                    seen[container] = (domain, key_name or "")
                elif previous[0] != domain:
                    ctx.report(
                        self,
                        sub,
                        f"container {container!r} is keyed by "
                        f"{domain_label(domain)} {key_name!r} here but by "
                        f"{domain_label(previous[0])} {previous[1]!r} earlier "
                        "in this function — mixed id domains in one map",
                    )

    @staticmethod
    def _own_subscripts(scope: ast.AST) -> List[ast.Subscript]:
        """Subscripts of plain names in ``scope``, excluding nested functions."""
        out: List[ast.Subscript] = []
        stack: List[ast.AST] = list(scope.body)  # type: ignore[attr-defined]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested scopes get their own pass
            if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name):
                out.append(node)
            stack.extend(ast.iter_child_nodes(node))
        out.sort(key=lambda n: (n.lineno, n.col_offset))
        return out
