"""CW5xx — the hot-path performance pack.

The ROADMAP's production-scale goal (millions of users, incremental
re-aggregation) makes per-item constant factors in the mining/crowd/exec
layers load-bearing.  These rules catch the four accidentally-quadratic (or
accidentally-linear-per-iteration) shapes that profile reviews keep finding:

* **CW501** — ``x in some_list`` membership tests inside a loop: O(n) per
  probe, O(n²) for the classic build-and-dedupe loop.  A set probe is O(1).
* **CW502** — ``s += piece`` string accumulation inside a loop: each ``+=``
  copies the whole prefix.  Collect parts and ``"".join(...)`` once.
* **CW503** — ``re.compile(<constant>)`` inside a loop: the compiled program
  is loop-invariant; hoist it to module level.
* **CW504** — ``sorted(xs)`` inside a loop over an ``xs`` the loop never
  changes: the sort is loop-invariant; hoist it.
* **CW505** — ``TimedItem(...)`` constructed inside a mining/crowd loop
  body: those layers operate on the interned id representation (see
  ``repro.sequences.vocab``); boxing an item per iteration is exactly the
  allocation the interning refactor removed.  Decode at the boundary via
  the vocabulary instead.

Findings in the hot layers (``mining``, ``crowd``, ``exec``) escalate to
``error`` severity; elsewhere they stay warnings.  All four rules are
flow-aware where it matters (list-ness and string-ness are proven through
reaching definitions, "don't know" means "don't flag").
"""

from __future__ import annotations

import ast
from typing import Optional, Set

from ..engine import FileContext, Rule, register
from ..layers import layer_of
from .common import callee_name, identifier_of

#: Layers where a per-item constant factor multiplies by millions of users.
_HOT_LAYERS = frozenset({"mining", "crowd", "exec"})

_LOOP_TYPES = (ast.For, ast.AsyncFor, ast.While)
_COMP_TYPES = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
_SCOPE_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)

#: Method calls that change a container's contents in place.
_MUTATOR_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend", "insert",
    "pop", "popleft", "remove", "setdefault", "sort", "update",
})


def hot_severity(ctx: FileContext) -> str:
    """``error`` in the hot layers, ``warning`` everywhere else."""
    return "error" if layer_of(ctx.module) in _HOT_LAYERS else "warning"


def enclosing_loop(ctx: FileContext, node: ast.AST) -> Optional[ast.AST]:
    """The innermost loop whose *body* repeats ``node``, or ``None``.

    Comprehension generators count as loops.  Positions that evaluate once —
    a ``for`` statement's iterable, a comprehension's first source iterable —
    do not count, and the walk stops at function/class boundaries.
    """
    parents = ctx.flow.parents
    child: ast.AST = node
    current = parents.get(child)
    via_iter: Optional[ast.comprehension] = None  # generator we entered via .iter
    while current is not None:
        if isinstance(current, _SCOPE_TYPES):
            return None
        if isinstance(current, _LOOP_TYPES):
            if not (isinstance(current, (ast.For, ast.AsyncFor)) and child is current.iter):
                return current
        elif isinstance(current, ast.comprehension):
            if child is current.iter:
                via_iter = current
        elif isinstance(current, _COMP_TYPES):
            if current.generators[0] is not via_iter:
                return current
            via_iter = None
        child, current = current, parents.get(current)
    return None


def names_rebound_in(loop: ast.AST) -> Set[str]:
    """Names assigned (not merely mutated) anywhere inside a loop."""
    rebound: Set[str] = set()
    for sub in ast.walk(loop):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, (ast.Store, ast.Del)):
            rebound.add(sub.id)
    return rebound


def names_changed_in(loop: ast.AST) -> Set[str]:
    """Names whose *value* may change inside a loop: rebinds plus mutation."""
    changed = names_rebound_in(loop)
    for sub in ast.walk(loop):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in _MUTATOR_METHODS
            and isinstance(sub.func.value, ast.Name)
        ):
            changed.add(sub.func.value.id)
        elif isinstance(sub, (ast.Subscript, ast.Attribute)) and isinstance(
            sub.ctx, (ast.Store, ast.Del)
        ):
            root = sub.value
            while isinstance(root, (ast.Subscript, ast.Attribute)):
                root = root.value
            if isinstance(root, ast.Name):
                changed.add(root.id)
    return changed


def is_list_like(ctx: FileContext, node: ast.AST, depth: int = 4) -> bool:
    """Whether an expression provably evaluates to a ``list``.

    Conservative twin of ``determinism.is_set_like``: every reaching
    definition of a name must itself be list-like.
    """
    if depth <= 0:
        return False
    if isinstance(node, (ast.List, ast.ListComp)):
        return True
    if isinstance(node, ast.Call):
        name = callee_name(node)
        if isinstance(node.func, ast.Name) and name in {"list", "sorted"}:
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return is_list_like(ctx, node.left, depth - 1) and is_list_like(
            ctx, node.right, depth - 1
        )
    if isinstance(node, ast.Name):
        defs = ctx.flow.definitions_for(node)
        if not defs:
            return False
        for definition in defs:
            if definition.kind not in {"assign", "aug"} or definition.value is None:
                return False
            if not is_list_like(ctx, definition.value, depth - 1):
                return False
        return True
    return False


def _is_str_like(ctx: FileContext, node: ast.AST, depth: int = 4) -> bool:
    if depth <= 0:
        return False
    if isinstance(node, ast.Constant):
        return isinstance(node.value, str)
    if isinstance(node, ast.JoinedStr):
        return True
    if isinstance(node, ast.Call):
        return isinstance(node.func, ast.Name) and node.func.id in {"str", "repr", "format"}
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Mod)):
        return _is_str_like(ctx, node.left, depth - 1)
    if isinstance(node, ast.Name):
        defs = ctx.flow.definitions_for(node)
        if not defs:
            return False
        for definition in defs:
            if definition.kind not in {"assign", "aug"} or definition.value is None:
                return False
            if not _is_str_like(ctx, definition.value, depth - 1):
                return False
        return True
    return False


@register
class ListMembershipInLoopRule(Rule):
    id = "CW501"
    name = "list-membership-in-loop"
    description = (
        "`x in <list>` inside a loop is O(n) per probe — the classic "
        "accidentally-quadratic dedupe; probe a set instead."
    )

    def visit_Compare(self, ctx: FileContext, node: ast.Compare) -> None:
        if len(node.ops) != 1 or not isinstance(node.ops[0], (ast.In, ast.NotIn)):
            return
        haystack = node.comparators[0]
        if not isinstance(haystack, ast.Name):
            return
        loop = enclosing_loop(ctx, node)
        if loop is None:
            return
        if haystack.id in names_rebound_in(loop):
            return  # rebound each iteration: not the same list being re-scanned
        if not is_list_like(ctx, haystack):
            return
        ctx.report(
            self,
            node,
            f"membership test against list {haystack.id!r} inside a loop is "
            "O(len) per probe; keep a set alongside (or instead) for O(1) "
            "membership",
            severity=hot_severity(ctx),
        )


@register
class StringConcatInLoopRule(Rule):
    id = "CW502"
    name = "str-concat-in-loop"
    description = (
        "`s += part` string accumulation inside a loop copies the whole "
        "prefix every iteration; collect parts and ''.join(...) once."
    )

    def visit_AugAssign(self, ctx: FileContext, node: ast.AugAssign) -> None:
        if not isinstance(node.op, ast.Add) or not isinstance(node.target, ast.Name):
            return
        if enclosing_loop(ctx, node) is None:
            return
        # Prove str-ness from the accumulator's plain initializers (the
        # AugAssign itself is circular evidence); every one must be a string.
        name = node.target.id
        scope = ctx.flow.enclosing_function(node) or ctx.tree
        initializers = [
            sub.value
            for sub in ast.walk(scope)
            if isinstance(sub, ast.Assign)
            and len(sub.targets) == 1
            and isinstance(sub.targets[0], ast.Name)
            and sub.targets[0].id == name
        ]
        if not initializers:
            return
        if not all(_is_str_like(ctx, value) for value in initializers):
            return
        ctx.report(
            self,
            node,
            f"string accumulation {name!r} += ... inside a loop is "
            "quadratic in the result length; append parts to a list and "
            "''.join(...) after the loop",
            severity=hot_severity(ctx),
        )


@register
class RegexCompileInLoopRule(Rule):
    id = "CW503"
    name = "regex-compile-in-loop"
    description = (
        "re.compile(<constant pattern>) inside a loop recompiles a "
        "loop-invariant program every iteration; hoist it."
    )

    def visit_Call(self, ctx: FileContext, node: ast.Call) -> None:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr == "compile"
            and identifier_of(func.value) == "re"
        ):
            return
        if not node.args:
            return
        pattern = node.args[0]
        if not (isinstance(pattern, ast.Constant) and isinstance(pattern.value, str)):
            return  # dynamic pattern: recompiling may be intentional
        if enclosing_loop(ctx, node) is None:
            return
        ctx.report(
            self,
            node,
            "re.compile() with a constant pattern inside a loop recompiles "
            "the same program every iteration; hoist the compiled pattern "
            "to module level",
            severity=hot_severity(ctx),
        )


@register
class InvariantSortInLoopRule(Rule):
    id = "CW504"
    name = "invariant-sort-in-loop"
    description = (
        "sorted(xs) inside a loop that never changes xs re-sorts the same "
        "sequence every iteration; sort once before the loop."
    )

    def visit_Call(self, ctx: FileContext, node: ast.Call) -> None:
        if not (isinstance(node.func, ast.Name) and node.func.id == "sorted"):
            return
        if not node.args or not isinstance(node.args[0], ast.Name):
            return
        loop = enclosing_loop(ctx, node)
        if loop is None:
            return
        changed = names_changed_in(loop)
        # Any loop-dependent name anywhere in the call (the sequence itself,
        # a key=, a reverse=) makes the sort genuinely per-iteration.
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Name)
                and isinstance(sub.ctx, ast.Load)
                and sub.id in changed
            ):
                return
        ctx.report(
            self,
            node,
            f"sorted({node.args[0].id}) is loop-invariant here — the loop "
            f"never changes {node.args[0].id!r}; sort once before the loop",
            severity=hot_severity(ctx),
        )


#: Layers whose inner loops must stay on the interned id representation.
_INTERNED_LAYERS = frozenset({"mining", "crowd"})


@register
class TimedItemInHotLoopRule(Rule):
    id = "CW505"
    name = "timeditem-in-hot-loop"
    description = (
        "TimedItem(...) constructed inside a mining/crowd loop body boxes "
        "an item per iteration; those layers run on interned int ids — "
        "decode at the boundary via the vocabulary instead."
    )

    def visit_Call(self, ctx: FileContext, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            callee = func.id
        elif isinstance(func, ast.Attribute):
            callee = func.attr
        else:
            return
        if callee != "TimedItem":
            return
        if layer_of(ctx.module) not in _INTERNED_LAYERS:
            return
        if enclosing_loop(ctx, node) is None:
            return
        ctx.report(
            self,
            node,
            "TimedItem(...) inside a mining/crowd loop allocates a boxed "
            "item per iteration; operate on interned ids and decode once "
            "at the boundary (ItemVocab.decode)",
            severity="error",
        )
