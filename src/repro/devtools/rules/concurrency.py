"""CW3xx — the concurrency pack.

The execution layer's contract (PR 2) is that ``exec.ordered_map`` is
output-identical to a serial loop: every task function must cross the
process boundary by pickling, run against the same state in every worker,
and leave no state behind.  These rules check the contract at the call
site, statically:

* **CW301** — a callable shipped to ``ordered_map`` that *cannot* pickle:
  a ``lambda``, or a function defined inside another function.  These fail
  at runtime only on the process backend, i.e. exactly where nobody tests.
* **CW302** — fork-unsafe module-level side effects: locks, threads,
  pools, sockets, open file handles, or global-RNG seeding executed at
  import time.  Worker processes re-import the module; each worker then
  owns a *different* copy of the resource (or, under ``fork``, an
  inherited lock in an undefined state).
* **CW303** — a task function that mutates module-level state (``global``
  rebinding, or writes into a module-level dict/list/set).  Under the
  serial backend the mutation is visible; under the process backend each
  worker mutates its own copy and the parent sees nothing — silent
  serial/parallel divergence.

CW301/CW303 resolve the task callable through the module's flow facts
(``devtools/flow``): through ``functools.partial`` wrappers and simple
name assignments, stopping — silently — at anything ambiguous.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from ..engine import FileContext, Rule, register
from .common import callee_name, identifier_of

#: Constructors whose module-level invocation is a fork hazard.
_FORK_UNSAFE_CONSTRUCTORS = frozenset({
    "Barrier", "BoundedSemaphore", "Condition", "Event", "Lock", "Manager",
    "Pool", "ProcessPoolExecutor", "RLock", "Semaphore", "Thread",
    "ThreadPoolExecutor", "Timer",
    "open", "socket", "connect", "create_connection", "urlopen",
})

#: Mutating methods on module-level containers.
_MUTATING_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend", "insert",
    "pop", "popitem", "remove", "setdefault", "update",
})

_MUTABLE_LITERALS = (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp,
                     ast.SetComp)
_MUTABLE_CONSTRUCTORS = frozenset({
    "Counter", "OrderedDict", "defaultdict", "deque", "dict", "list", "set",
})


def _is_ordered_map_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "ordered_map"
    return isinstance(func, ast.Attribute) and func.attr == "ordered_map"


def _task_argument(node: ast.Call) -> Optional[ast.AST]:
    if node.args:
        return node.args[0]
    for keyword in node.keywords:
        if keyword.arg == "fn":
            return keyword.value
    return None


def _unwrap_partial(ctx: FileContext, expr: ast.AST, depth: int = 3) -> Optional[ast.AST]:
    """Resolve a task expression to its underlying callable definition.

    Returns a ``Lambda``/``FunctionDef`` node, or ``None`` when the callable
    cannot be pinned down (attributes, ambiguous names, bound methods).
    """
    if depth <= 0:
        return None
    resolved = ctx.flow.resolve_callable(expr)
    if resolved is None:
        return None
    if isinstance(resolved, ast.Call):
        if callee_name(resolved) == "partial" and resolved.args:
            return _unwrap_partial(ctx, resolved.args[0], depth - 1)
        return None
    return resolved


@register
class UnpicklableTaskRule(Rule):
    id = "CW301"
    name = "unpicklable-task"
    description = (
        "A lambda or locally-defined function shipped to exec.ordered_map "
        "cannot cross the process boundary."
    )

    def visit_Call(self, ctx: FileContext, node: ast.Call) -> None:
        if not _is_ordered_map_call(node):
            return
        task = _task_argument(node)
        if task is None:
            return
        resolved = _unwrap_partial(ctx, task)
        if resolved is None:
            return
        if isinstance(resolved, ast.Lambda):
            ctx.report(
                self,
                node,
                "lambda shipped to ordered_map cannot pickle — the process "
                "backend will crash; define a module-level function",
            )
        elif isinstance(resolved, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if ctx.flow.enclosing_function(resolved) is not None:
                ctx.report(
                    self,
                    node,
                    f"locally-defined function {resolved.name!r} (line "
                    f"{resolved.lineno}) shipped to ordered_map cannot pickle; "
                    "move it to module level",
                )


@register
class ForkUnsafeModuleInitRule(Rule):
    id = "CW302"
    name = "fork-unsafe-module-init"
    description = (
        "Module-level creation of locks/threads/pools/sockets/files or "
        "global-RNG seeding — worker re-imports duplicate the resource."
    )

    def check_module(self, ctx: FileContext) -> None:
        if not ctx.module or not ctx.module.startswith("repro"):
            return  # library code is what workers re-import
        for call in ctx.flow.module_toplevel_calls():
            name = callee_name(call)
            if name in _FORK_UNSAFE_CONSTRUCTORS:
                ctx.report(
                    self,
                    call,
                    f"{name}() at import time is fork-unsafe: every worker "
                    "process re-runs it and owns a divergent copy; create it "
                    "lazily inside a function",
                )
            elif name == "seed" and isinstance(call.func, ast.Attribute):
                if identifier_of(call.func.value) == "random":
                    ctx.report(
                        self,
                        call,
                        "seeding the global RNG at import time hides the seed "
                        "from callers and resets on every worker re-import; "
                        "thread an explicit Generator instead",
                    )


@register
class WorkerGlobalMutationRule(Rule):
    id = "CW303"
    name = "worker-global-mutation"
    description = (
        "A function shipped to exec.ordered_map mutates module-level state; "
        "workers mutate private copies and the backends diverge."
    )

    def visit_Call(self, ctx: FileContext, node: ast.Call) -> None:
        if not _is_ordered_map_call(node):
            return
        task = _task_argument(node)
        if task is None:
            return
        resolved = _unwrap_partial(ctx, task)
        if not isinstance(resolved, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        if ctx.flow.enclosing_function(resolved) is not None:
            return  # CW301's finding
        for reason in self._mutations_of(ctx, resolved):
            ctx.report(
                self,
                node,
                f"task {resolved.name!r} {reason}; under the process backend "
                "each worker mutates a private copy and results diverge from "
                "the serial backend",
            )

    def _mutations_of(
        self, ctx: FileContext, func: ast.AST
    ) -> Iterable[str]:
        reasons: List[str] = []
        mutable_globals = self._mutable_module_names(ctx)
        global_names: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                global_names.update(node.names)
                reasons.append(
                    f"rebinds module global(s) {', '.join(sorted(node.names))} "
                    f"(line {node.lineno})"
                )
        local_names = self._locally_bound_names(func)
        for node in ast.walk(func):
            target_name: Optional[str] = None
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        base = target.value
                        if isinstance(base, ast.Name):
                            target_name = base.id
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATING_METHODS
                and isinstance(node.func.value, ast.Name)
            ):
                target_name = node.func.value.id
            if (
                target_name
                and target_name in mutable_globals
                and target_name not in local_names
                and target_name not in global_names  # already reported above
            ):
                reasons.append(
                    f"mutates module-level {target_name!r} (line {node.lineno})"
                )
        # De-duplicate while preserving order.
        seen: Set[str] = set()
        for reason in reasons:
            if reason not in seen:
                seen.add(reason)
                yield reason

    @staticmethod
    def _locally_bound_names(func: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for arg_list in (func.args.args, func.args.kwonlyargs,
                         getattr(func.args, "posonlyargs", [])):
            names.update(arg.arg for arg in arg_list)
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, (ast.For, ast.comprehension)):
                target = node.target
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    names.update(
                        element.id
                        for element in target.elts
                        if isinstance(element, ast.Name)
                    )
        return names

    @staticmethod
    def _mutable_module_names(ctx: FileContext) -> Set[str]:
        names: Set[str] = set()
        for name, definitions in ctx.flow.module_defs.items():
            for definition in definitions:
                value = definition.value
                if definition.kind != "assign" or value is None:
                    continue
                if isinstance(value, _MUTABLE_LITERALS):
                    names.add(name)
                elif (
                    isinstance(value, ast.Call)
                    and callee_name(value) in _MUTABLE_CONSTRUCTORS
                ):
                    names.add(name)
        return names
