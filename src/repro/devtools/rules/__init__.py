"""Built-in crowdlint rules.

Importing this package registers every rule with the engine registry; the
registry (not this module) is the source of truth for what runs.
"""

from . import (  # noqa: F401  (imported for registration side effects)
    concurrency,
    coordinates,
    datetimes,
    determinism,
    exceptions,
    exports,
    iddomains,
    imports,
    lifecycle,
    mutable_defaults,
    observability,
    perf,
    threadsafety,
    units,
)
