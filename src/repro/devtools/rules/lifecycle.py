"""CW8xx — the exception-flow / resource-lifetime / cache-coherence pack.

These rules consume two whole-program views built over the project call
graph: :class:`~repro.devtools.exceptions.ExceptionAnalysis` (per-function
may-raise sets computed to fixpoint with handler subsumption) and
:class:`~repro.devtools.resources.LifecycleAnalysis` (acquisition sites
tracked to their releases, with the exception edges deciding whether a
leak path is actually reachable, plus the ``repro.web.cache`` coherence
contract).  They report:

* **CW801** — a locally-owned resource (file, socket, connection,
  executor, tempdir, tracemalloc) that is never released, or whose
  release is skipped on a reachable exception/early-return path and is
  not protected by ``with``/``finally``.
* **CW802** — the same for locks: ``acquire()`` without a guaranteed
  ``release()``.  The sibling ``acquire(); …; release()`` shape carries a
  mechanical ``with lock:`` autofix.
* **CW803** — a broad ``except Exception``/bare handler that swallows an
  exception the fixpoint proves is propagated from project code: no
  re-raise, and the bound exception variable (if any) is never used.
  Silent bodies stay CW107's per-file finding.
* **CW804** — the atomic-persistence protocol (``mkstemp`` → write →
  ``fsync`` → ``os.replace``) attempted without the fsync or without
  unlinking the staged temp file on failure.
* **CW805** — served pipeline state mutated outside the constructor
  without a following cache ``invalidate()``: handlers keep serving the
  previous generation forever.
* **CW806** — handler-domain code bypassing the cache API by reading the
  cache's private internals directly.

Anything the analyses cannot prove — an escaped handle, an unresolved
callee, an unknown receiver — produces no finding: zero false positives
is the design budget, enforced by the clean-twin fixtures in the tests.

Severity is ``error`` in the layers where a leak or stale generation
corrupts the serving path (``web``, ``exec``, ``persistence``) and
``warning`` elsewhere.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..engine import Edit, FileContext, Fix, Rule, register
from ..layers import layer_of
from .threadsafety import _anchor

#: Layers where a leaked handle or stale cache corrupts served output.
_ERROR_LAYERS = frozenset({"web", "exec", "persistence"})


def _severity(ctx: FileContext) -> str:
    layer = layer_of(ctx.module) if ctx.module else None
    return "error" if layer in _ERROR_LAYERS else "warning"


def _lifecycle_records(ctx: FileContext, rule_id: str) -> List[Dict[str, object]]:
    if ctx.project is None:
        return []
    return [
        record
        for record in ctx.project.lifecycle_records(ctx.module_key)
        if record["rule"] == rule_id
    ]


@register
class LeakedResourceRule(Rule):
    id = "CW801"
    name = "may-leak-resource"
    description = (
        "A locally-owned resource (file, socket, executor, tempdir, "
        "tracemalloc) is acquired without `with` and its release is "
        "missing, or skipped on a reachable exception / early-return path "
        "with no `finally` protection."
    )
    requires_project = True

    def check_module(self, ctx: FileContext) -> None:
        for record in _lifecycle_records(ctx, self.id):
            ctx.report(
                self,
                _anchor(record["line"], record["col"]),
                f"in {record['func']}(): {record['reason']} — manage it "
                "with a `with` block or release it in a `finally`",
                severity=_severity(ctx),
            )


@register
class UnguardedLockReleaseRule(Rule):
    id = "CW802"
    name = "lock-without-guaranteed-release"
    description = (
        "A lock is acquire()d without a guaranteed release(): the release "
        "is missing, or an intervening raise/return/may-raise call skips "
        "it, deadlocking every later waiter.  The sibling acquire/release "
        "shape autofixes to a `with lock:` block."
    )
    requires_project = True
    fixable = True

    def check_module(self, ctx: FileContext) -> None:
        for record in _lifecycle_records(ctx, self.id):
            fix = self._build_fix(ctx, record.get("fix"))
            hint = (
                "apply the `with` rewrite"
                if fix is not None
                else "move the release into a `finally` (or use `with`)"
            )
            ctx.report(
                self,
                _anchor(record["line"], record["col"]),
                f"in {record['func']}(): {record['reason']} — {hint}",
                fix=fix,
                severity=_severity(ctx),
            )

    @staticmethod
    def _build_fix(ctx: FileContext, raw: Optional[Dict[str, object]]) -> Optional[Fix]:
        """``lock.acquire(); body; lock.release()`` → ``with lock: body``."""
        if not raw:
            return None
        try:
            a_line = int(raw["a_line"])
            a_end = int(raw["a_end"])
            r_line = int(raw["r_line"])
            start = ctx.offset(a_line, int(raw["a_col"]))
            end = ctx.offset(int(raw["r_end_line"]), int(raw["r_end_col"]))
            lock = str(raw["lock"])
        except (KeyError, IndexError, TypeError, ValueError):
            return None
        if r_line <= a_end:
            return None
        source_lines = ctx.source.splitlines()
        try:
            body = source_lines[a_end : r_line - 1]
        except IndexError:
            return None
        if not body:
            body = [" " * (int(raw["a_col"]) + 4) + "pass"]
        indented = [("    " + line) if line.strip() else line for line in body]
        replacement = f"with {lock}:\n" + "\n".join(indented)
        if ctx.source[start:end] == replacement:
            return None
        return Fix(
            edits=(Edit(start, end, replacement),),
            note=f"wrap the critical section in `with {lock}:`",
        )


@register
class SwallowedPropagationRule(Rule):
    id = "CW803"
    name = "broad-handler-swallows-propagation"
    description = (
        "A broad except (Exception/BaseException/bare) swallows an "
        "exception the interprocedural fixpoint proves is propagated from "
        "project code: no re-raise, and the bound variable is never used."
    )
    requires_project = True

    def check_module(self, ctx: FileContext) -> None:
        if ctx.project is None:
            return
        for record in ctx.project.exception_records(ctx.module_key):
            if record["rule"] != self.id:
                continue
            caught = ", ".join(record["caught"])  # type: ignore[arg-type]
            types = ", ".join(record["types"])  # type: ignore[arg-type]
            ctx.report(
                self,
                _anchor(record["line"], record["col"]),
                f"`except {caught}` in {record['func']}() silently swallows "
                f"{types} propagated from project code — narrow the catch, "
                "re-raise, or record the exception",
                severity=_severity(ctx),
            )


@register
class AtomicPersistenceRule(Rule):
    id = "CW804"
    name = "atomic-persistence-violation"
    description = (
        "Code staging through tempfile.mkstemp and publishing with "
        "os.replace/rename skips the fsync before the rename, or never "
        "unlinks the staged temp file when the write fails."
    )
    requires_project = True

    def check_module(self, ctx: FileContext) -> None:
        for record in _lifecycle_records(ctx, self.id):
            ctx.report(
                self,
                _anchor(record["line"], record["col"]),
                f"in {record['func']}(): {record['reason']} — follow the "
                "mkstemp -> write -> flush+fsync -> os.replace protocol "
                "with an except/finally unlink",
                severity=_severity(ctx),
            )


@register
class StaleCacheMutationRule(Rule):
    id = "CW805"
    name = "mutation-without-invalidation"
    description = (
        "Served pipeline state (an attribute set up alongside a "
        "ResponseCache in the constructor) is mutated outside the "
        "constructor with no following cache invalidate(): handlers keep "
        "serving the stale generation."
    )
    requires_project = True

    def check_module(self, ctx: FileContext) -> None:
        for record in _lifecycle_records(ctx, self.id):
            ctx.report(
                self,
                _anchor(record["line"], record["col"]),
                f"{record['class']}.{record['attr']} is mutated in "
                f"{record['func']}() without a following cache "
                "invalidate() — bump the generation so handlers stop "
                "serving stale responses",
                severity=_severity(ctx),
            )


@register
class CacheBypassRule(Rule):
    id = "CW806"
    name = "cache-bypass-from-handler"
    description = (
        "Handler-domain code reads the response cache's private internals "
        "(_entries, _generation, ...) directly instead of going through "
        "the cache API (lookup/store/stats/info)."
    )
    requires_project = True

    def check_module(self, ctx: FileContext) -> None:
        for record in _lifecycle_records(ctx, self.id):
            ctx.report(
                self,
                _anchor(record["line"], record["col"]),
                f"handler-reachable {record['func']}() reads "
                f"{record['attr']} directly — the cache's internals are "
                "guarded by its own lock and generation; use the public "
                "cache API",
                severity=_severity(ctx),
            )
