"""CW106/CW107: bare excepts and swallowed exceptions.

A multi-stage aggregation pipeline that catches everything and continues
produces *partial* crowd maps that look complete.  Two rules:

* **CW106** — ``except:`` with no exception type also traps
  ``KeyboardInterrupt``/``SystemExit`` and hides programming errors.
* **CW107** — ``except Exception: pass`` (a broad catch whose body neither
  re-raises, logs, nor records anything) silently drops the failure.  Narrow
  catches (``except KeyError: pass``) are allowed: they encode an expected
  condition.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from ..engine import Edit, FileContext, Fix, Rule, register
from .common import identifier_of

_BROAD = {"Exception", "BaseException"}


def _caught_types(handler: ast.ExceptHandler) -> Iterable[str]:
    node = handler.type
    if node is None:
        return []
    if isinstance(node, ast.Tuple):
        return [identifier_of(element) or "" for element in node.elts]
    return [identifier_of(node) or ""]


def _body_is_silent(body: Iterable[ast.stmt]) -> bool:
    """True when the handler body does nothing observable at all."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or bare `...`
        return False
    return True


@register
class BareExceptRule(Rule):
    id = "CW106"
    name = "bare-except"
    description = "except: with no exception type traps SystemExit and hides bugs."
    fixable = True

    _HEAD_RE = re.compile(r"except\s*:")

    def visit_ExceptHandler(self, ctx: FileContext, node: ast.ExceptHandler) -> None:
        if node.type is None:
            fix = None
            match = self._HEAD_RE.match(ctx.text(node))
            if match:
                start, _ = ctx.span(node)
                fix = Fix(
                    edits=(Edit(start, start + match.end(), "except Exception:"),),
                    note="narrow to Exception (SystemExit/KeyboardInterrupt pass)",
                )
            ctx.report(
                self,
                node,
                "bare 'except:' — catch a specific exception type "
                "(or at least Exception)",
                fix=fix,
            )


@register
class SwallowedExceptionRule(Rule):
    id = "CW107"
    name = "swallowed-exception"
    description = (
        "Broad except Exception whose body silently discards the error."
    )

    def visit_ExceptHandler(self, ctx: FileContext, node: ast.ExceptHandler) -> None:
        if node.type is None:
            return  # CW106's finding; don't double-report
        if not any(name in _BROAD for name in _caught_types(node)):
            return
        if _body_is_silent(node.body):
            ctx.report(
                self,
                node,
                "broad exception swallowed silently; log it, re-raise, or "
                "narrow the caught type",
            )
