"""CW2xx — the determinism pack.

The repo's headline guarantee (ROADMAP, PR 2) is bit-for-bit reproducibility:
the same seed regenerates every dataset, pattern set, and report, serial or
parallel.  These rules catch the three ways that guarantee silently erodes:

* **CW201** — randomness that does not flow from an explicit seed (the
  process-global ``random`` module API, legacy ``numpy.random`` global
  functions, and seedless ``default_rng()`` / ``Random()`` constructions).
* **CW202** — wall-clock reads (``time.time()``, ``datetime.now()``) whose
  value ends up *in data* — returned, yielded, or stored — rather than in
  timing/observability sinks.  Elapsed-time subtraction and observer calls
  are fine; a timestamp in a result dict means two identical runs differ.
* **CW203** — iteration over a ``set`` that feeds *ordered* output (a list,
  a ``join``, a yield) without an explicit ``sorted(...)``.  Set order
  depends on ``PYTHONHASHSEED`` for strings, so this is nondeterminism that
  only shows up across interpreter restarts — the worst kind.
* **CW204** — plucking an *arbitrary* element out of a set
  (``next(iter(s))``, ``s.pop()``): same hash-order dependence, one element
  at a time.

CW202–CW204 are flow-aware: they use reaching definitions (``devtools/flow``)
to decide whether a name denotes a set or where a clock value ends up, and
they only flag when every reaching definition agrees — ambiguity means
silence, keeping false positives near zero.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..engine import Edit, FileContext, Fix, Rule, register
from ..layers import layer_of
from .common import callee_name, identifier_of

#: Functions of the ``random`` module that use the shared, unseeded
#: process-global RNG when called as ``random.<fn>(...)``.
_GLOBAL_RANDOM_FNS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gauss", "getrandbits",
    "lognormvariate", "normalvariate", "paretovariate", "randbytes", "randint",
    "random", "randrange", "sample", "seed", "shuffle", "triangular",
    "uniform", "vonmisesvariate", "weibullvariate",
})

#: Legacy ``numpy.random`` global-state functions (same hazard, numpy spelling).
_NP_GLOBAL_FNS = frozenset({
    "beta", "binomial", "choice", "exponential", "gamma", "normal",
    "permutation", "poisson", "rand", "randint", "randn", "random",
    "random_sample", "seed", "shuffle", "standard_normal", "uniform",
})

#: Zero-arg constructors that build an RNG from OS entropy instead of a seed.
_SEEDABLE_CONSTRUCTORS = frozenset({"default_rng", "Random", "RandomState"})


@register
class UnseededRandomRule(Rule):
    id = "CW201"
    name = "unseeded-random"
    description = (
        "Randomness with no explicit seed: the global random/numpy.random "
        "API, or default_rng()/Random() built without a seed."
    )
    fixable = True

    def visit_Call(self, ctx: FileContext, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        owner = identifier_of(func.value)
        if owner != "random":
            # ``rng.shuffle(...)`` on an explicit Generator is the sanctioned
            # spelling; only the module-level APIs are process-global.
            if func.attr in _SEEDABLE_CONSTRUCTORS:
                self._check_constructor(ctx, node)
            return
        if func.attr in _SEEDABLE_CONSTRUCTORS:
            self._check_constructor(ctx, node)
            return
        # ``random.<fn>`` (stdlib) and ``np.random.<fn>`` (legacy numpy) both
        # present an owner identifier of "random".
        is_numpy = isinstance(func.value, ast.Attribute)
        fns = _NP_GLOBAL_FNS if is_numpy else _GLOBAL_RANDOM_FNS
        if func.attr in fns:
            ctx.report(
                self,
                node,
                f"{'numpy.random' if is_numpy else 'random'}.{func.attr}() uses "
                "the process-global unseeded RNG; thread an explicit seeded "
                "Generator (np.random.default_rng(seed)) through instead",
            )
        elif func.attr == "SystemRandom":
            ctx.report(
                self,
                node,
                "random.SystemRandom() draws OS entropy and can never be "
                "seeded; use a seeded Generator for reproducible runs",
            )

    def _check_constructor(self, ctx: FileContext, node: ast.Call) -> None:
        if node.args or node.keywords:
            first = node.args[0] if node.args else None
            if not (isinstance(first, ast.Constant) and first.value is None):
                return
        start, end = ctx.span(node)
        original = ctx.text(node)
        if original.endswith("()"):
            fix = Fix(
                edits=(Edit(start, end, original[:-1] + "0)"),),
                note="inject the canonical seed 0",
            )
        else:
            fix = None  # default_rng(None) and friends: flag, no rewrite
        ctx.report(
            self,
            node,
            f"{node.func.attr}() without a seed draws OS entropy — every run "
            "differs; pass an explicit seed",
            fix=fix,
        )


# --------------------------------------------------------------------------
# CW202 — wall-clock values flowing into data
# --------------------------------------------------------------------------

#: Value-preserving wrappers we look *through* when classifying a use.
_TRANSPARENT_CALLS = frozenset({"abs", "float", "int", "max", "min", "round"})

#: Layers whose whole job is timestamps and timing; exempt from CW202.
_CLOCK_LAYERS = frozenset({"obs", "bench"})


def _is_wallclock_call(node: ast.Call, ctx: FileContext) -> Optional[str]:
    """The dotted name of a wall-clock read, or None."""
    func = node.func
    if isinstance(func, ast.Attribute):
        owner = identifier_of(func.value)
        if owner == "time" and func.attr in {"time", "time_ns"}:
            return f"time.{func.attr}"
        if owner == "datetime" and func.attr in {"now", "today"}:
            return f"datetime.{func.attr}"
    elif isinstance(func, ast.Name) and func.id in {"time", "time_ns"}:
        # ``from time import time`` — resolve through the import.
        for definition in ctx.flow.definitions_for(func):
            if definition.kind == "import" and isinstance(
                definition.value, ast.ImportFrom
            ):
                if definition.value.module == "time":
                    return f"time.{func.id}"
    return None


def _data_sink_reason(ctx: FileContext, node: ast.AST) -> Optional[str]:
    """Why this expression's value counts as *data*, or None if benign.

    Walks up the expression tree from ``node``: subtraction (elapsed time),
    comparisons, and observability/logging sinks clear the value; returns,
    yields, container literals, f-strings, and attribute/subscript stores
    condemn it.  An unknown callee ends the walk benignly — interprocedural
    tracking is out of scope and "don't know" must mean "don't flag".
    """
    parents = ctx.flow.parents
    child: ast.AST = node
    parent = parents.get(child)
    while parent is not None:
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
            return "is returned as data"
        if isinstance(parent, (ast.Dict, ast.List, ast.Tuple, ast.Set,
                               ast.JoinedStr, ast.FormattedValue)):
            return "is stored in a data structure"
        if isinstance(parent, ast.BinOp):
            if isinstance(parent.op, ast.Sub):
                return None  # elapsed-time arithmetic
            child, parent = parent, parents.get(parent)  # scaled clock: keep walking
            continue
        if isinstance(parent, ast.Compare):
            return None
        if isinstance(parent, ast.keyword):
            child, parent = parent, parents.get(parent)
            continue
        if isinstance(parent, ast.Call):
            if child is parent.func:
                return None
            name = callee_name(parent)
            if name in _TRANSPARENT_CALLS:
                child, parent = parent, parents.get(parent)
                continue
            if name in {"dict", "list", "tuple"}:
                return "is stored in a data structure"
            # Observability sinks (observe/inc/set_gauge/...) and unknown
            # callees both land here: "don't know" must mean "don't flag".
            return None
        if isinstance(parent, ast.Assign):
            for target in parent.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    return "is stored on an object"
            return None  # Name assignment: tracked through reaching defs
        if isinstance(parent, ast.stmt):
            return None
        child, parent = parent, parents.get(parent)
    return None


@register
class WallclockDataRule(Rule):
    id = "CW202"
    name = "wallclock-in-data-path"
    description = (
        "time.time()/datetime.now() value flows into returned or stored "
        "data instead of a timing/observability sink."
    )

    def visit_Call(self, ctx: FileContext, node: ast.Call) -> None:
        layer = layer_of(ctx.module)
        if not ctx.module or not ctx.module.startswith("repro"):
            return  # polices the library, not tests/scripts
        if layer in _CLOCK_LAYERS or layer == "devtools":
            return
        clock = _is_wallclock_call(node, ctx)
        if clock is None:
            return
        reason = _data_sink_reason(ctx, node)
        if reason is None:
            reason = self._assigned_name_reaches_data(ctx, node)
        if reason is not None:
            ctx.report(
                self,
                node,
                f"{clock}() {reason} — two identical runs now differ; pass "
                "timestamps in explicitly or route this through repro.obs",
            )

    def _assigned_name_reaches_data(
        self, ctx: FileContext, node: ast.Call
    ) -> Optional[str]:
        """Follow ``x = time.time()`` to every use of ``x`` this def reaches."""
        parent = ctx.flow.parents.get(node)
        if not isinstance(parent, ast.Assign) or len(parent.targets) != 1:
            return None
        target = parent.targets[0]
        if not isinstance(target, ast.Name):
            return None
        for definition in _defs_from_stmt(ctx, parent, target.id):
            for use in ctx.flow.uses_of(definition):
                reason = _data_sink_reason(ctx, use)
                if reason is not None:
                    return f"(via {target.id!r}, line {use.lineno}) {reason}"
        return None


def _defs_from_stmt(ctx: FileContext, stmt: ast.stmt, name: str):
    """The Definition objects a statement generates for ``name``."""
    func = ctx.flow.enclosing_function(stmt)
    graph = ctx.flow.graph_for(func) if func is not None else ctx.flow.module_graph
    for anchored in graph.statements():
        if anchored is stmt:
            for definition in graph._gen(stmt):
                if definition.name == name:
                    yield definition
            return


# --------------------------------------------------------------------------
# CW203 / CW204 — set iteration order
# --------------------------------------------------------------------------

_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_SET_PRESERVING_METHODS = frozenset({
    "copy", "difference", "intersection", "symmetric_difference", "union",
})
#: Consumers whose output order follows input order.
_ORDERED_CONSUMERS = frozenset({"list", "tuple", "enumerate"})
#: Consumers for which input order is irrelevant — looking *through* these
#: clears the iteration (``sorted(s)`` is the sanctioned spelling).
_ORDER_INSENSITIVE = frozenset({
    "all", "any", "frozenset", "len", "max", "min", "set", "sorted", "sum",
    "Counter", "dict",
})
#: Mutating calls inside a loop body that make iteration order observable.
_ORDER_SENSITIVE_METHODS = frozenset({
    "append", "appendleft", "extend", "insert", "write", "writerow",
})


def is_set_like(ctx: FileContext, node: ast.AST, depth: int = 4) -> bool:
    """Whether an expression provably evaluates to a set/frozenset.

    Conservative: every reaching definition of a name must itself be
    set-like for the name to count.
    """
    if depth <= 0:
        return False
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = callee_name(node)
        if isinstance(node.func, ast.Name) and name in _SET_CONSTRUCTORS:
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_PRESERVING_METHODS
        ):
            return is_set_like(ctx, node.func.value, depth - 1)
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return is_set_like(ctx, node.left, depth - 1) or (
            isinstance(node.op, (ast.BitOr, ast.BitXor))
            and is_set_like(ctx, node.right, depth - 1)
        )
    if isinstance(node, ast.IfExp):
        return is_set_like(ctx, node.body, depth - 1) and is_set_like(
            ctx, node.orelse, depth - 1
        )
    if isinstance(node, ast.Name):
        defs = ctx.flow.definitions_for(node)
        if not defs:
            return False
        for definition in defs:
            if definition.kind == "assign" and definition.value is not None:
                if not is_set_like(ctx, definition.value, depth - 1):
                    return False
            elif definition.kind == "aug":
                if definition.value is None or not is_set_like(
                    ctx, definition.value, depth - 1
                ):
                    return False
            else:
                return False
        return True
    return False


def _inside_order_insensitive_call(ctx: FileContext, node: ast.AST) -> bool:
    """True when an enclosing call renders iteration order irrelevant."""
    parents = ctx.flow.parents
    child: ast.AST = node
    parent = parents.get(child)
    while parent is not None and not isinstance(parent, ast.stmt):
        if isinstance(parent, ast.Call) and child is not parent.func:
            if callee_name(parent) in _ORDER_INSENSITIVE:
                return True
        child, parent = parent, parents.get(parent)
    return False


def _sorted_wrap_fix(ctx: FileContext, iterable: ast.AST) -> Fix:
    start, end = ctx.span(iterable)
    return Fix(
        edits=(Edit(start, end, f"sorted({ctx.text(iterable)})"),),
        note="wrap the unordered iterable in sorted(...)",
    )


@register
class UnorderedIterationRule(Rule):
    id = "CW203"
    name = "unordered-iteration"
    description = (
        "Iteration over a set feeds ordered output (list/tuple/join/yield/"
        "append) without an explicit sorted(...)."
    )
    fixable = True

    def visit_Call(self, ctx: FileContext, node: ast.Call) -> None:
        name = callee_name(node)
        iterable: Optional[ast.AST] = None
        if (
            isinstance(node.func, ast.Name)
            and name in _ORDERED_CONSUMERS
            and len(node.args) == 1
        ):
            iterable = node.args[0]
        elif (
            isinstance(node.func, ast.Attribute)
            and name == "join"
            and isinstance(node.func.value, (ast.Constant, ast.Name))
            and len(node.args) == 1
        ):
            iterable = node.args[0]
        if iterable is None:
            return
        if isinstance(iterable, ast.GeneratorExp):
            self._check_comprehension(ctx, iterable, within_consumer=True)
            return
        if not is_set_like(ctx, iterable):
            return
        if _inside_order_insensitive_call(ctx, node):
            return
        ctx.report(
            self,
            node,
            f"{name}() over a set is hash-ordered; wrap the set in "
            "sorted(...) for a stable order",
            fix=_sorted_wrap_fix(ctx, iterable),
        )

    def visit_For(self, ctx: FileContext, node: ast.For) -> None:
        if not is_set_like(ctx, node.iter):
            return
        if not self._body_is_order_sensitive(node.body):
            return
        ctx.report(
            self,
            node,
            "loop over a set feeds ordered output (append/yield inside the "
            "body); iterate over sorted(...) instead",
            fix=_sorted_wrap_fix(ctx, node.iter),
        )

    def visit_ListComp(self, ctx: FileContext, node: ast.ListComp) -> None:
        self._check_comprehension(ctx, node, within_consumer=False)

    def _check_comprehension(
        self, ctx: FileContext, node: ast.AST, within_consumer: bool
    ) -> None:
        for generator in node.generators:
            if not is_set_like(ctx, generator.iter):
                continue
            if not within_consumer and _inside_order_insensitive_call(ctx, node):
                continue
            ctx.report(
                self,
                node,
                "comprehension over a set produces a hash-ordered sequence; "
                "iterate over sorted(...) instead",
                fix=_sorted_wrap_fix(ctx, generator.iter),
            )
            return

    @staticmethod
    def _body_is_order_sensitive(body: Iterable[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Yield, ast.YieldFrom)):
                    return True
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _ORDER_SENSITIVE_METHODS
                ):
                    return True
        return False


@register
class ArbitrarySetElementRule(Rule):
    id = "CW204"
    name = "arbitrary-set-element"
    description = (
        "next(iter(s)) / s.pop() on a set picks a hash-ordered 'first' "
        "element — which element is PYTHONHASHSEED-dependent."
    )

    def visit_Call(self, ctx: FileContext, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "next" and node.args:
            inner = node.args[0]
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Name)
                and inner.func.id == "iter"
                and inner.args
                and is_set_like(ctx, inner.args[0])
            ):
                ctx.report(
                    self,
                    node,
                    "next(iter(<set>)) picks a hash-ordered element; use "
                    "min(...)/max(...) or sort first",
                )
            return
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "pop"
            and not node.args
            and not node.keywords
            and is_set_like(ctx, func.value)
        ):
            ctx.report(
                self,
                node,
                "set.pop() removes a hash-ordered element; pick the element "
                "deterministically (e.g. via min/sorted) before removing it",
            )
