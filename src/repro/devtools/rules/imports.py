"""CW108: import-layering checker.

Enforces the declared package DAG in :mod:`repro.devtools.layers`: every
``repro``-internal import in a file under ``repro.<layer>`` must target either
the same layer or one of its declared dependencies.  Files outside the
``repro`` package (tests, scripts) are exempt — the rule polices the
architecture, not its consumers.
"""

from __future__ import annotations

import ast
from typing import Optional

from ..engine import FileContext, Rule, register
from ..layers import LAYER_MAP, layer_of, resolve_import


@register
class ImportLayerRule(Rule):
    id = "CW108"
    name = "import-layering"
    description = (
        "A repro package imports from a layer that is not among its declared "
        "dependencies in the layer map."
    )

    def visit_Import(self, ctx: FileContext, node: ast.Import) -> None:
        for alias in node.names:
            self._check(ctx, node, alias.name)

    def visit_ImportFrom(self, ctx: FileContext, node: ast.ImportFrom) -> None:
        target = resolve_import(ctx.module, node.module, node.level, ctx.is_init)
        if target is None:
            return
        if layer_of(target) is not None:
            self._check(ctx, node, target)
        else:
            # ``from repro import crowd`` / ``from . import crowd`` — the base
            # has no layer; each alias binds a subpackage one level deeper.
            for alias in node.names:
                if alias.name != "*":
                    self._check(ctx, node, f"{target}.{alias.name}")

    def _check(self, ctx: FileContext, node: ast.AST, target_module: Optional[str]) -> None:
        source_layer = layer_of(ctx.module)
        if source_layer is None or source_layer not in LAYER_MAP:
            return
        target_layer = layer_of(target_module)
        if target_layer is None or target_layer == source_layer:
            return
        if target_layer not in LAYER_MAP:
            ctx.report(
                self,
                node,
                f"import of unknown layer 'repro.{target_layer}' — add it to "
                "the layer map in repro/devtools/layers.py",
            )
            return
        if target_layer not in LAYER_MAP[source_layer]:
            allowed = ", ".join(sorted(LAYER_MAP[source_layer])) or "nothing internal"
            ctx.report(
                self,
                node,
                f"layer '{source_layer}' must not import 'repro.{target_layer}' "
                f"(allowed: {allowed})",
            )
