"""CW104: mutable default arguments.

A ``def f(acc=[])`` default is evaluated once at definition time; every call
that mutates it leaks state into the next call.  In a long-lived server
(``repro.web``) or an incremental miner this shows up as cross-request /
cross-user contamination that no unit test on a fresh interpreter catches.
"""

from __future__ import annotations

import ast
from typing import Optional

from ..engine import FileContext, Rule, register
from .common import callee_name

_MUTABLE_CALLS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "deque",
}


def _mutable_reason(node: Optional[ast.AST]) -> Optional[str]:
    if node is None:
        return None
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return f"literal {type(node).__name__.lower()}"
    if isinstance(node, ast.ListComp):
        return "list comprehension"
    if isinstance(node, (ast.DictComp, ast.SetComp)):
        return "comprehension"
    if isinstance(node, ast.Call):
        name = callee_name(node)
        if name in _MUTABLE_CALLS:
            return f"call to {name}()"
    return None


@register
class MutableDefaultRule(Rule):
    id = "CW104"
    name = "mutable-default-argument"
    description = "Function parameter default is a mutable object shared across calls."

    def visit_FunctionDef(self, ctx: FileContext, node: ast.FunctionDef) -> None:
        self._check(ctx, node)

    def visit_AsyncFunctionDef(self, ctx: FileContext, node: ast.AsyncFunctionDef) -> None:
        self._check(ctx, node)

    def visit_Lambda(self, ctx: FileContext, node: ast.Lambda) -> None:
        self._check(ctx, node)

    def _check(self, ctx: FileContext, node: ast.AST) -> None:
        args = node.args
        positional = args.posonlyargs + args.args
        for arg, default in zip(positional[len(positional) - len(args.defaults):], args.defaults):
            reason = _mutable_reason(default)
            if reason:
                ctx.report(
                    self,
                    default,
                    f"parameter {arg.arg!r} defaults to a mutable {reason}; "
                    "use None and create it inside the function",
                )
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            reason = _mutable_reason(default)
            if reason:
                ctx.report(
                    self,
                    default,
                    f"parameter {arg.arg!r} defaults to a mutable {reason}; "
                    "use None and create it inside the function",
                )
