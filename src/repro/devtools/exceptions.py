"""Interprocedural exception-propagation analysis (crowdlint v5, stage 1).

Per-function *may-raise* summaries computed to fixpoint over the existing
whole-program call graph:

1. **Fact extraction.**  Per-module *exception facts* ride inside the
   domain summaries (same content-addressed cache, same ``--jobs``
   shipping): every explicit ``raise`` site, every call expression in the
   callgraph's symbolic-callee vocabulary, and every ``except`` handler —
   each annotated with the ordered stack of handlers lexically guarding
   it, so propagation respects Python's first-matching-handler rule and
   the fact that ``else:``/``finally:`` blocks are *not* protected by
   their own ``try``.

2. **Hierarchy model.**  Handler subsumption uses a builtin exception
   hierarchy (``FileNotFoundError ⊂ OSError ⊂ Exception`` …) extended
   with every project-defined exception class discovered in the facts
   (``UnknownCategoryError ⊂ KeyError``).  ``except Exception`` catches
   any type that does not chain into the ``BaseException``-only family
   (``SystemExit``/``KeyboardInterrupt``/``GeneratorExit``); a bare
   ``except`` or ``except BaseException`` catches everything.

3. **Propagation fixpoint.**  ``raises_out(f)`` seeds from f's unguarded
   explicit raises, grows with every resolved callee's escape set minus
   the handlers guarding the call site, and routes bare ``raise``
   statements inside a handler back out with the types that handler
   actually received.  Sets only grow, so the iteration converges; a
   pass bound guards against pathological graphs.

Unresolved callees (stdlib, third-party) contribute **nothing** — the
analysis answers "which *project-raised* exceptions reach this frame",
which is exactly what the CW803 swallow rule and the CW801/CW802 leak
reachability checks need, and it keeps the pack at zero false positives
on code the resolver cannot see.

CW803 (broad handler swallows a propagated domain exception) fires when a
handler catches ``Exception``/``BaseException``/bare, does **not**
re-raise, does **not** use its bound exception variable, has a non-silent
body (silent ones are CW107's per-file finding), and the fixpoint proves
at least one project-raised exception is delivered to it.

The module is deliberately import-light (``ast`` + stdlib + the symbolic
helpers shared with :mod:`repro.devtools.threads`) so
:mod:`repro.devtools.domains` can call :func:`extract_exception_facts`
without an import cycle.
"""

from __future__ import annotations

import ast
import hashlib
import json
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from .threads import _call_sym, _last_name

__all__ = ["extract_exception_facts", "ExceptionAnalysis"]

#: Bumped when the exception-fact schema changes (the summary cache and the
#: ruleset fingerprint already invalidate stale entries; belt-and-braces).
EXCEPTION_FORMAT = "1"

#: child → parent for the builtin hierarchy the subsumption check walks.
_BUILTIN_PARENTS: Dict[str, str] = {
    "Exception": "BaseException",
    "ArithmeticError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
    "FloatingPointError": "ArithmeticError",
    "AssertionError": "Exception",
    "AttributeError": "Exception",
    "BufferError": "Exception",
    "EOFError": "Exception",
    "ImportError": "Exception",
    "ModuleNotFoundError": "ImportError",
    "LookupError": "Exception",
    "IndexError": "LookupError",
    "KeyError": "LookupError",
    "MemoryError": "Exception",
    "NameError": "Exception",
    "UnboundLocalError": "NameError",
    "OSError": "Exception",
    "IOError": "OSError",
    "FileNotFoundError": "OSError",
    "FileExistsError": "OSError",
    "PermissionError": "OSError",
    "IsADirectoryError": "OSError",
    "NotADirectoryError": "OSError",
    "InterruptedError": "OSError",
    "BlockingIOError": "OSError",
    "ChildProcessError": "OSError",
    "TimeoutError": "OSError",
    "ConnectionError": "OSError",
    "BrokenPipeError": "ConnectionError",
    "ConnectionAbortedError": "ConnectionError",
    "ConnectionRefusedError": "ConnectionError",
    "ConnectionResetError": "ConnectionError",
    "ReferenceError": "Exception",
    "RuntimeError": "Exception",
    "NotImplementedError": "RuntimeError",
    "RecursionError": "RuntimeError",
    "StopIteration": "Exception",
    "StopAsyncIteration": "Exception",
    "SyntaxError": "Exception",
    "IndentationError": "SyntaxError",
    "TabError": "IndentationError",
    "SystemError": "Exception",
    "TypeError": "Exception",
    "ValueError": "Exception",
    "UnicodeError": "ValueError",
    "UnicodeDecodeError": "UnicodeError",
    "UnicodeEncodeError": "UnicodeError",
    "GeneratorExit": "BaseException",
    "KeyboardInterrupt": "BaseException",
    "SystemExit": "BaseException",
}

#: Types that do *not* descend from ``Exception`` — ``except Exception``
#: never catches these (nor anything chaining into them).
_NON_EXCEPTION = frozenset(
    {"BaseException", "KeyboardInterrupt", "SystemExit", "GeneratorExit"}
)

#: Broad catch types: CW803 only ever fires on these (or a bare handler).
_BROAD = frozenset({"Exception", "BaseException"})

Node = Tuple[str, str]  # (module_key, qualname)
GuardGroups = List[List[int]]  # inner-to-outer: handler ids of each enclosing try


# --------------------------------------------------------------------------
# extraction: one module's exception facts as plain JSON data
# --------------------------------------------------------------------------

def _exc_type_name(expr: Optional[ast.AST]) -> Optional[str]:
    """``raise X(...)`` / ``raise X`` → ``"X"``; bare / opaque → ``None``."""
    if expr is None:
        return None
    if isinstance(expr, ast.Call):
        return _last_name(expr.func)
    return _last_name(expr)


def _caught_type_names(handler: ast.ExceptHandler) -> List[str]:
    """The handler's caught types by last name; ``[]`` for a bare except."""
    node = handler.type
    if node is None:
        return []
    exprs = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for expr in exprs:
        name = _last_name(expr)
        if name is not None:
            names.append(name)
    return names


def _body_is_silent(body: Sequence[ast.stmt]) -> bool:
    """True when the handler body does nothing (CW107's shape)."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue
        return False
    return True


def _uses_name(body: Sequence[ast.stmt], name: Optional[str]) -> bool:
    """Whether the bound exception variable is ever read in the body."""
    if not name:
        return False
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and node.id == name and isinstance(node.ctx, ast.Load):
                return True
    return False


def extract_exception_facts(tree: ast.Module) -> Dict[str, object]:
    """One module's exception-flow facts as plain JSON data."""
    facts: Dict[str, object] = {
        "format": EXCEPTION_FORMAT,
        "classes": {},
        "functions": {},
    }
    recorder = _ExcRecorder(facts["classes"], facts["functions"])  # type: ignore[arg-type]
    recorder.walk_definitions(tree.body, prefix="")
    return facts


class _ExcRecorder:
    """One record per function: raises, calls, and handlers with guards."""

    def __init__(self, classes: Dict[str, List[str]], functions: Dict[str, Dict[str, object]]):
        self.classes = classes
        self.functions = functions

    def walk_definitions(self, body: Sequence[ast.stmt], prefix: str) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.record_function(stmt, prefix + stmt.name)
            elif isinstance(stmt, ast.ClassDef):
                path = prefix + stmt.name
                bases = [name for name in map(_last_name, stmt.bases) if name]
                self.classes[path.rsplit(".", 1)[-1]] = bases
                self.walk_definitions(stmt.body, path + ".")

    def record_function(self, fn: ast.AST, qualname: str) -> None:
        record: Dict[str, object] = {
            "line": fn.lineno,  # type: ignore[attr-defined]
            "raises": [],
            "calls": [],
            "handlers": [],
        }
        self.functions[qualname] = record
        walker = _ExcWalker(self, record, qualname)
        walker.walk(fn.body, guards=[], handler_id=None)  # type: ignore[attr-defined]


class _ExcWalker:
    """Statement walk of one function tracking the enclosing handler stack."""

    def __init__(self, recorder: _ExcRecorder, record: Dict[str, object], qualname: str):
        self.recorder = recorder
        self.rec = record
        self.qualname = qualname

    # -- expression scan ---------------------------------------------------

    def _scan_calls(self, expr: Optional[ast.AST], guards: GuardGroups) -> None:
        """Record every call in an expression tree (lambda bodies excluded)."""
        if expr is None:
            return
        stack: List[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                continue
            if isinstance(node, ast.Call):
                sym = _call_sym(node.func)
                if sym is not None:
                    self.rec["calls"].append(  # type: ignore[union-attr]
                        {
                            "sym": sym,
                            "line": node.lineno,
                            "col": node.col_offset,
                            "guards": [list(group) for group in guards],
                        }
                    )
            stack.extend(ast.iter_child_nodes(node))

    def _scan_statement_exprs(self, stmt: ast.stmt, guards: GuardGroups) -> None:
        """Scan a statement's directly-evaluated expressions for calls."""
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_calls(child, guards)

    # -- the walk ----------------------------------------------------------

    def walk(
        self,
        stmts: Sequence[ast.stmt],
        guards: GuardGroups,
        handler_id: Optional[int],
    ) -> None:
        for stmt in stmts:
            self._statement(stmt, guards, handler_id)

    def _statement(
        self, stmt: ast.stmt, guards: GuardGroups, handler_id: Optional[int]
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.recorder.record_function(stmt, f"{self.qualname}.{stmt.name}")
            return
        if isinstance(stmt, ast.ClassDef):
            return  # classes nested in functions stay opaque, like threads.py
        if isinstance(stmt, ast.Raise):
            exc_type = _exc_type_name(stmt.exc)
            entry: Dict[str, object] = {
                "type": exc_type,
                "line": stmt.lineno,
                "guards": [list(group) for group in guards],
            }
            if exc_type is None:
                if handler_id is None:
                    return  # bare raise with no active handler: dead code
                entry["handler"] = handler_id
                self.rec["handlers"][handler_id]["reraises"] = True  # type: ignore[index]
            self.rec["raises"].append(entry)  # type: ignore[union-attr]
            self._scan_statement_exprs(stmt, guards)
            return
        if isinstance(stmt, ast.Try):
            handler_ids: List[int] = []
            for handler in stmt.handlers:
                hid = len(self.rec["handlers"])  # type: ignore[arg-type]
                handler_ids.append(hid)
                self.rec["handlers"].append(  # type: ignore[union-attr]
                    {
                        "id": hid,
                        "types": _caught_type_names(handler),
                        "line": handler.lineno,
                        "col": handler.col_offset,
                        "reraises": False,
                        "uses": _uses_name(handler.body, handler.name),
                        "silent": _body_is_silent(handler.body),
                    }
                )
            inner = ([handler_ids] if handler_ids else []) + guards
            self.walk(stmt.body, inner, handler_id)
            for hid, handler in zip(handler_ids, stmt.handlers):
                self.walk(handler.body, guards, hid)
            # else: runs only when the body did not raise — and its own
            # exceptions are NOT caught by this try's handlers.
            self.walk(stmt.orelse, guards, handler_id)
            self.walk(stmt.finalbody, guards, handler_id)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._scan_calls(stmt.test, guards)
            self.walk(stmt.body, guards, handler_id)
            self.walk(stmt.orelse, guards, handler_id)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_calls(stmt.iter, guards)
            self.walk(stmt.body, guards, handler_id)
            self.walk(stmt.orelse, guards, handler_id)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_calls(item.context_expr, guards)
            self.walk(stmt.body, guards, handler_id)
            return
        self._scan_statement_exprs(stmt, guards)


# --------------------------------------------------------------------------
# whole-program analysis: the may-raise fixpoint
# --------------------------------------------------------------------------

class ExceptionAnalysis:
    """Interprocedural may-raise sets and the CW803 swallow records.

    Built from the per-module exception facts riding inside the domain
    summaries plus the project's symbolic-call resolver; everything here
    is derived data, so rehydrated worker projects rebuild it on demand.
    """

    _MAX_PASSES = 30  # fixpoint bound, like the domain/entry-lock fixpoints

    def __init__(
        self,
        summaries: Dict[str, Dict[str, object]],
        resolver: Callable[[str, str, Sequence[object]], Optional[Tuple[Tuple[str, str], bool]]],
    ):
        self.summaries = summaries
        self._resolve = resolver
        self.nodes: Dict[Node, Dict[str, object]] = {}
        self._parents: Dict[str, Set[str]] = {}
        self.raises_out: Dict[Node, Set[str]] = {}
        self.incoming: Dict[Tuple[Node, int], Set[str]] = {}
        self.origins: Dict[Tuple[Node, str], Tuple[str, int, Optional[Node]]] = {}
        self._call_targets: Dict[Node, List[Tuple[Dict[str, object], Node]]] = {}
        self._records: Dict[str, List[Dict[str, object]]] = {}
        self._build()

    # -- construction ------------------------------------------------------

    def _facts(self, module_key: str) -> Dict[str, object]:
        summary = self.summaries.get(module_key) or {}
        facts = summary.get("exceptions")
        if not isinstance(facts, dict):
            return {"classes": {}, "functions": {}}
        return facts

    def _build(self) -> None:
        for name, parent in _BUILTIN_PARENTS.items():
            self._parents.setdefault(name, set()).add(parent)
        for module_key in sorted(self.summaries):
            facts = self._facts(module_key)
            for name, bases in facts.get("classes", {}).items():  # type: ignore[union-attr]
                for base in bases:
                    self._parents.setdefault(name, set()).add(base)
            for qualname, record in facts.get("functions", {}).items():  # type: ignore[union-attr]
                self.nodes[(module_key, qualname)] = record
        self._link_calls()
        self._solve()
        self._emit_records()

    def _resolve_target(
        self, module_key: str, caller: str, sym: Optional[Sequence[object]]
    ) -> Optional[Node]:
        if not sym:
            return None
        resolved = self._resolve(module_key, caller, sym)
        if resolved is not None:
            node = (resolved[0][0], resolved[0][1])
            if node in self.nodes:
                return node
        if sym[0] == "self" and "." in caller:
            sibling = (module_key, caller.rsplit(".", 1)[0] + "." + str(sym[1]))
            if sibling in self.nodes:
                return sibling
        if sym[0] == "name":
            direct = (module_key, str(sym[1]))
            if direct in self.nodes:
                return direct
        return None

    def _link_calls(self) -> None:
        for node, record in self.nodes.items():
            module_key, qualname = node
            targets: List[Tuple[Dict[str, object], Node]] = []
            for call in record.get("calls", []):  # type: ignore[union-attr]
                target = self._resolve_target(module_key, qualname, call["sym"])
                if target is not None and target != node:
                    targets.append((call, target))
            if targets:
                self._call_targets[node] = targets

    # -- the hierarchy -----------------------------------------------------

    def _is_subtype(self, child: str, ancestor: str) -> bool:
        if child == ancestor:
            return True
        seen: Set[str] = set()
        stack = [child]
        while stack:
            current = stack.pop()
            for parent in self._parents.get(current, ()):
                if parent == ancestor:
                    return True
                if parent not in seen:
                    seen.add(parent)
                    stack.append(parent)
        return False

    def _catches(self, caught: Sequence[str], exc: str) -> bool:
        """Would a handler with these caught types stop ``exc``?"""
        if not caught:
            return True  # bare except
        for caught_type in caught:
            if caught_type == "BaseException":
                return True
            if self._is_subtype(exc, caught_type):
                return True
            if caught_type == "Exception":
                # Unknown types are assumed Exception-derived unless they
                # chain into the BaseException-only family.
                if exc not in _NON_EXCEPTION and not any(
                    self._is_subtype(exc, base) for base in _NON_EXCEPTION
                ):
                    return True
        return False

    # -- the fixpoint ------------------------------------------------------

    def _dispatch(
        self,
        node: Node,
        types: Sequence[str],
        guards: Sequence[Sequence[int]],
        origin: Tuple[str, int, Optional[Node]],
    ) -> bool:
        handlers = self.nodes[node].get("handlers", [])
        changed = False
        for exc in types:
            delivered: Optional[int] = None
            for group in guards:
                for hid in group:
                    try:
                        caught = handlers[hid]["types"]  # type: ignore[index]
                    except (IndexError, TypeError, KeyError):
                        continue
                    if self._catches(caught, exc):
                        delivered = hid
                        break
                if delivered is not None:
                    break
            if delivered is not None:
                bucket = self.incoming.setdefault((node, delivered), set())
                if exc not in bucket:
                    bucket.add(exc)
                    changed = True
            else:
                escaped = self.raises_out.setdefault(node, set())
                if exc not in escaped:
                    escaped.add(exc)
                    self.origins.setdefault((node, exc), origin)
                    changed = True
        return changed

    def _solve(self) -> None:
        for _ in range(self._MAX_PASSES):
            changed = False
            for node in sorted(self.nodes):
                record = self.nodes[node]
                for entry in record.get("raises", []):  # type: ignore[union-attr]
                    exc_type = entry.get("type")
                    guards = entry.get("guards", [])
                    line = int(entry.get("line", 0))
                    if exc_type is not None:
                        changed |= self._dispatch(
                            node, [str(exc_type)], guards, ("raise", line, None)
                        )
                    elif "handler" in entry:
                        received = self.incoming.get((node, int(entry["handler"])), set())
                        changed |= self._dispatch(
                            node, sorted(received), guards, ("reraise", line, None)
                        )
                for call, target in self._call_targets.get(node, []):
                    propagated = self.raises_out.get(target)
                    if not propagated:
                        continue
                    line = int(call.get("line", 0))
                    changed |= self._dispatch(
                        node, sorted(propagated), call.get("guards", []),
                        ("call", line, target),
                    )
            if not changed:
                break

    # -- results -----------------------------------------------------------

    def may_raise(self, module_key: str, qualname: str) -> frozenset:
        """The project-raised exception types escaping one function."""
        return frozenset(self.raises_out.get((module_key, qualname), set()))

    def _emit_records(self) -> None:
        for node in sorted(self.nodes):
            module_key, qualname = node
            for handler in self.nodes[node].get("handlers", []):  # type: ignore[union-attr]
                caught = handler.get("types", [])
                broad = not caught or bool(set(caught) & _BROAD)
                if not broad or handler.get("reraises") or handler.get("uses"):
                    continue
                if handler.get("silent"):
                    continue  # CW107's per-file finding owns the silent shape
                received = self.incoming.get((node, int(handler["id"])), set())
                if not received:
                    continue
                self._records.setdefault(module_key, []).append(
                    {
                        "rule": "CW803",
                        "line": int(handler["line"]),
                        "col": int(handler["col"]),
                        "func": qualname,
                        "caught": list(caught) or ["<bare>"],
                        "types": sorted(received),
                    }
                )
        for records in self._records.values():
            records.sort(key=lambda r: (r["line"], r["col"]))

    def records_for(self, module_key: str) -> List[Dict[str, object]]:
        """The CW803 finding records anchored in one module."""
        return self._records.get(module_key, [])

    def dep_digest(self, module_key: str) -> str:
        """Digest folded into the per-file cache dep-key.

        Covers both the module's CW803 records *and* its functions'
        may-raise sets: the latter feed the resource-lifetime analysis of
        every caller, so a change here must re-lint dependents.
        """
        payload = json.dumps(
            {
                "records": self.records_for(module_key),
                "raises": {
                    qualname: sorted(self.raises_out.get((module_key, qualname), set()))
                    for (mod, qualname) in self.nodes
                    if mod == module_key
                },
            },
            sort_keys=True,
            separators=(",", ":"),
            default=str,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- the --raises explain mode ----------------------------------------

    def find_symbol(self, symbol: str) -> Optional[Node]:
        """``module:qualname`` (or ``module.qualname``) → a known node."""
        if ":" in symbol:
            module_key, _, qualname = symbol.partition(":")
            node = (module_key, qualname)
            return node if node in self.nodes else None
        parts = symbol.split(".")
        for split in range(len(parts) - 1, 0, -1):
            node = (".".join(parts[:split]), ".".join(parts[split:]))
            if node in self.nodes:
                return node
        return None

    def render_chain(self, symbol: str) -> str:
        """The inferred propagation chain behind one function's raises."""
        node = self.find_symbol(symbol)
        if node is None:
            known = ", ".join(sorted({mod for mod, _ in self.nodes})[:8])
            return (
                f"--raises: unknown symbol {symbol!r} "
                f"(use module:qualname; modules include {known}, ...)"
            )
        lines = [f"{node[0]}:{node[1]}"]
        escaped = sorted(self.raises_out.get(node, set()))
        if not escaped:
            lines.append("  no propagated project exceptions inferred")
            return "\n".join(lines)
        for exc in escaped:
            lines.append(f"  may raise {exc}")
            current = node
            for _ in range(32):  # provenance chains are acyclic but bounded anyway
                origin = self.origins.get((current, exc))
                if origin is None:
                    break
                kind, line, target = origin
                if kind == "call" and target is not None:
                    lines.append(
                        f"    via call at {current[0]}:{current[1]} line {line}"
                        f" -> {target[0]}:{target[1]}"
                    )
                    current = target
                    continue
                verb = "re-raised" if kind == "reraise" else "raised"
                lines.append(f"    {verb} at {current[0]}:{current[1]} line {line}")
                break
        return "\n".join(lines)
