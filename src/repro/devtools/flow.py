"""The flow-aware core of crowdlint: per-function CFG + reaching definitions.

PR-1 rules were purely syntactic — they looked at one node at a time.  The
CW2xx/CW3xx/CW4xx packs need to reason about *values*: is the thing being
iterated a ``set``?  does this ``time.time()`` result end up in returned
data?  which function definition does the name handed to ``ordered_map``
actually denote?  This module answers those questions with three pieces:

* a **control-flow graph** per function (and one for the module body) built
  from the AST — basic blocks of statements with successor edges for
  ``if``/loops/``try``;
* classic **reaching definitions** over that CFG (gen/kill worklist to a
  fixpoint, then a linear replay to get the definition set at the entry of
  every individual statement);
* **call-site resolution** inside a module: a ``Name`` callee resolves
  through its reaching definitions to the module-level ``def``, ``lambda``
  or ``functools.partial`` expression it denotes, when that is unambiguous.

The analysis is deliberately intraprocedural and conservative: when a name
has several reaching definitions a rule only gets a property (set-likeness,
picklability, ...) if *every* definition agrees, and an unresolvable value
yields "don't know", which rules must treat as "don't flag".  Like the rest
of ``repro.devtools`` this is stdlib-only and never imports the code it
analyzes.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Definition",
    "FlowGraph",
    "ModuleFlow",
]


class Definition:
    """One binding of a name: where it happened and (if known) to what.

    ``kind`` is one of ``"assign"`` (``value`` is the RHS expression),
    ``"aug"`` (``value`` is the augmenting operand), ``"def"``/``"class"``
    (``value`` is the ``FunctionDef``/``ClassDef`` node itself), ``"import"``
    (``value`` is the ``Import``/``ImportFrom`` statement), or one of the
    opaque binders ``"param"``, ``"for"``, ``"with"``, ``"except"``,
    ``"unpack"``, ``"comp"`` (a comprehension target), ``"global"`` where
    the bound value is unknowable statically (``value`` is ``None``).

    Walrus assignments (``x := expr``) anywhere in a statement's expressions
    count as ``"assign"`` bindings of that statement — except inside nested
    ``lambda`` bodies, which are their own scope.
    """

    __slots__ = ("name", "kind", "value", "stmt")

    def __init__(self, name: str, kind: str, value: Optional[ast.AST], stmt: ast.stmt):
        self.name = name
        self.kind = kind
        self.value = value
        self.stmt = stmt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        line = getattr(self.stmt, "lineno", "?")
        return f"Definition({self.name!r}, {self.kind}, line {line})"


def _definitions_of(stmt: ast.stmt) -> List[Definition]:
    """The name bindings a single statement generates (its *gen* set)."""
    defs: List[Definition] = []

    def bind_target(target: ast.expr, kind: str, value: Optional[ast.AST]) -> None:
        if isinstance(target, ast.Name):
            defs.append(Definition(target.id, kind, value, stmt))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                bind_target(element, "unpack", None)
        elif isinstance(target, ast.Starred):
            bind_target(target.value, "unpack", None)
        # Attribute/Subscript targets bind no *name*.

    if isinstance(stmt, ast.Assign):
        single = len(stmt.targets) == 1
        for target in stmt.targets:
            bind_target(target, "assign" if single else "unpack",
                        stmt.value if single else None)
    elif isinstance(stmt, ast.AnnAssign):
        if stmt.value is not None:
            bind_target(stmt.target, "assign", stmt.value)
    elif isinstance(stmt, ast.AugAssign):
        bind_target(stmt.target, "aug", stmt.value)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        bind_target(stmt.target, "for", None)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                bind_target(item.optional_vars, "with", None)
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name.split(".")[0]
            defs.append(Definition(bound, "import", stmt, stmt))
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        defs.append(Definition(stmt.name, "def", stmt, stmt))
    elif isinstance(stmt, ast.ClassDef):
        defs.append(Definition(stmt.name, "class", stmt, stmt))
    elif isinstance(stmt, ast.Global):
        for name in stmt.names:
            defs.append(Definition(name, "global", None, stmt))
    # Walrus assignments bind in the enclosing function/module scope, even
    # from inside comprehensions (PEP 572) — but not from nested def/lambda
    # bodies, which are their own scope (and def/class statements only bind
    # their name here; their bodies are other graphs' business).
    if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        for walrus in _walrus_targets(stmt):
            defs.append(Definition(walrus.target.id, "assign", walrus.value, stmt))
    return defs


def _walrus_targets(node: ast.AST) -> Iterator[ast.NamedExpr]:
    """Every ``NamedExpr`` under ``node`` outside nested function scopes."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(child, ast.NamedExpr) and isinstance(child.target, ast.Name):
            yield child
        yield from _walrus_targets(child)


class _Block:
    """A basic block: a run of statements with successor edges."""

    __slots__ = ("index", "stmts", "succs")

    def __init__(self, index: int):
        self.index = index
        self.stmts: List[ast.stmt] = []
        self.succs: Set[int] = set()


class FlowGraph:
    """CFG + reaching definitions for one statement list (function or module).

    Nested function/class bodies are *not* descended into — each function
    gets its own :class:`FlowGraph` via :meth:`ModuleFlow.graph_for`; the
    enclosing graph only sees the ``def`` as a binding of its name.
    """

    def __init__(self, body: Sequence[ast.stmt], params: Sequence[str] = ()):
        self._blocks: List[_Block] = []
        #: Memoized gen sets — Definition identity is what makes the
        #: fixpoint comparison in ``_solve`` terminate.
        self._gen_cache: Dict[int, List[Definition]] = {}
        self._entry_defs: Dict[str, Set[Definition]] = {}
        for name in params:
            marker = ast.Pass()  # synthetic anchor; never looked up by stmt
            self._entry_defs[name] = {Definition(name, "param", None, marker)}
        self._loop_stack: List[Tuple[int, int]] = []  # (header, after) blocks
        entry = self._new_block()
        exits = self._build(list(body), entry)
        # A synthetic exit keeps the worklist simple; nothing reads it.
        exit_block = self._new_block()
        for block in exits:
            block.succs.add(exit_block.index)
        self._reach_in: Dict[int, Dict[str, Set[Definition]]] = {}
        self._solve()

    # ------------------------------------------------------- CFG construction

    def _new_block(self) -> _Block:
        block = _Block(len(self._blocks))
        self._blocks.append(block)
        return block

    def _build(self, body: List[ast.stmt], current: _Block) -> List[_Block]:
        """Append ``body`` after ``current``; return the open exit blocks."""
        open_blocks = [current]
        for stmt in body:
            # Every statement is anchored in exactly one block (branch/loop
            # headers live in the block where their test is evaluated).
            if len(open_blocks) != 1:
                joined = self._new_block()
                for block in open_blocks:
                    block.succs.add(joined.index)
                open_blocks = [joined]
            block = open_blocks[0]
            block.stmts.append(stmt)
            if isinstance(stmt, ast.If):
                then_entry = self._new_block()
                block.succs.add(then_entry.index)
                then_exits = self._build(stmt.body, then_entry)
                if stmt.orelse:
                    else_entry = self._new_block()
                    block.succs.add(else_entry.index)
                    else_exits = self._build(stmt.orelse, else_entry)
                else:
                    else_exits = [block]
                open_blocks = then_exits + else_exits
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                # The loop header gets its own block: the back edge must
                # re-enter at the test/target, not replay whatever straight-
                # line statements happened to precede the loop (those would
                # kill definitions flowing around the back edge).
                block.stmts.pop()
                header = self._new_block()
                header.stmts.append(stmt)
                block.succs.add(header.index)
                after = self._new_block()
                body_entry = self._new_block()
                header.succs.add(body_entry.index)
                header.succs.add(after.index)  # zero-iteration path
                self._loop_stack.append((header.index, after.index))
                body_exits = self._build(stmt.body, body_entry)
                self._loop_stack.pop()
                for exit_block in body_exits:
                    exit_block.succs.add(header.index)  # back edge
                if stmt.orelse:
                    else_entry = self._new_block()
                    header.succs.add(else_entry.index)
                    for exit_block in self._build(stmt.orelse, else_entry):
                        exit_block.succs.add(after.index)
                open_blocks = [after]
            elif isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
                # Pessimistic: the body may abort anywhere, so every handler
                # is reachable both from before and after the body.
                body_entry = self._new_block()
                block.succs.add(body_entry.index)
                body_exits = self._build(stmt.body, body_entry)
                tails: List[_Block] = []
                if stmt.orelse:
                    else_entry = self._new_block()
                    for exit_block in body_exits:
                        exit_block.succs.add(else_entry.index)
                    tails.extend(self._build(stmt.orelse, else_entry))
                else:
                    tails.extend(body_exits)
                for handler in stmt.handlers:
                    handler_entry = self._new_block()
                    block.succs.add(handler_entry.index)
                    for exit_block in body_exits:
                        exit_block.succs.add(handler_entry.index)
                    if handler.name:
                        # Anchor the ``except ... as name`` binding on the
                        # handler node itself (see ``_apply``).
                        handler_entry.stmts.append(handler)
                    tails.extend(self._build(handler.body, handler_entry))
                if stmt.finalbody:
                    final_entry = self._new_block()
                    for tail in tails:
                        tail.succs.add(final_entry.index)
                    tails = self._build(stmt.finalbody, final_entry)
                open_blocks = tails
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                body_entry = self._new_block()
                block.succs.add(body_entry.index)
                open_blocks = self._build(stmt.body, body_entry)
            elif isinstance(stmt, (ast.Return, ast.Raise)):
                open_blocks = [self._new_block()]  # dead fallthrough
            elif isinstance(stmt, ast.Break):
                if self._loop_stack:
                    block.succs.add(self._loop_stack[-1][1])
                open_blocks = [self._new_block()]
            elif isinstance(stmt, ast.Continue):
                if self._loop_stack:
                    block.succs.add(self._loop_stack[-1][0])
                open_blocks = [self._new_block()]
        return open_blocks

    # ------------------------------------------------- reaching definitions

    def _gen(self, stmt: ast.stmt) -> List[Definition]:
        cached = self._gen_cache.get(id(stmt))
        if cached is None:
            if isinstance(stmt, ast.ExceptHandler):  # synthetic handler anchor
                cached = (
                    [Definition(stmt.name, "except", None, stmt)]
                    if stmt.name
                    else []
                )
            else:
                cached = _definitions_of(stmt)
            self._gen_cache[id(stmt)] = cached
        return cached

    def _apply(self, defs: Dict[str, Set[Definition]], stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    defs.pop(target.id, None)
            return
        for definition in self._gen(stmt):
            if definition.kind == "global":
                # ``global x`` means later assignments hit module scope; for
                # lookup purposes the name now *has no local definition*, so
                # resolution falls through to module scope.
                defs.pop(definition.name, None)
            else:
                defs[definition.name] = {definition}

    def _solve(self) -> None:
        n = len(self._blocks)
        ins: List[Dict[str, Set[Definition]]] = [{} for _ in range(n)]
        outs: List[Dict[str, Set[Definition]]] = [{} for _ in range(n)]
        ins[0] = {name: set(defs) for name, defs in self._entry_defs.items()}
        preds: List[Set[int]] = [set() for _ in range(n)]
        for block in self._blocks:
            for succ in block.succs:
                preds[succ].add(block.index)
        worklist = list(range(n))
        while worklist:
            index = worklist.pop()
            merged: Dict[str, Set[Definition]] = (
                {name: set(defs) for name, defs in self._entry_defs.items()}
                if index == 0
                else {}
            )
            for pred in preds[index]:
                for name, defs in outs[pred].items():
                    merged.setdefault(name, set()).update(defs)
            ins[index] = merged
            out: Dict[str, Set[Definition]] = {
                name: set(defs) for name, defs in merged.items()
            }
            for stmt in self._blocks[index].stmts:
                self._apply(out, stmt)
            if out != outs[index]:
                outs[index] = out
                worklist.extend(self._blocks[index].succs)
        # Replay each block linearly to anchor a definition map on every
        # individual statement's entry.
        for block in self._blocks:
            state = {name: set(defs) for name, defs in ins[block.index].items()}
            for stmt in block.stmts:
                self._reach_in[id(stmt)] = {
                    name: set(defs) for name, defs in state.items()
                }
                self._apply(state, stmt)

    # ---------------------------------------------------------------- queries

    def knows(self, stmt: ast.stmt) -> bool:
        """Whether ``stmt`` is anchored in this graph."""
        return id(stmt) in self._reach_in

    def definitions_at(self, stmt: ast.stmt, name: str) -> Set[Definition]:
        """The definitions of ``name`` that may reach the entry of ``stmt``."""
        return set(self._reach_in.get(id(stmt), {}).get(name, ()))

    def statements(self) -> Iterator[ast.stmt]:
        for block in self._blocks:
            yield from block.stmts


def _is_main_guard(stmt: ast.stmt) -> bool:
    """``if __name__ == "__main__":`` — runtime code, not import-time code."""
    if not isinstance(stmt, ast.If) or not isinstance(stmt.test, ast.Compare):
        return False
    left = stmt.test.left
    return isinstance(left, ast.Name) and left.id == "__name__"


class ModuleFlow:
    """Whole-module flow facts: parents, scopes, per-function graphs.

    Built lazily by :class:`~repro.devtools.engine.FileContext` the first
    time a flow-aware rule asks for it; purely syntactic rules never pay
    for it.
    """

    def __init__(self, tree: ast.Module):
        self.tree = tree
        self.parents: Dict[ast.AST, ast.AST] = {}
        self._func_of: Dict[ast.AST, Optional[ast.AST]] = {}
        self._collect(tree, None)
        self._graphs: Dict[int, FlowGraph] = {}
        self.module_graph = FlowGraph(tree.body)
        #: Every top-level binding of each name, in source order (the
        #: flow-insensitive module scope used as the fallback resolver).
        #: Shares Definition identity with the module graph so membership
        #: tests across the two APIs agree.
        self.module_defs: Dict[str, List[Definition]] = {}
        for stmt in self.module_graph.statements():
            for definition in self.module_graph._gen(stmt):
                self.module_defs.setdefault(definition.name, []).append(definition)

    def _collect(self, node: ast.AST, func: Optional[ast.AST]) -> None:
        for child in ast.iter_child_nodes(node):
            self.parents[child] = node
            self._func_of[child] = func
            child_scope = (
                child
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
                else func
            )
            self._collect(child, child_scope)

    # -------------------------------------------------------------- anchors

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """The innermost ``def``/``lambda`` containing ``node``, if any."""
        return self._func_of.get(node)

    def enclosing_statement(self, node: ast.AST) -> Optional[ast.stmt]:
        """The nearest ancestor (or self) that is a statement."""
        current: Optional[ast.AST] = node
        while current is not None and not isinstance(current, ast.stmt):
            current = self.parents.get(current)
        return current

    def graph_for(self, func: ast.AST) -> FlowGraph:
        """The (cached) flow graph of one function."""
        graph = self._graphs.get(id(func))
        if graph is None:
            params = [arg.arg for arg in _all_args(func.args)]
            body = func.body if isinstance(func.body, list) else []
            graph = FlowGraph(body, params=params)
            self._graphs[id(func)] = graph
        return graph

    # ------------------------------------------------------------ resolution

    def definitions_for(self, name_node: ast.Name) -> Set[Definition]:
        """The definitions that may reach this ``Name`` use.

        Function-local reaching definitions first; when the function knows
        nothing about the name (a true global read), module scope answers
        with *every* top-level binding of the name — flow-insensitive but
        safe, since rules require all definitions to agree anyway.
        """
        comp_def = self._comprehension_binding(name_node)
        if comp_def is not None:
            return {comp_def}
        stmt = self.enclosing_statement(name_node)
        func = self.enclosing_function(name_node)
        while func is not None and stmt is not None:
            if isinstance(func, ast.Lambda):
                # Lambda bodies anchor no statements, so the graph lookup
                # below cannot see their parameters; resolve them here lest
                # the name leak through to an unrelated outer binding.
                params = {arg.arg for arg in _all_args(func.args)}
                if name_node.id in params:
                    return {Definition(name_node.id, "param", None, ast.Pass())}
                func = self.enclosing_function(func)
                continue
            graph = self.graph_for(func)
            anchored = stmt
            while anchored is not None and not graph.knows(anchored):
                anchored = self.enclosing_statement(self.parents.get(anchored))
            if anchored is not None:
                defs = graph.definitions_at(anchored, name_node.id)
                if defs:
                    return defs
            func = self.enclosing_function(func)
        if stmt is not None and self.module_graph.knows(stmt):
            defs = self.module_graph.definitions_at(stmt, name_node.id)
            if defs:
                return defs
        return set(self.module_defs.get(name_node.id, ()))

    def _comprehension_binding(self, name_node: ast.Name) -> Optional[Definition]:
        """An opaque ``"comp"`` definition when a comprehension target shadows
        this use.

        Comprehensions are their own scope in Python 3: ``[x for x in xs]``
        must not resolve the inner ``x`` to some module-level ``x``.  The
        first generator's *iterable* is evaluated in the enclosing scope, so
        a use inside it is exempt from the shadow.
        """
        path = {id(name_node)}
        current: Optional[ast.AST] = self.parents.get(name_node)
        while current is not None and not isinstance(current, ast.stmt):
            if isinstance(
                current, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                inside_first_iter = id(current.generators[0].iter) in path
                if not inside_first_iter and any(
                    name_node.id in _target_names(gen.target)
                    for gen in current.generators
                ):
                    return Definition(name_node.id, "comp", None, ast.Pass())
            path.add(id(current))
            current = self.parents.get(current)
        return None

    def sole_definition(self, name_node: ast.Name) -> Optional[Definition]:
        """The single definition reaching a use, or ``None`` if ambiguous."""
        defs = self.definitions_for(name_node)
        if len(defs) == 1:
            return next(iter(defs))
        return None

    def resolve_callable(self, node: ast.AST, depth: int = 4) -> Optional[ast.AST]:
        """Resolve an expression denoting a callable to its defining node.

        Returns a ``FunctionDef`` / ``Lambda`` / ``functools.partial``
        ``Call`` node, or ``None`` when the value cannot be pinned down
        (attribute access, ambiguous definitions, imports, ...).
        """
        if depth <= 0:
            return None
        if isinstance(node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
        if isinstance(node, ast.Call):
            return node  # partial(...)-style wrapper; callers unwrap
        if isinstance(node, ast.Name):
            definition = self.sole_definition(node)
            if definition is None:
                return None
            if definition.kind == "def":
                return definition.value
            if definition.kind == "assign" and definition.value is not None:
                return self.resolve_callable(definition.value, depth - 1)
        return None

    def uses_of(self, definition: Definition) -> List[ast.Name]:
        """Every ``Name`` load this definition may reach."""
        func = self.enclosing_function(definition.stmt)
        region: ast.AST = func if func is not None else self.tree
        uses: List[ast.Name] = []
        for node in ast.walk(region):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id == definition.name
                and definition in self.definitions_for(node)
            ):
                uses.append(node)
        return uses

    def module_toplevel_calls(self) -> Iterator[ast.Call]:
        """Calls executed at import time (module body, class bodies, guards).

        Skips function bodies and the ``if __name__ == "__main__"`` block —
        those run at call/run time, not import time.
        """
        def walk_stmts(stmts: Sequence[ast.stmt]) -> Iterator[ast.Call]:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if _is_main_guard(stmt):
                    continue
                if isinstance(stmt, ast.ClassDef):
                    yield from walk_stmts(stmt.body)
                    continue
                if isinstance(stmt, (ast.If, ast.Try, ast.For, ast.While,
                                     ast.With)):
                    for child in ast.iter_child_nodes(stmt):
                        if isinstance(child, ast.stmt):
                            yield from walk_stmts([child])
                        elif isinstance(child, ast.ExceptHandler):
                            yield from walk_stmts(child.body)
                        elif isinstance(child, ast.expr):
                            for sub in ast.walk(child):
                                if isinstance(sub, ast.Call):
                                    yield sub
                    continue
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Call):
                        yield node

        yield from walk_stmts(self.tree.body)


def _target_names(target: ast.expr) -> Set[str]:
    """The plain names a (possibly nested tuple) assignment target binds."""
    names: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


def _all_args(arguments: ast.arguments) -> List[ast.arg]:
    args = list(getattr(arguments, "posonlyargs", [])) + list(arguments.args)
    if arguments.vararg:
        args.append(arguments.vararg)
    args.extend(arguments.kwonlyargs)
    if arguments.kwarg:
        args.append(arguments.kwarg)
    return args
