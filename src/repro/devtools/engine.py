"""The crowdlint engine: rule registry, per-file visitor dispatch, suppression.

Design
------
A :class:`Rule` subclass declares ``visit_<NodeType>`` methods (same naming
scheme as :class:`ast.NodeVisitor`) and/or a ``check_module`` hook that sees
the whole file at once.  The engine instantiates every enabled rule per file,
collects the visitor methods into a single dispatch table, and walks the AST
**once** — so adding rules does not add tree traversals.

Findings are reported through :meth:`FileContext.report` and filtered against
suppression pragmas before they leave the engine.  Pragmas are read from real
comment tokens only (``tokenize``), so pragma-shaped text inside strings and
docstrings — like the examples right here — is inert:

* ``# crowdlint: disable=CW101`` on a flagged line suppresses that rule there;
* ``# crowdlint: disable=all`` suppresses every rule on that line;
* ``# crowdlint: disable-file=CW105`` anywhere in the file suppresses the rule
  for the whole file.

The engine is stdlib-only on purpose (see package docstring).
"""

from __future__ import annotations

import ast
import concurrent.futures
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Edit",
    "Finding",
    "Fix",
    "FileContext",
    "LintCacheProtocol",
    "LintEngine",
    "LintStats",
    "Rule",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "module_name_for",
    "register",
    "rule_registry",
]

#: Matches one suppression pragma; a line may carry several.
_PRAGMA_RE = re.compile(r"#\s*crowdlint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Edit:
    """One exact-span source patch: replace ``source[start:end]`` with text."""

    start: int
    end: int
    replacement: str


@dataclass(frozen=True)
class Fix:
    """A safe rewrite for one finding: non-overlapping edits plus a note."""

    edits: Tuple[Edit, ...]
    note: str = ""

    @property
    def start(self) -> int:
        return min(edit.start for edit in self.edits)

    @property
    def end(self) -> int:
        return max(edit.end for edit in self.edits)


@dataclass(frozen=True, order=True)
class Finding:
    """One lint finding, sortable into stable (path, line, col, rule) order.

    ``fix`` (when present) is the rule's safe rewrite, applied by
    ``crowdweb-lint --fix``; ``severity`` is ``"warning"`` or ``"error"``
    (rules escalate hot-path findings).  Neither participates in ordering
    or equality.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    fix: Optional[Fix] = field(default=None, compare=False)
    severity: str = field(default="warning", compare=False)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
            "severity": self.severity,
            "fixable": self.fix is not None,
        }

    # ------------------------------------------------ cache serialization

    def to_cache_dict(self) -> Dict[str, object]:
        payload = self.as_dict()
        del payload["fixable"]
        if self.fix is not None:
            payload["fix"] = {
                "note": self.fix.note,
                "edits": [[e.start, e.end, e.replacement] for e in self.fix.edits],
            }
        return payload

    @classmethod
    def from_cache_dict(cls, payload: Dict[str, object]) -> "Finding":
        fix = None
        raw_fix = payload.get("fix")
        if raw_fix:
            fix = Fix(
                edits=tuple(Edit(int(s), int(e), str(r)) for s, e, r in raw_fix["edits"]),
                note=str(raw_fix.get("note", "")),
            )
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),
            col=int(payload["col"]),
            rule_id=str(payload["rule"]),
            message=str(payload["message"]),
            fix=fix,
            severity=str(payload.get("severity", "warning")),
        )


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` (``CW1xx``), ``name`` (kebab-case slug) and
    ``description`` and implement any combination of ``visit_<NodeType>``
    methods and ``check_module``.
    """

    id: str = ""
    name: str = ""
    description: str = ""
    #: Whether the rule can attach a safe rewrite to (some of) its findings.
    fixable: bool = False
    #: Whether the rule consumes whole-program facts (``ctx.project``).  The
    #: engine builds the project analysis only when a selected rule needs it,
    #: so per-file-only runs never pay for summary extraction.
    requires_project: bool = False

    def check_module(self, ctx: "FileContext") -> None:
        """Optional whole-module hook, called once per file before the walk."""

    def visitor_methods(self) -> Iterable[Tuple[str, object]]:
        for attr in dir(self):
            if attr.startswith("visit_"):
                yield attr[len("visit_"):], getattr(self, attr)


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id or not cls.name:
        raise ValueError(f"rule {cls.__name__} must define id and name")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def rule_registry() -> Dict[str, Type[Rule]]:
    """The registry, with the built-in rules imported on first use."""
    from . import rules  # noqa: F401  (importing registers the built-ins)

    return dict(_REGISTRY)


def all_rules() -> List[Type[Rule]]:
    return [_REGISTRY[rule_id] for rule_id in sorted(rule_registry())]


def get_rule(rule_id: str) -> Type[Rule]:
    try:
        return rule_registry()[rule_id.upper()]
    except KeyError:
        raise KeyError(f"unknown rule id {rule_id!r}") from None


class FileContext:
    """Everything a rule can see about the file under analysis."""

    def __init__(
        self,
        source: str,
        path: str,
        module: Optional[str],
        tree: ast.Module,
        project: Optional[object] = None,
    ):
        self.source = source
        self.path = path
        #: Dotted module name (``repro.crowd.sync``) or ``None`` when the file
        #: is outside any importable package (e.g. a loose script).
        self.module = module
        self.tree = tree
        #: Whole-program facts (a ``callgraph.ProjectAnalysis``) when the run
        #: built them; ``None`` on per-file-only runs, so project rules must
        #: no-op without it.
        self.project = project
        self.lines = source.splitlines()
        self.findings: List[Finding] = []
        self._line_disables, self._file_disables = _parse_pragmas(source)
        self._flow = None
        self._line_offsets: Optional[List[int]] = None

    @property
    def is_init(self) -> bool:
        return Path(self.path).name == "__init__.py"

    @property
    def module_key(self) -> str:
        """The module's key in the project analysis (dotted name or path)."""
        return self.module or self.path

    @property
    def flow(self):
        """Whole-module flow facts, built on first use (see ``flow.py``).

        Purely syntactic rules never touch this, so they never pay for the
        CFG construction.
        """
        if self._flow is None:
            from .flow import ModuleFlow  # deferred: most files need no flow

            self._flow = ModuleFlow(self.tree)
        return self._flow

    # ------------------------------------------------------ source spans

    def _offsets(self) -> List[int]:
        if self._line_offsets is None:
            offsets = [0]
            for line in self.source.splitlines(keepends=True):
                offsets.append(offsets[-1] + len(line))
            self._line_offsets = offsets
        return self._line_offsets

    def offset(self, line: int, col: int) -> int:
        """Character offset of a (1-based line, 0-based col) position."""
        return self._offsets()[line - 1] + col

    def span(self, node: ast.AST) -> Tuple[int, int]:
        """The exact ``[start, end)`` character span of a node."""
        return (
            self.offset(node.lineno, node.col_offset),
            self.offset(node.end_lineno, node.end_col_offset),
        )

    def text(self, node: ast.AST) -> str:
        """The exact source text of a node."""
        start, end = self.span(node)
        return self.source[start:end]

    def report(
        self,
        rule: Rule,
        node: ast.AST,
        message: str,
        fix: Optional[Fix] = None,
        severity: str = "warning",
    ) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        self.findings.append(
            Finding(self.path, line, col, rule.id, message, fix=fix, severity=severity)
        )

    def suppressed(self, finding: Finding) -> bool:
        if _matches(self._file_disables, finding.rule_id):
            return True
        return _matches(self._line_disables.get(finding.line, frozenset()), finding.rule_id)


def _iter_comments(source: str) -> Iterable[Tuple[int, str]]:
    """(line, text) for every real comment token; strings/docstrings excluded."""
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return  # unparseable tail: CW100 covers it; no pragmas beyond this point


def _parse_pragmas(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    line_disables: Dict[int, Set[str]] = {}
    file_disables: Set[str] = set()
    for lineno, text in _iter_comments(source):
        if "crowdlint" not in text:
            continue
        for kind, spec in _PRAGMA_RE.findall(text):
            ids = {part.strip().upper() for part in spec.split(",") if part.strip()}
            if kind == "disable-file":
                file_disables |= ids
            else:
                line_disables.setdefault(lineno, set()).update(ids)
    return line_disables, file_disables


def _matches(disabled: Iterable[str], rule_id: str) -> bool:
    disabled = set(disabled)
    return "ALL" in disabled or rule_id.upper() in disabled


def module_name_for(path: Path) -> Optional[str]:
    """Infer the dotted module name by walking up through ``__init__.py`` dirs."""
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    current = path.parent
    while (current / "__init__.py").exists():
        parts.insert(0, current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    return ".".join(parts) or None


class LintEngine:
    """Runs a set of rules over files, sources, or directory trees."""

    def __init__(
        self,
        rules: Optional[Sequence[Type[Rule]]] = None,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ):
        chosen = list(rules) if rules is not None else all_rules()
        if select:
            wanted = {rule_id.upper() for rule_id in select}
            chosen = [rule for rule in chosen if rule.id in wanted]
        if ignore:
            unwanted = {rule_id.upper() for rule_id in ignore}
            chosen = [rule for rule in chosen if rule.id not in unwanted]
        self.rules = chosen
        #: Work accounting of the most recent ``lint_paths`` call.
        self.last_stats = LintStats()

    # -- single file -------------------------------------------------------

    def lint_source(
        self,
        source: str,
        path: str = "<string>",
        module: Optional[str] = None,
        project: Optional[object] = None,
    ) -> List[Finding]:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [
                Finding(path, exc.lineno or 1, (exc.offset or 0) or 1, "CW100",
                        f"syntax error: {exc.msg}")
            ]
        ctx = FileContext(source, path, module, tree, project=project)
        instances = [rule_cls() for rule_cls in self.rules]
        dispatch: Dict[str, List[object]] = {}
        for instance in instances:
            instance.check_module(ctx)
            for node_type, method in instance.visitor_methods():
                dispatch.setdefault(node_type, []).append(method)
        if dispatch:
            for node in ast.walk(ctx.tree):
                for method in dispatch.get(type(node).__name__, ()):
                    method(ctx, node)
        return sorted(f for f in ctx.findings if not ctx.suppressed(f))

    def lint_file(self, path: Path) -> List[Finding]:
        path = Path(path)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            return [Finding(str(path), 1, 1, "CW100", f"unreadable file: {exc}")]
        return self.lint_source(source, str(path), module_name_for(path))

    # -- trees -------------------------------------------------------------

    def lint_paths(
        self,
        paths: Iterable[Path],
        jobs: int = 1,
        cache: Optional["LintCacheProtocol"] = None,
    ) -> List[Finding]:
        """Lint every Python file under ``paths``.

        ``jobs > 1`` analyzes cache misses on a ``concurrent.futures``
        process pool (crowdlint stays isolated from ``repro.exec`` per the
        layer DAG, so it drives the pool directly).  ``cache`` is any object
        with the :class:`repro.devtools.cache.LintCache` interface; hits
        skip parsing and analysis entirely.  Either way the result is the
        same sorted finding list, and :attr:`last_stats` records how much
        work was actually done.

        When a selected rule declares ``requires_project``, every file is
        read up front and a whole-program :class:`~repro.devtools.callgraph.
        ProjectAnalysis` is built first (module summaries come from the
        cache when file content is unchanged).  Each file's cache entry is
        then additionally keyed by its :meth:`dep_key` — the digest of the
        call-graph facts its findings can observe — so a warm run re-analyzes
        exactly the files whose content *or* dependencies changed.
        """
        findings: List[Finding] = []
        pending: List[Tuple[str, str, Optional[str]]] = []  # (path, source, module)
        stats = LintStats()
        rule_ids = [rule.id for rule in self.rules]
        sources: List[Tuple[str, str, Optional[str]]] = []
        for file_path in iter_python_files(paths):
            stats.files += 1
            try:
                source = file_path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                findings.append(
                    Finding(str(file_path), 1, 1, "CW100", f"unreadable file: {exc}")
                )
                stats.analyzed += 1
                continue
            sources.append((str(file_path), source, module_name_for(file_path)))

        project = None
        project_data: Optional[Dict[str, object]] = None
        if any(rule.requires_project for rule in self.rules):
            from .callgraph import ProjectAnalysis  # deferred: per-file runs skip it

            project = ProjectAnalysis.build(
                (
                    (path, source, module, Path(path).name == "__init__.py")
                    for path, source, module in sources
                ),
                cache=cache if hasattr(cache, "get_summary") else None,
            )
            stats.summaries_built = project.summaries_built
            stats.summaries_cached = project.summaries_cached

        for path, source, module in sources:
            dep_key = project.dep_key(module or path) if project is not None else ""
            if cache is not None:
                cached = cache.get(source, path, module, rule_ids, extra=dep_key)
                if cached is not None:
                    stats.cache_hits += 1
                    findings.extend(cached)
                    continue
            pending.append((path, source, module))

        stats.analyzed += len(pending)
        if jobs > 1 and len(pending) > 1:
            if project is not None:
                project_data = project.to_dict()
            work = [(source, path, module, rule_ids) for path, source, module in pending]
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=jobs,
                initializer=_init_pool_worker,
                initargs=(project_data,),
            ) as pool:
                analyzed = list(pool.map(_lint_one, work, chunksize=4))
        else:
            analyzed = [
                self.lint_source(source, path, module, project=project)
                for path, source, module in pending
            ]
        for (path, source, module), file_findings in zip(pending, analyzed):
            if cache is not None:
                dep_key = project.dep_key(module or path) if project is not None else ""
                cache.put(source, path, module, rule_ids, file_findings, extra=dep_key)
            findings.extend(file_findings)
        self.last_stats = stats
        return sorted(findings)


@dataclass
class LintStats:
    """How much work one ``lint_paths`` call actually did."""

    files: int = 0
    analyzed: int = 0
    cache_hits: int = 0
    summaries_built: int = 0
    summaries_cached: int = 0


class LintCacheProtocol:
    """Duck-typed interface ``lint_paths`` expects from a cache (see cache.py).

    ``rule_ids`` is the engine's active rule selection; it must participate
    in the entry key, otherwise a ``--select``/``--ignore`` run would replay
    findings cached under a different rule set.  ``extra`` is an opaque key
    component (the project dep-key) with the same invalidation role.
    """

    def get(self, source, path, module, rule_ids, extra=""):  # pragma: no cover
        raise NotImplementedError

    def put(self, source, path, module, rule_ids, findings, extra=""):  # pragma: no cover
        raise NotImplementedError


#: Per-process rehydrated project analysis (see ``_init_pool_worker``).
_POOL_PROJECT = None


def _init_pool_worker(project_data: Optional[Dict[str, object]]) -> None:
    """Pool initializer: rehydrate the solved project analysis once per worker."""
    global _POOL_PROJECT
    if project_data is None:
        _POOL_PROJECT = None
        return
    from .callgraph import ProjectAnalysis

    _POOL_PROJECT = ProjectAnalysis.from_dict(project_data)


def _lint_one(work: Tuple[str, str, Optional[str], List[str]]) -> List[Finding]:
    """Process-pool worker: lint one in-memory source with the given rules."""
    source, path, module, rule_ids = work
    return LintEngine(select=rule_ids).lint_source(
        source, path, module, project=_POOL_PROJECT
    )


_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "build", "dist", ".venv", "venv"}


def iter_python_files(paths: Iterable[Path]) -> Iterable[Path]:
    """Yield ``.py`` files under ``paths`` in sorted order, skipping caches."""
    seen: Set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_file():
            candidates = [path] if path.suffix == ".py" else []
        else:
            candidates = sorted(
                candidate
                for candidate in path.rglob("*.py")
                if not (set(candidate.parts) & _SKIP_DIRS)
                and not any(part.endswith(".egg-info") for part in candidate.parts)
            )
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate
