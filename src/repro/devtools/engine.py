"""The crowdlint engine: rule registry, per-file visitor dispatch, suppression.

Design
------
A :class:`Rule` subclass declares ``visit_<NodeType>`` methods (same naming
scheme as :class:`ast.NodeVisitor`) and/or a ``check_module`` hook that sees
the whole file at once.  The engine instantiates every enabled rule per file,
collects the visitor methods into a single dispatch table, and walks the AST
**once** — so adding rules does not add tree traversals.

Findings are reported through :meth:`FileContext.report` and filtered against
suppression pragmas before they leave the engine.  Pragmas are read from real
comment tokens only (``tokenize``), so pragma-shaped text inside strings and
docstrings — like the examples right here — is inert:

* ``# crowdlint: disable=CW101`` on a flagged line suppresses that rule there;
* ``# crowdlint: disable=all`` suppresses every rule on that line;
* ``# crowdlint: disable-file=CW105`` anywhere in the file suppresses the rule
  for the whole file.

The engine is stdlib-only on purpose (see package docstring).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Finding",
    "FileContext",
    "LintEngine",
    "Rule",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "module_name_for",
    "register",
    "rule_registry",
]

#: Matches one suppression pragma; a line may carry several.
_PRAGMA_RE = re.compile(r"#\s*crowdlint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One lint finding, sortable into stable (path, line, col, rule) order."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` (``CW1xx``), ``name`` (kebab-case slug) and
    ``description`` and implement any combination of ``visit_<NodeType>``
    methods and ``check_module``.
    """

    id: str = ""
    name: str = ""
    description: str = ""

    def check_module(self, ctx: "FileContext") -> None:
        """Optional whole-module hook, called once per file before the walk."""

    def visitor_methods(self) -> Iterable[Tuple[str, object]]:
        for attr in dir(self):
            if attr.startswith("visit_"):
                yield attr[len("visit_"):], getattr(self, attr)


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id or not cls.name:
        raise ValueError(f"rule {cls.__name__} must define id and name")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def rule_registry() -> Dict[str, Type[Rule]]:
    """The registry, with the built-in rules imported on first use."""
    from . import rules  # noqa: F401  (importing registers the built-ins)

    return dict(_REGISTRY)


def all_rules() -> List[Type[Rule]]:
    return [_REGISTRY[rule_id] for rule_id in sorted(rule_registry())]


def get_rule(rule_id: str) -> Type[Rule]:
    try:
        return rule_registry()[rule_id.upper()]
    except KeyError:
        raise KeyError(f"unknown rule id {rule_id!r}") from None


class FileContext:
    """Everything a rule can see about the file under analysis."""

    def __init__(self, source: str, path: str, module: Optional[str], tree: ast.Module):
        self.source = source
        self.path = path
        #: Dotted module name (``repro.crowd.sync``) or ``None`` when the file
        #: is outside any importable package (e.g. a loose script).
        self.module = module
        self.tree = tree
        self.lines = source.splitlines()
        self.findings: List[Finding] = []
        self._line_disables, self._file_disables = _parse_pragmas(source)

    @property
    def is_init(self) -> bool:
        return Path(self.path).name == "__init__.py"

    def report(self, rule: Rule, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        self.findings.append(Finding(self.path, line, col, rule.id, message))

    def suppressed(self, finding: Finding) -> bool:
        if _matches(self._file_disables, finding.rule_id):
            return True
        return _matches(self._line_disables.get(finding.line, frozenset()), finding.rule_id)


def _iter_comments(source: str) -> Iterable[Tuple[int, str]]:
    """(line, text) for every real comment token; strings/docstrings excluded."""
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return  # unparseable tail: CW100 covers it; no pragmas beyond this point


def _parse_pragmas(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    line_disables: Dict[int, Set[str]] = {}
    file_disables: Set[str] = set()
    for lineno, text in _iter_comments(source):
        if "crowdlint" not in text:
            continue
        for kind, spec in _PRAGMA_RE.findall(text):
            ids = {part.strip().upper() for part in spec.split(",") if part.strip()}
            if kind == "disable-file":
                file_disables |= ids
            else:
                line_disables.setdefault(lineno, set()).update(ids)
    return line_disables, file_disables


def _matches(disabled: Iterable[str], rule_id: str) -> bool:
    disabled = set(disabled)
    return "ALL" in disabled or rule_id.upper() in disabled


def module_name_for(path: Path) -> Optional[str]:
    """Infer the dotted module name by walking up through ``__init__.py`` dirs."""
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    current = path.parent
    while (current / "__init__.py").exists():
        parts.insert(0, current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    return ".".join(parts) or None


class LintEngine:
    """Runs a set of rules over files, sources, or directory trees."""

    def __init__(
        self,
        rules: Optional[Sequence[Type[Rule]]] = None,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ):
        chosen = list(rules) if rules is not None else all_rules()
        if select:
            wanted = {rule_id.upper() for rule_id in select}
            chosen = [rule for rule in chosen if rule.id in wanted]
        if ignore:
            unwanted = {rule_id.upper() for rule_id in ignore}
            chosen = [rule for rule in chosen if rule.id not in unwanted]
        self.rules = chosen

    # -- single file -------------------------------------------------------

    def lint_source(
        self, source: str, path: str = "<string>", module: Optional[str] = None
    ) -> List[Finding]:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [
                Finding(path, exc.lineno or 1, (exc.offset or 0) or 1, "CW100",
                        f"syntax error: {exc.msg}")
            ]
        ctx = FileContext(source, path, module, tree)
        instances = [rule_cls() for rule_cls in self.rules]
        dispatch: Dict[str, List[object]] = {}
        for instance in instances:
            instance.check_module(ctx)
            for node_type, method in instance.visitor_methods():
                dispatch.setdefault(node_type, []).append(method)
        if dispatch:
            for node in ast.walk(ctx.tree):
                for method in dispatch.get(type(node).__name__, ()):
                    method(ctx, node)
        return sorted(f for f in ctx.findings if not ctx.suppressed(f))

    def lint_file(self, path: Path) -> List[Finding]:
        path = Path(path)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            return [Finding(str(path), 1, 1, "CW100", f"unreadable file: {exc}")]
        return self.lint_source(source, str(path), module_name_for(path))

    # -- trees -------------------------------------------------------------

    def lint_paths(self, paths: Iterable[Path]) -> List[Finding]:
        findings: List[Finding] = []
        for file_path in iter_python_files(paths):
            findings.extend(self.lint_file(file_path))
        return sorted(findings)


_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "build", "dist", ".venv", "venv"}


def iter_python_files(paths: Iterable[Path]) -> Iterable[Path]:
    """Yield ``.py`` files under ``paths`` in sorted order, skipping caches."""
    seen: Set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_file():
            candidates = [path] if path.suffix == ".py" else []
        else:
            candidates = sorted(
                candidate
                for candidate in path.rglob("*.py")
                if not (set(candidate.parts) & _SKIP_DIRS)
                and not any(part.endswith(".egg-info") for part in candidate.parts)
            )
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate
