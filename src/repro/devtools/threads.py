"""Static race detection for the concurrent serving path (crowdlint v4).

Three stages, mirroring the v3 whole-program pipeline:

1. **Thread-entry discovery.**  Per-module *thread facts* (extracted next to
   the domain summaries, so they ride the same content-addressed cache)
   record every spawn site — ``threading.Thread(target=...)``,
   ``concurrent.futures`` submissions, ``exec.ordered_map`` worker fns,
   executor ``initializer=`` hooks — and every ``BaseHTTPRequestHandler``
   subclass (the classes a ``ThreadingHTTPServer`` drives with one thread
   per request).  Targets resolve through the existing
   :meth:`~repro.devtools.callgraph.ProjectAnalysis.resolve`.

2. **Escape analysis.**  BFS reachability from the roots assigns each
   function a set of *concurrency domains* (``main``, ``handler``,
   ``thread``, ``pool``).  Module globals and ``self`` attributes that are
   **mutated** outside construction and **touched from a thread domain**
   are *shared*: two handler threads already race each other, so a single
   ``handler`` domain counts as concurrent.  ``pool`` (process workers) has
   its own address space and never races ``main`` — divergence there is
   CW303's job, not ours.

3. **Lockset inference.**  ``with <lock>:`` regions and
   ``acquire()``/``release()`` pairs produce per-site held-lock sets;
   held sets propagate interprocedurally through an optimistic entry-lock
   fixpoint (the intersection of every resolved call site's held set, like
   the v3 domain fixpoint).  A shared symbol whose writes are majority-
   guarded by one lock gets that lock as its *guarded-by*; the CW7xx pack
   then reports bare writes (CW701), inconsistently-guarded writes
   (CW702), non-atomic check-then-act on shared dicts (CW703), inconsistent
   lock acquisition order (CW704), and blocking calls under a lock on a
   thread-reachable path (CW705).

Only **writes** anchor findings.  Bare *reads* of a published reference are
idiomatic under the GIL (``get_observer`` returning the module global) and
flagging them would drown the report in noise; reads still contribute
domain evidence and appear in the ``--threads`` listing.

The module is deliberately import-light (``ast`` + stdlib only, nothing
from the rest of ``devtools``) so :mod:`repro.devtools.domains` can call
:func:`extract_thread_facts` without an import cycle.
"""

from __future__ import annotations

import ast
import hashlib
import json
from collections import Counter
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["extract_thread_facts", "ThreadAnalysis"]

#: Bumped when the thread-fact schema changes (facts ride inside the module
#: summaries, so the summary cache and the ruleset fingerprint already
#: invalidate stale entries; this is belt-and-braces for hand-rolled dicts).
THREAD_FORMAT = "1"

DOMAIN_MAIN = "main"          #: code not reachable from any spawn site
DOMAIN_HANDLER = "handler"    #: per-request threads of a ThreadingHTTPServer
DOMAIN_THREAD = "thread"      #: threading.Thread / ThreadPoolExecutor work
DOMAIN_POOL = "pool"          #: process-pool workers (own address space)

#: Domains whose instances share this process's memory *and* run many at
#: once — any access from one of these is concurrent with its twin.
RACY_DOMAINS: FrozenSet[str] = frozenset({DOMAIN_HANDLER, DOMAIN_THREAD})

_LOCK_CTORS = frozenset({"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"})
_MUTABLE_CTORS = frozenset(
    {"dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
)
_MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "update",
    }
)
_HANDLER_BASES = frozenset(
    {
        "BaseHTTPRequestHandler",
        "SimpleHTTPRequestHandler",
        "CGIHTTPRequestHandler",
        "BaseRequestHandler",
        "StreamRequestHandler",
        "DatagramRequestHandler",
    }
)
_THREAD_CTORS = frozenset({"Thread", "Timer"})
_EXECUTOR_CTORS = {
    "ThreadPoolExecutor": DOMAIN_THREAD,
    "ProcessPoolExecutor": DOMAIN_POOL,
}
#: ``repro.exec.ordered_map`` fans work out to a process pool.
_POOL_MAP_FNS = frozenset({"ordered_map"})

#: Blocking calls by qualified attribute chain (CW705 candidates).
_BLOCKING_CHAINS = {
    ("time", "sleep"): "time.sleep",
    ("subprocess", "run"): "subprocess.run",
    ("subprocess", "call"): "subprocess.call",
    ("subprocess", "check_call"): "subprocess.check_call",
    ("subprocess", "check_output"): "subprocess.check_output",
    ("subprocess", "Popen"): "subprocess.Popen",
    ("socket", "create_connection"): "socket.create_connection",
    ("urllib", "request", "urlopen"): "urllib.request.urlopen",
    ("requests", "get"): "requests.get",
    ("requests", "post"): "requests.post",
    ("requests", "request"): "requests.request",
}
#: ``from <module> import <name>`` forms of the same calls.
_BLOCKING_IMPORTS = {
    ("time", "sleep"): "time.sleep",
    ("subprocess", "run"): "subprocess.run",
    ("subprocess", "call"): "subprocess.call",
    ("subprocess", "check_call"): "subprocess.check_call",
    ("subprocess", "check_output"): "subprocess.check_output",
    ("subprocess", "Popen"): "subprocess.Popen",
    ("urllib.request", "urlopen"): "urllib.request.urlopen",
    ("socket", "create_connection"): "socket.create_connection",
}

#: Methods exempt from the shared-write rules: the instance is not yet
#: published while its constructor runs (happens-before the escape).
_CTOR_METHODS = frozenset({"__init__", "__new__", "__post_init__"})


# --------------------------------------------------------------------------
# extraction: one module's thread facts as plain JSON data
# --------------------------------------------------------------------------


def _attr_chain(expr: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` as ``["a", "b", "c"]`` for pure-name chains, else ``None``."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return list(reversed(parts))


def _call_sym(expr: ast.AST) -> Optional[List[object]]:
    """A symbolic callee in the callgraph's resolvable vocabulary."""
    if isinstance(expr, ast.Name):
        return ["name", expr.id]
    if isinstance(expr, ast.Attribute):
        chain = _attr_chain(expr)
        if chain is None:
            return None
        if len(chain) == 2:
            if chain[0] == "self":
                return ["self", chain[1]]
            return ["attr", chain[0], chain[1]]
        return ["dotted", ".".join(chain)]
    return None


def _last_name(expr: ast.AST) -> Optional[str]:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _is_lock_ctor(expr: ast.AST) -> bool:
    return (
        isinstance(expr, ast.Call)
        and _last_name(expr.func) in _LOCK_CTORS
        and not expr.args
        and not expr.keywords
    )


def _is_mutable_value(expr: ast.AST) -> bool:
    if isinstance(expr, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    return isinstance(expr, ast.Call) and _last_name(expr.func) in _MUTABLE_CTORS


def _self_attr(expr: ast.AST) -> Optional[str]:
    """``self.x`` → ``"x"`` (one level only — deeper chains stay opaque)."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


def _scoped_statements(node: ast.AST) -> Iterable[ast.AST]:
    """Every node of one function/module scope, nested scopes excluded."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(child))


class _ModuleInventory:
    """Pass 1: the module-level tables the recording walk consults."""

    def __init__(self) -> None:
        self.module_names: Set[str] = set()
        self.mutable_globals: Dict[str, int] = {}
        self.global_locks: Set[str] = set()
        self.rebound_globals: Set[str] = set()
        self.class_bases: Dict[str, List[str]] = {}
        self.class_attrs: Dict[str, Set[str]] = {}
        self.attr_locks: Dict[str, Set[str]] = {}
        self.handler_classes: Set[str] = set()
        self.blocking_imports: Dict[str, str] = {}

    # -- construction ------------------------------------------------------

    def collect(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Global):
                self.rebound_globals.update(node.names)
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                for alias in node.names:
                    label = _BLOCKING_IMPORTS.get((node.module, alias.name))
                    if label is not None:
                        self.blocking_imports[alias.asname or alias.name] = label
        for stmt in tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                self.module_names.add(target.id)
                if value is None:
                    continue
                if _is_lock_ctor(value):
                    self.global_locks.add(target.id)
                elif _is_mutable_value(value):
                    self.mutable_globals[target.id] = stmt.lineno
        self._scan_classes(tree.body, prefix="")
        self._close_handler_classes()

    def _scan_classes(self, body: Sequence[ast.stmt], prefix: str) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_classes(stmt.body, prefix + stmt.name + ".")
            elif isinstance(stmt, ast.ClassDef):
                path = prefix + stmt.name
                self.class_bases[path] = [
                    name for name in (_last_name(base) for base in stmt.bases) if name
                ]
                self.class_attrs.setdefault(path, set())
                self.attr_locks.setdefault(path, set())
                for child in stmt.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._scan_method_attrs(child, path)
                self._scan_classes(stmt.body, path + ".")

    def _scan_method_attrs(self, method: ast.AST, class_path: str) -> None:
        for node in _scoped_statements(method):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets, value = [node.target], node.value
            for target in targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                self.class_attrs[class_path].add(attr)
                if value is not None and _is_lock_ctor(value):
                    self.attr_locks[class_path].add(attr)

    def _close_handler_classes(self) -> None:
        by_simple_name = {path.rsplit(".", 1)[-1]: path for path in self.class_bases}
        changed = True
        while changed:
            changed = False
            for path, bases in self.class_bases.items():
                if path in self.handler_classes:
                    continue
                for base in bases:
                    if base in _HANDLER_BASES or by_simple_name.get(base) in self.handler_classes:
                        self.handler_classes.add(path)
                        changed = True
                        break

    # -- lookups -----------------------------------------------------------

    def _chase(self, class_path: Optional[str], attr: str, table: Dict[str, Set[str]]) -> Optional[str]:
        """The class (``class_path`` or a base) declaring ``attr``, if any."""
        by_simple_name = {path.rsplit(".", 1)[-1]: path for path in self.class_bases}
        seen: Set[str] = set()
        pending = [class_path] if class_path else []
        while pending:
            path = pending.pop(0)
            if path is None or path in seen:
                continue
            seen.add(path)
            if attr in table.get(path, ()):
                return path
            pending.extend(by_simple_name.get(base) for base in self.class_bases.get(path, []))
        return None

    def lock_class(self, class_path: Optional[str], attr: str) -> Optional[str]:
        return self._chase(class_path, attr, self.attr_locks)

    def attr_class(self, class_path: Optional[str], attr: str) -> Optional[str]:
        return self._chase(class_path, attr, self.class_attrs)


class _FunctionScope:
    """Per-function name tables (locals, global decls, simple aliases)."""

    def __init__(self, fn: ast.AST):
        self.globals_decl: Set[str] = set()
        self.locals: Set[str] = set()
        self.assigns: Dict[str, ast.expr] = {}
        self.executors: Dict[str, str] = {}
        args = getattr(fn, "args", None)
        if args is not None:
            for arg in (
                list(getattr(args, "posonlyargs", []))
                + args.args
                + args.kwonlyargs
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                self.locals.add(arg.arg)
        for node in _scoped_statements(fn):
            if isinstance(node, ast.Global):
                self.globals_decl.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                self.locals.add(node.id)
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    self.assigns[target.id] = node.value
            if isinstance(node, ast.withitem) and isinstance(node.optional_vars, ast.Name):
                ctor = node.context_expr
                if isinstance(ctor, ast.Call):
                    domain = _EXECUTOR_CTORS.get(_last_name(ctor.func) or "")
                    if domain:
                        self.executors[node.optional_vars.id] = domain
        for name, value in self.assigns.items():
            if isinstance(value, ast.Call):
                domain = _EXECUTOR_CTORS.get(_last_name(value.func) or "")
                if domain:
                    self.executors[name] = domain
        self.locals -= self.globals_decl


def extract_thread_facts(tree: ast.Module) -> Dict[str, object]:
    """One module's concurrency-relevant facts as plain JSON data."""
    inventory = _ModuleInventory()
    inventory.collect(tree)
    facts: Dict[str, object] = {
        "format": THREAD_FORMAT,
        "mutable_globals": dict(sorted(inventory.mutable_globals.items())),
        "locks": sorted(inventory.global_locks),
        "handler_classes": sorted(inventory.handler_classes),
        "functions": {},
    }
    _FactRecorder(inventory, facts["functions"]).walk_definitions(  # type: ignore[arg-type]
        tree.body, prefix="", self_class=None
    )
    return facts


class _FactRecorder:
    """Pass 2: one record per function — accesses, locks, calls, spawns."""

    def __init__(self, inventory: _ModuleInventory, functions: Dict[str, Dict[str, object]]):
        self.inv = inventory
        self.functions = functions

    def walk_definitions(
        self, body: Sequence[ast.stmt], prefix: str, self_class: Optional[str]
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._record_function(stmt, prefix + stmt.name, self_class)
            elif isinstance(stmt, ast.ClassDef):
                path = prefix + stmt.name
                self.walk_definitions(stmt.body, path + ".", path)

    def _record_function(
        self, fn: ast.AST, qualname: str, self_class: Optional[str]
    ) -> None:
        record: Dict[str, object] = {
            "line": fn.lineno,  # type: ignore[attr-defined]
            "class": self_class,
            "writes": [],
            "reads": [],
            "acquires": [],
            "calls": [],
            "blocking": [],
            "cta": [],
            "spawns": [],
        }
        self.functions[qualname] = record
        walker = _FunctionWalker(self, record, qualname, self_class, _FunctionScope(fn))
        walker.walk_block(fn.body, [])  # type: ignore[attr-defined]


class _FunctionWalker:
    """Statement walk of one function body tracking lexically-held locks."""

    def __init__(
        self,
        recorder: _FactRecorder,
        record: Dict[str, object],
        qualname: str,
        self_class: Optional[str],
        scope: _FunctionScope,
    ):
        self.recorder = recorder
        self.inv = recorder.inv
        self.rec = record
        self.qualname = qualname
        self.self_class = self_class
        self.scope = scope

    # -- symbols -----------------------------------------------------------

    def _global_symbol(self, name: str, for_write: bool = False) -> Optional[str]:
        if name in self.scope.locals:
            return None
        if for_write and name in self.scope.globals_decl:
            return f"g:{name}"
        if name in self.inv.mutable_globals or name in self.inv.rebound_globals:
            return f"g:{name}"
        return None

    def _attr_symbol(self, attr: str) -> Optional[str]:
        owner = self.inv.attr_class(self.self_class, attr)
        if owner is None:
            return None
        return f"a:{owner}:{attr}"

    def _container_symbol(self, expr: ast.AST) -> Optional[str]:
        """The shared symbol behind a mutated container, if it is one."""
        if isinstance(expr, ast.Name):
            return self._global_symbol(expr.id)
        attr = _self_attr(expr)
        if attr is not None:
            return self._attr_symbol(attr)
        return None

    def _lock_of(self, expr: ast.AST, depth: int = 2) -> Optional[str]:
        if isinstance(expr, ast.Name):
            name = expr.id
            if name in self.inv.global_locks and name not in self.scope.locals:
                return f"g:{name}"
            value = self.scope.assigns.get(name)
            if depth > 0 and value is not None:
                return self._lock_of(value, depth - 1)
            return None
        attr = _self_attr(expr)
        if attr is not None:
            owner = self.inv.lock_class(self.self_class, attr)
            if owner is not None:
                return f"a:{owner}:{attr}"
        return None

    # -- recording ---------------------------------------------------------

    def _emit(self, kind: str, symbol: str, node: ast.AST, held: Sequence[str]) -> None:
        entry = {
            "lock" if kind == "acquires" else "sym": symbol,
            "line": node.lineno,  # type: ignore[attr-defined]
            "col": node.col_offset,  # type: ignore[attr-defined]
        }
        if kind != "reads":
            entry["held"] = sorted(set(held))
        self.rec[kind].append(entry)  # type: ignore[union-attr]

    # -- the walk ----------------------------------------------------------

    def walk_block(self, stmts: Sequence[ast.stmt], held: Sequence[str]) -> None:
        held = list(held)
        for stmt in stmts:
            self._statement(stmt, held)

    def _statement(self, stmt: ast.stmt, held: List[str]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.recorder._record_function(
                stmt, f"{self.qualname}.{stmt.name}", self.self_class
            )
            return
        if isinstance(stmt, ast.ClassDef):
            path = f"{self.qualname}.{stmt.name}"
            self.recorder.walk_definitions(stmt.body, path + ".", path)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            entered: List[str] = []
            entered_set: Set[str] = set(held)
            for item in stmt.items:
                self._scan_expr(item.context_expr, held + entered)
                lock = self._lock_of(item.context_expr)
                if lock is not None and lock not in entered_set:
                    self._emit("acquires", lock, item.context_expr, held + entered)
                    entered.append(lock)
                    entered_set.add(lock)
            self.walk_block(stmt.body, held + entered)
            return
        if isinstance(stmt, ast.If):
            self._check_then_act(stmt, held)
            self._scan_expr(stmt.test, held)
            self.walk_block(stmt.body, held)
            self.walk_block(stmt.orelse, held)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._write_target(stmt.target, held)
            self._scan_expr(stmt.iter, held)
            self.walk_block(stmt.body, held)
            self.walk_block(stmt.orelse, held)
            return
        if isinstance(stmt, ast.While):
            self._scan_expr(stmt.test, held)
            self.walk_block(stmt.body, held)
            self.walk_block(stmt.orelse, held)
            return
        if isinstance(stmt, ast.Try):
            self.walk_block(stmt.body, held)
            for handler in stmt.handlers:
                self.walk_block(handler.body, held)
            self.walk_block(stmt.orelse, held)
            self.walk_block(stmt.finalbody, held)
            return
        if isinstance(stmt, ast.Assign):
            self._scan_expr(stmt.value, held)
            for target in stmt.targets:
                self._write_target(target, held)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._scan_expr(stmt.value, held)
            self._write_target(stmt.target, held)
            return
        if isinstance(stmt, ast.AugAssign):
            self._scan_expr(stmt.value, held)
            self._write_target(stmt.target, held)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    symbol = self._container_symbol(target.value)
                    if symbol is not None:
                        self._emit("writes", symbol, target, held)
                    self._scan_expr(target.slice, held)
            return
        if isinstance(stmt, ast.Expr):
            if self._acquire_release(stmt.value, held):
                return
            self._scan_expr(stmt.value, held)
            return
        if isinstance(stmt, (ast.Global, ast.Nonlocal, ast.Pass, ast.Break, ast.Continue)):
            return
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(child, held)

    def _acquire_release(self, expr: ast.AST, held: List[str]) -> bool:
        if not (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute)):
            return False
        if expr.func.attr not in ("acquire", "release"):
            return False
        lock = self._lock_of(expr.func.value)
        if lock is None:
            return False
        if expr.func.attr == "acquire":
            if lock not in held:
                self._emit("acquires", lock, expr, held)
                held.append(lock)
        elif lock in held:
            held.remove(lock)
        return True

    def _write_target(self, target: ast.AST, held: Sequence[str]) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._write_target(element, held)
            return
        if isinstance(target, ast.Starred):
            self._write_target(target.value, held)
            return
        if isinstance(target, ast.Name):
            symbol = self._global_symbol(target.id, for_write=True)
            # A local rebind is not shared state; only a declared-global or
            # container mutation escapes the frame.
            if symbol is not None and target.id in self.scope.globals_decl:
                self._emit("writes", symbol, target, held)
            return
        attr = _self_attr(target)
        if attr is not None:
            symbol = self._attr_symbol(attr)
            if symbol is not None:
                self._emit("writes", symbol, target, held)
            return
        if isinstance(target, ast.Subscript):
            symbol = self._container_symbol(target.value)
            if symbol is not None:
                self._emit("writes", symbol, target, held)
            else:
                self._scan_expr(target.value, held)
            self._scan_expr(target.slice, held)
            return
        if isinstance(target, ast.Attribute):
            # Attribute chains on non-self roots stay opaque (don't know).
            self._scan_expr(target.value, held)

    def _scan_expr(self, expr: ast.AST, held: Sequence[str]) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._record_call(node, held)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                symbol = self._global_symbol(node.id)
                if symbol is not None:
                    self._emit("reads", symbol, node, held)
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                attr = _self_attr(node)
                if attr is not None:
                    symbol = self._attr_symbol(attr)
                    if symbol is not None:
                        self._emit("reads", symbol, node, held)

    def _record_call(self, call: ast.Call, held: Sequence[str]) -> None:
        sym = _call_sym(call.func)
        if sym is not None:
            self.rec["calls"].append(  # type: ignore[union-attr]
                {
                    "sym": sym,
                    "line": call.lineno,
                    "col": call.col_offset,
                    "held": sorted(set(held)),
                }
            )
        self._record_spawn(call)
        self._record_blocking(call, held)
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _MUTATING_METHODS
        ):
            symbol = self._container_symbol(call.func.value)
            if symbol is not None:
                self._emit("writes", symbol, call, held)

    def _record_spawn(self, call: ast.Call) -> None:
        name = _last_name(call.func)
        spawns = self.rec["spawns"]
        if name in _THREAD_CTORS:
            for keyword in call.keywords:
                if keyword.arg == "target":
                    spawns.append(  # type: ignore[union-attr]
                        {
                            "domain": DOMAIN_THREAD,
                            "target": _call_sym(keyword.value),
                            "line": call.lineno,
                        }
                    )
            return
        if name in _EXECUTOR_CTORS:
            for keyword in call.keywords:
                if keyword.arg == "initializer":
                    spawns.append(  # type: ignore[union-attr]
                        {
                            "domain": _EXECUTOR_CTORS[name],
                            "target": _call_sym(keyword.value),
                            "line": call.lineno,
                        }
                    )
            return
        if name in _POOL_MAP_FNS and call.args:
            spawns.append(  # type: ignore[union-attr]
                {
                    "domain": DOMAIN_POOL,
                    "target": _call_sym(call.args[0]),
                    "line": call.lineno,
                }
            )
            return
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in ("submit", "map")
            and isinstance(call.func.value, ast.Name)
            and call.args
        ):
            domain = self.scope.executors.get(call.func.value.id)
            if domain is not None:
                spawns.append(  # type: ignore[union-attr]
                    {
                        "domain": domain,
                        "target": _call_sym(call.args[0]),
                        "line": call.lineno,
                    }
                )

    def _record_blocking(self, call: ast.Call, held: Sequence[str]) -> None:
        label: Optional[str] = None
        if isinstance(call.func, ast.Name):
            if call.func.id == "open":
                label = "open"
            else:
                label = self.inv.blocking_imports.get(call.func.id)
        else:
            chain = _attr_chain(call.func)
            if chain is not None:
                label = _BLOCKING_CHAINS.get(tuple(chain))
        if label is not None:
            self.rec["blocking"].append(  # type: ignore[union-attr]
                {
                    "what": label,
                    "line": call.lineno,
                    "col": call.col_offset,
                    "held": sorted(set(held)),
                }
            )

    # -- check-then-act ----------------------------------------------------

    def _check_then_act(self, stmt: ast.If, held: Sequence[str]) -> None:
        test = stmt.test
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], (ast.In, ast.NotIn))
            and len(test.comparators) == 1
        ):
            return
        container = test.comparators[0]
        symbol = self._container_symbol(container)
        if symbol is None:
            return
        container_text = _safe_unparse(container)
        key_text = _safe_unparse(test.left)
        if container_text is None or key_text is None:
            return
        if not self._acts_on(stmt, container_text, key_text):
            return
        self.rec["cta"].append(  # type: ignore[union-attr]
            {
                "sym": symbol,
                "line": stmt.lineno,
                "col": stmt.col_offset,
                "held": sorted(set(held)),
                "fix": self._setdefault_fix(stmt, test, container_text, key_text),
            }
        )

    def _acts_on(self, stmt: ast.If, container_text: str, key_text: str) -> bool:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Subscript):
                continue
            if (
                _safe_unparse(node.value) == container_text
                and _safe_unparse(node.slice) == key_text
            ):
                return True
        return False

    def _setdefault_fix(
        self, stmt: ast.If, test: ast.Compare, container_text: str, key_text: str
    ) -> Optional[Dict[str, object]]:
        """The mechanical rewrite ``if k not in d: d[k] = v`` → ``setdefault``.

        Only offered when the value expression is effects-free enough that
        eager evaluation cannot change behaviour (constants, names, empty
        constructors, literal displays of those).
        """
        if not isinstance(test.ops[0], ast.NotIn) or stmt.orelse or len(stmt.body) != 1:
            return None
        body = stmt.body[0]
        if not (isinstance(body, ast.Assign) and len(body.targets) == 1):
            return None
        target = body.targets[0]
        if not (
            isinstance(target, ast.Subscript)
            and _safe_unparse(target.value) == container_text
            and _safe_unparse(target.slice) == key_text
        ):
            return None
        if not _is_effect_free(body.value):
            return None
        value_text = _safe_unparse(body.value)
        if value_text is None:
            return None
        end_lineno = getattr(stmt, "end_lineno", None)
        end_col = getattr(stmt, "end_col_offset", None)
        if end_lineno is None or end_col is None:
            return None
        return {
            "l1": stmt.lineno,
            "c1": stmt.col_offset,
            "l2": end_lineno,
            "c2": end_col,
            "text": f"{container_text}.setdefault({key_text}, {value_text})",
        }


def _safe_unparse(node: ast.AST) -> Optional[str]:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return None


def _is_effect_free(expr: ast.AST) -> bool:
    if isinstance(expr, (ast.Constant, ast.Name)):
        return True
    if isinstance(expr, (ast.List, ast.Set, ast.Tuple)):
        return all(_is_effect_free(element) for element in expr.elts)
    if isinstance(expr, ast.Dict):
        return all(
            key is not None and _is_effect_free(key) and _is_effect_free(value)
            for key, value in zip(expr.keys, expr.values)
        )
    if isinstance(expr, ast.Call):
        return _last_name(expr.func) in _MUTABLE_CTORS and not expr.args and not expr.keywords
    return False


# --------------------------------------------------------------------------
# whole-program analysis
# --------------------------------------------------------------------------

Node = Tuple[str, str]  # (module key, function qualname)


class ThreadAnalysis:
    """Roots, concurrency domains, locksets, and guarded-by inference.

    Built from the per-module thread facts riding inside the domain
    summaries plus the project's symbolic-call resolver; everything here is
    derived data, so rehydrated worker projects rebuild it on demand.
    """

    _MAX_PASSES = 20  # entry-lock fixpoint bound, like the domain fixpoint

    def __init__(
        self,
        summaries: Dict[str, Dict[str, object]],
        resolver: Callable[[str, str, Sequence[object]], Optional[Tuple[Tuple[str, str], bool]]],
    ):
        self.summaries = summaries
        self._resolve = resolver
        self.nodes: Dict[Node, Dict[str, object]] = {}
        self.edges: Dict[Node, Set[Node]] = {}
        self.call_sites: Dict[Node, List[Tuple[Node, FrozenSet[str]]]] = {}
        self.roots: List[Tuple[Node, str, str]] = []
        self.domains: Dict[Node, Set[str]] = {}
        self.entry_locks: Dict[Node, Optional[FrozenSet[str]]] = {}
        self.shared: Dict[str, Dict[str, object]] = {}
        self._records: Dict[str, List[Dict[str, object]]] = {}
        self._build()

    # -- construction ------------------------------------------------------

    def _facts(self, module_key: str) -> Dict[str, object]:
        summary = self.summaries.get(module_key) or {}
        facts = summary.get("threads")
        if not isinstance(facts, dict):
            return {"functions": {}, "handler_classes": []}
        return facts

    def _build(self) -> None:
        for module_key in sorted(self.summaries):
            functions = self._facts(module_key).get("functions", {})
            for qualname, record in functions.items():  # type: ignore[union-attr]
                self.nodes[(module_key, qualname)] = record
        self._link_calls()
        self._discover_roots()
        self._propagate_domains()
        self._solve_entry_locks()
        self._collect_shared()
        self._emit_records()

    def _resolve_target(
        self, module_key: str, caller: str, sym: Optional[Sequence[object]]
    ) -> Optional[Node]:
        if not sym:
            return None
        resolved = self._resolve(module_key, caller, sym)
        if resolved is not None:
            node = (resolved[0][0], resolved[0][1])
            if node in self.nodes:
                return node
        if sym[0] == "self" and "." in caller:
            sibling = (module_key, caller.rsplit(".", 1)[0] + "." + str(sym[1]))
            if sibling in self.nodes:
                return sibling
        if sym[0] == "name":
            direct = (module_key, str(sym[1]))
            if direct in self.nodes:
                return direct
        return None

    def _link_calls(self) -> None:
        for node, record in self.nodes.items():
            module_key, qualname = node
            for call in record.get("calls", []):  # type: ignore[union-attr]
                target = self._resolve_target(module_key, qualname, call["sym"])
                if target is None:
                    continue
                self.edges.setdefault(node, set()).add(target)
                self.call_sites.setdefault(target, []).append(
                    (node, frozenset(call.get("held", [])))
                )

    def _discover_roots(self) -> None:
        for node, record in sorted(self.nodes.items()):
            module_key, qualname = node
            for spawn in record.get("spawns", []):  # type: ignore[union-attr]
                target = self._resolve_target(module_key, qualname, spawn.get("target"))
                if target is None:
                    continue
                via = f"{module_key}:{spawn['line']} ({qualname})"
                self.roots.append((target, str(spawn["domain"]), via))
        for module_key in sorted(self.summaries):
            handler_classes = set(self._facts(module_key).get("handler_classes", []))
            if not handler_classes:
                continue
            for node, record in sorted(self.nodes.items()):
                if node[0] == module_key and record.get("class") in handler_classes:
                    self.roots.append((node, DOMAIN_HANDLER, f"handler class {record['class']}"))

    def _propagate_domains(self) -> None:
        pending: List[Node] = []
        for node, domain, _via in self.roots:
            marks = self.domains.setdefault(node, set())
            if domain not in marks:
                marks.add(domain)
                pending.append(node)
        while pending:
            node = pending.pop()
            for successor in self.edges.get(node, ()):
                marks = self.domains.setdefault(successor, set())
                before = len(marks)
                marks.update(self.domains[node])
                if len(marks) != before:
                    pending.append(successor)

    def _solve_entry_locks(self) -> None:
        root_nodes = {node for node, _domain, _via in self.roots}
        entry: Dict[Node, Optional[FrozenSet[str]]] = {}
        for node in self.nodes:
            if node in root_nodes or node not in self.call_sites:
                entry[node] = frozenset()
            else:
                entry[node] = None  # ⊤: no information yet
        for _pass in range(self._MAX_PASSES):
            changed = False
            for node, sites in self.call_sites.items():
                if node in root_nodes:
                    continue  # spawn entries hold nothing, whatever callers do
                met: Optional[FrozenSet[str]] = None
                for caller, held in sites:
                    caller_entry = entry.get(caller)
                    if caller_entry is None:
                        continue  # optimistic: skip still-unknown callers
                    site_locks = held | caller_entry
                    met = site_locks if met is None else met & site_locks
                if met is not None and met != entry[node]:
                    entry[node] = met
                    changed = True
            if not changed:
                break
        self.entry_locks = entry

    def _effective_held(self, node: Node, held: Iterable[str]) -> FrozenSet[str]:
        entry = self.entry_locks.get(node) or frozenset()
        return frozenset(held) | entry

    def _node_domains(self, node: Node) -> FrozenSet[str]:
        marks = self.domains.get(node)
        return frozenset(marks) if marks else frozenset({DOMAIN_MAIN})

    def _is_racy(self, node: Node) -> bool:
        return bool(self.domains.get(node, set()) & RACY_DOMAINS)

    def _collect_shared(self) -> None:
        accesses: Dict[str, Dict[str, object]] = {}
        for node, record in sorted(self.nodes.items()):
            module_key, qualname = node
            for write in record.get("writes", []):  # type: ignore[union-attr]
                key = f"{module_key}::{write['sym']}"
                info = accesses.setdefault(
                    key, {"writes": [], "reads": [], "domains": set()}
                )
                info["domains"].update(self._node_domains(node))  # type: ignore[union-attr]
                exempt = self._is_ctor_write(node, str(write["sym"]))
                info["writes"].append(  # type: ignore[union-attr]
                    {
                        "node": node,
                        "line": write["line"],
                        "col": write["col"],
                        "held": self._effective_held(node, write.get("held", [])),
                        "exempt": exempt,
                    }
                )
            for read in record.get("reads", []):  # type: ignore[union-attr]
                key = f"{module_key}::{read['sym']}"
                info = accesses.setdefault(
                    key, {"writes": [], "reads": [], "domains": set()}
                )
                info["domains"].update(self._node_domains(node))  # type: ignore[union-attr]
                info["reads"].append(  # type: ignore[union-attr]
                    {"node": node, "line": read["line"], "col": read["col"]}
                )
        for key, info in accesses.items():
            live_writes = [w for w in info["writes"] if not w["exempt"]]  # type: ignore[union-attr]
            if not live_writes:
                continue
            if not info["domains"] & RACY_DOMAINS:  # type: ignore[operator]
                continue
            guard = self._infer_guard(live_writes)
            self.shared[key] = {
                "writes": live_writes,
                "reads": info["reads"],
                "domains": frozenset(info["domains"]),  # type: ignore[arg-type]
                "guard": guard,
            }

    def _is_ctor_write(self, node: Node, symbol: str) -> bool:
        if not symbol.startswith("a:"):
            return False
        record = self.nodes[node]
        class_path = record.get("class")
        if not class_path:
            return False
        method = node[1].rsplit(".", 1)[-1]
        return method in _CTOR_METHODS

    @staticmethod
    def _infer_guard(writes: List[Dict[str, object]]) -> Optional[str]:
        counts: Counter = Counter()
        for write in writes:
            for lock in write["held"]:  # type: ignore[union-attr]
                counts[lock] += 1
        for lock, count in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])):
            if count * 2 > len(writes):
                return lock
        return None

    # -- findings ----------------------------------------------------------

    def _emit_records(self) -> None:
        records: Dict[str, List[Dict[str, object]]] = {}

        def emit(module_key: str, record: Dict[str, object]) -> None:
            records.setdefault(module_key, []).append(record)

        for key in sorted(self.shared):
            info = self.shared[key]
            guard = info["guard"]
            domains = sorted(info["domains"])  # type: ignore[arg-type]
            for write in info["writes"]:  # type: ignore[union-attr]
                node = write["node"]
                held = write["held"]
                if guard is None:
                    if not held:
                        emit(
                            node[0],
                            {
                                "rule": "CW701",
                                "line": write["line"],
                                "col": write["col"],
                                "symbol": self.pretty_symbol(key),
                                "domains": domains,
                                "function": node[1],
                            },
                        )
                elif guard not in held:
                    emit(
                        node[0],
                        {
                            "rule": "CW702",
                            "line": write["line"],
                            "col": write["col"],
                            "symbol": self.pretty_symbol(key),
                            "guard": self.pretty_lock(node[0], str(guard)),
                            "function": node[1],
                        },
                    )
        self._emit_check_then_act(emit)
        self._emit_lock_order(emit)
        self._emit_blocking(emit)
        for module_records in records.values():
            module_records.sort(key=lambda r: (r["line"], r["col"], r["rule"]))
        self._records = records

    def _emit_check_then_act(self, emit: Callable[[str, Dict[str, object]], None]) -> None:
        for node, record in sorted(self.nodes.items()):
            module_key, _qualname = node
            for cta in record.get("cta", []):  # type: ignore[union-attr]
                key = f"{module_key}::{cta['sym']}"
                if key not in self.shared:
                    continue
                if self._effective_held(node, cta.get("held", [])):
                    continue  # the whole check→act runs under some lock
                emit(
                    module_key,
                    {
                        "rule": "CW703",
                        "line": cta["line"],
                        "col": cta["col"],
                        "symbol": self.pretty_symbol(key),
                        "function": node[1],
                        "fix": cta.get("fix"),
                    },
                )

    def _emit_lock_order(self, emit: Callable[[str, Dict[str, object]], None]) -> None:
        order: Dict[Tuple[str, str], List[Tuple[Node, int, int]]] = {}
        for node, record in sorted(self.nodes.items()):
            module_key, _qualname = node
            for acquire in record.get("acquires", []):  # type: ignore[union-attr]
                held = self._effective_held(node, acquire.get("held", []))
                for outer in held:
                    if outer == acquire["lock"]:
                        continue
                    pair = (self._lock_key(module_key, str(outer)), self._lock_key(module_key, str(acquire["lock"])))
                    order.setdefault(pair, []).append(
                        (node, int(acquire["line"]), int(acquire["col"]))
                    )
        for (outer, inner), sites in sorted(order.items()):
            reverse = order.get((inner, outer))
            if not reverse:
                continue
            opposite = reverse[0]
            for node, line, col in sites:
                emit(
                    node[0],
                    {
                        "rule": "CW704",
                        "line": line,
                        "col": col,
                        "symbol": self.pretty_symbol(inner),
                        "outer": self.pretty_symbol(outer),
                        "opposite": f"{opposite[0][0]}:{opposite[1]}",
                        "function": node[1],
                    },
                )

    def _emit_blocking(self, emit: Callable[[str, Dict[str, object]], None]) -> None:
        for node, record in sorted(self.nodes.items()):
            module_key, _qualname = node
            if not self._is_racy(node):
                continue
            for blocking in record.get("blocking", []):  # type: ignore[union-attr]
                held = self._effective_held(node, blocking.get("held", []))
                if not held:
                    continue
                lock = sorted(held)[0]
                emit(
                    module_key,
                    {
                        "rule": "CW705",
                        "line": blocking["line"],
                        "col": blocking["col"],
                        "what": blocking["what"],
                        "lock": self.pretty_lock(module_key, lock),
                        "domains": sorted(self.domains.get(node, set())),
                        "function": node[1],
                    },
                )

    # -- public api --------------------------------------------------------

    def records_for(self, module_key: str) -> List[Dict[str, object]]:
        """The CW7xx finding records anchored in one module."""
        return self._records.get(module_key, [])

    def dep_digest(self, module_key: str) -> str:
        """Digest of the module's thread findings for the cache dep-key.

        The records are a pure function of whole-program facts, so folding
        them into the per-file dependency key re-lints a file exactly when a
        change anywhere in the project changes what CW7xx would say here.
        """
        payload = json.dumps(
            self.records_for(module_key), sort_keys=True, separators=(",", ":"), default=str
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @property
    def n_roots(self) -> int:
        return len(self.roots)

    @property
    def n_shared(self) -> int:
        return len(self.shared)

    def _lock_key(self, module_key: str, lock: str) -> str:
        return f"{module_key}::{lock}"

    @staticmethod
    def pretty_symbol(key: str) -> str:
        """``mod::g:X`` → ``mod.X``; ``mod::a:Cls:attr`` → ``mod.Cls.attr``."""
        module_key, _, symbol = key.partition("::")
        if symbol.startswith("g:"):
            return f"{module_key}.{symbol[2:]}"
        if symbol.startswith("a:"):
            _kind, class_path, attr = symbol.split(":", 2)
            return f"{module_key}.{class_path}.{attr}"
        return key

    def pretty_lock(self, module_key: str, lock: str) -> str:
        return self.pretty_symbol(lock if "::" in lock else self._lock_key(module_key, lock))

    def render(self) -> str:
        """The ``--threads`` debug listing: roots, shared state, accesses."""
        lines: List[str] = []
        lines.append(f"thread roots ({len(self.roots)}):")
        for node, domain, via in sorted(self.roots, key=lambda r: (r[0], r[1])):
            lines.append(f"  [{domain}] {node[0]}:{node[1]}  via {via}")
        lines.append("")
        lines.append(f"shared state ({len(self.shared)}):")
        for key in sorted(self.shared):
            info = self.shared[key]
            guard = info["guard"]
            guard_text = (
                self.pretty_lock(key.partition("::")[0], str(guard))
                if guard
                else "<none>"
            )
            domains = ",".join(sorted(info["domains"]))  # type: ignore[arg-type]
            lines.append(
                f"  {self.pretty_symbol(key)}  domains={domains}  guarded_by={guard_text}"
            )
            for write in info["writes"]:  # type: ignore[union-attr]
                node = write["node"]
                held = ",".join(sorted(write["held"])) or "-"  # type: ignore[arg-type]
                lines.append(
                    f"    write {node[0]}:{write['line']}  {node[1]}  locks={held}"
                )
            for read in info["reads"]:  # type: ignore[union-attr]
                node = read["node"]
                lines.append(f"    read  {node[0]}:{read['line']}  {node[1]}")
        return "\n".join(lines)
