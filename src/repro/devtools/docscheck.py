"""Docs↔layer-map sync gate (``python -m repro.devtools.docscheck``).

Every layer declared in :data:`repro.devtools.layers.LAYER_MAP` must be
mentioned — as ``repro.<layer>`` — in ``docs/architecture.md`` or
``docs/api.md``.  A layer someone adds to the import DAG without a word of
documentation fails CI (the ``docs-check`` job), which is how the
architecture chapter stays honest as the codebase grows.

Like the rest of ``repro.devtools`` this reads the repository as text and
imports nothing from the rest of the package.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .layers import LAYER_MAP

__all__ = ["DOC_FILES", "check_docs", "main"]

#: Repo-relative documentation files a layer may be covered in.
DOC_FILES = ("docs/architecture.md", "docs/api.md")


def check_docs(root: Path, layers: Optional[Sequence[str]] = None) -> List[str]:
    """One problem string per undocumented layer (empty = docs in sync).

    ``layers`` defaults to every key of :data:`LAYER_MAP`; tests pass a
    synthetic list to exercise the failure path.
    """
    layers = sorted(layers if layers is not None else LAYER_MAP)
    texts: Dict[str, str] = {}
    problems: List[str] = []
    for rel in DOC_FILES:
        path = root / rel
        if path.is_file():
            texts[rel] = path.read_text(encoding="utf-8")
        else:
            problems.append(f"missing documentation file: {rel}")
    for layer in layers:
        needle = f"repro.{layer}"
        if not any(needle in text for text in texts.values()):
            problems.append(
                f"layer {layer!r} is declared in devtools/layers.py but "
                f"`{needle}` appears in none of: {', '.join(DOC_FILES)}"
            )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.docscheck",
        description="Fail when a layer in the import DAG has no mention "
                    "in docs/architecture.md or docs/api.md",
    )
    parser.add_argument("--root", type=Path, default=Path("."),
                        help="repository root (default: current directory)")
    args = parser.parse_args(argv)
    problems = check_docs(args.root)
    for problem in problems:
        print(f"docscheck: {problem}")
    if problems:
        print(f"docscheck: {len(problems)} problem(s) found")
        return 1
    print(f"docscheck ok: all {len(LAYER_MAP)} layers covered in "
          f"{' and '.join(DOC_FILES)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
