"""Docs↔code sync gate (``python -m repro.devtools.docscheck``).

Three invariants, all enforced in CI (the ``docs-check`` job):

1. Every layer declared in :data:`repro.devtools.layers.LAYER_MAP` must be
   mentioned — as ``repro.<layer>`` — in ``docs/architecture.md``,
   ``docs/api.md``, or ``docs/serving.md``.
2. The rule catalog in ``docs/devtools.md`` (between the
   ``crowdlint-catalog`` markers) must be byte-identical to what
   :func:`generate_catalog` renders from the live rule registry.  Adding a
   rule without regenerating the table (``--write-catalog``) fails CI, so
   the docs cannot drift from the code.
3. Every module under ``src/repro/devtools/`` must be declared in
   :data:`repro.devtools.layers.DEVTOOLS_MODULES` (and vice versa), so the
   subsystem's own inventory — which feeds the cache fingerprint and this
   very check — stays complete.

Like the rest of ``repro.devtools`` this imports nothing from the packages
it polices; it only reads the repository as text plus its own registry.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .engine import all_rules
from .layers import DEVTOOLS_MODULES, LAYER_MAP

__all__ = [
    "CATALOG_START",
    "CATALOG_END",
    "DOC_FILES",
    "check_catalog",
    "check_docs",
    "check_module_registry",
    "generate_catalog",
    "main",
    "write_catalog",
]

#: Repo-relative documentation files a layer may be covered in.
DOC_FILES = ("docs/architecture.md", "docs/api.md", "docs/serving.md")

#: File holding the generated rule catalog, and the markers delimiting it.
CATALOG_FILE = "docs/devtools.md"
CATALOG_START = "<!-- crowdlint-catalog:start (generated; run python -m repro.devtools.docscheck --write-catalog) -->"
CATALOG_END = "<!-- crowdlint-catalog:end -->"


def check_docs(root: Path, layers: Optional[Sequence[str]] = None) -> List[str]:
    """One problem string per undocumented layer (empty = docs in sync).

    ``layers`` defaults to every key of :data:`LAYER_MAP`; tests pass a
    synthetic list to exercise the failure path.
    """
    layers = sorted(layers if layers is not None else LAYER_MAP)
    texts: Dict[str, str] = {}
    problems: List[str] = []
    for rel in DOC_FILES:
        path = root / rel
        if path.is_file():
            texts[rel] = path.read_text(encoding="utf-8")
        else:
            problems.append(f"missing documentation file: {rel}")
    for layer in layers:
        needle = f"repro.{layer}"
        if not any(needle in text for text in texts.values()):
            problems.append(
                f"layer {layer!r} is declared in devtools/layers.py but "
                f"`{needle}` appears in none of: {', '.join(DOC_FILES)}"
            )
    return problems


# -- rule catalog ------------------------------------------------------------

def generate_catalog() -> str:
    """The rule table rendered from the live registry, markdown, newline-final."""
    lines = [
        "| ID | Name | Fix | What it flags |",
        "|----|------|:---:|---------------|",
    ]
    for rule in sorted(all_rules(), key=lambda r: r.id):
        fix = "`--fix`" if rule.fixable else "—"
        description = rule.description.replace("|", "\\|")
        lines.append(f"| {rule.id} | `{rule.name}` | {fix} | {description} |")
    return "\n".join(lines) + "\n"


def _catalog_region(text: str) -> Optional[tuple]:
    start = text.find(CATALOG_START)
    end = text.find(CATALOG_END)
    if start == -1 or end == -1 or end < start:
        return None
    return start + len(CATALOG_START), end


def check_catalog(root: Path) -> List[str]:
    """Empty when the docs catalog matches the registry byte for byte."""
    path = root / CATALOG_FILE
    if not path.is_file():
        return [f"missing documentation file: {CATALOG_FILE}"]
    text = path.read_text(encoding="utf-8")
    region = _catalog_region(text)
    if region is None:
        return [
            f"{CATALOG_FILE} lacks the generated-catalog markers "
            f"({CATALOG_START!r} ... {CATALOG_END!r})"
        ]
    current = text[region[0] : region[1]].strip("\n")
    expected = generate_catalog().strip("\n")
    if current != expected:
        return [
            f"rule catalog in {CATALOG_FILE} is stale; regenerate with "
            "`python -m repro.devtools.docscheck --write-catalog`"
        ]
    return []


def write_catalog(root: Path) -> bool:
    """Regenerate the catalog region in place; True when the file changed."""
    path = root / CATALOG_FILE
    text = path.read_text(encoding="utf-8")
    region = _catalog_region(text)
    if region is None:
        raise SystemExit(f"docscheck: {CATALOG_FILE} lacks the catalog markers")
    updated = (
        text[: region[0]] + "\n" + generate_catalog() + text[region[1] :]
    )
    if updated == text:
        return False
    path.write_text(updated, encoding="utf-8")
    return True


# -- module registry ---------------------------------------------------------

def check_module_registry(root: Path) -> List[str]:
    """DEVTOOLS_MODULES must list exactly the modules on disk."""
    package = root / "src" / "repro" / "devtools"
    if not package.is_dir():
        return [f"missing package directory: {package}"]
    on_disk = set()
    for file_path in package.rglob("*.py"):
        relative = file_path.relative_to(package).with_suffix("")
        parts = [part for part in relative.parts if part != "__init__"]
        if parts:
            on_disk.add(".".join(parts))
    problems = []
    for module in sorted(on_disk - DEVTOOLS_MODULES):
        problems.append(
            f"module {module!r} exists under src/repro/devtools/ but is not "
            "declared in layers.DEVTOOLS_MODULES"
        )
    for module in sorted(DEVTOOLS_MODULES - on_disk):
        problems.append(
            f"module {module!r} is declared in layers.DEVTOOLS_MODULES but "
            "has no file under src/repro/devtools/"
        )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.docscheck",
        description="Fail when the docs drift from the code: undocumented "
                    "layers, a stale rule catalog, or an undeclared "
                    "devtools module.",
    )
    parser.add_argument("--root", type=Path, default=Path("."),
                        help="repository root (default: current directory)")
    parser.add_argument("--write-catalog", action="store_true",
                        help=f"regenerate the rule catalog in {CATALOG_FILE} "
                             "instead of checking it")
    args = parser.parse_args(argv)
    if args.write_catalog:
        changed = write_catalog(args.root)
        print(f"docscheck: catalog {'updated' if changed else 'already current'} "
              f"in {CATALOG_FILE}")
        return 0
    problems = (
        check_docs(args.root)
        + check_catalog(args.root)
        + check_module_registry(args.root)
    )
    for problem in problems:
        print(f"docscheck: {problem}")
    if problems:
        print(f"docscheck: {len(problems)} problem(s) found")
        return 1
    rules = len(list(all_rules()))
    print(f"docscheck ok: {len(LAYER_MAP)} layers covered, {rules}-rule "
          f"catalog current, {len(DEVTOOLS_MODULES)} devtools modules declared")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
